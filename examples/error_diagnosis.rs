//! Error diagnosis with MPE queries — the paper's §5 research direction:
//! "MPE queries would answer what error event best explains a given
//! symptomatic observed outcome."
//!
//! A noisy GHZ-preparation circuit should only ever measure |000⟩ or |111⟩;
//! when a symptomatic outcome like |010⟩ appears, the compiled model tells
//! us which noise event most probably caused it, and how certain we can be.
//!
//! Run with: `cargo run --release --example error_diagnosis`

use qkc::circuit::{Circuit, ParamMap};
use qkc::kc::KcSimulator;

fn main() {
    // GHZ preparation with a bit flip risk on each qubit after entangling.
    let mut c = Circuit::new(3);
    c.h(0).cnot(0, 1).cnot(1, 2);
    c.bit_flip(0, 0.02).bit_flip(1, 0.05).bit_flip(2, 0.03);
    println!("{c}");

    let sim = KcSimulator::compile(&c, &Default::default());
    let bound = sim.bind(&ParamMap::new()).expect("bind");
    let rv_labels: Vec<&str> = sim.query()[sim.num_outputs()..]
        .iter()
        .map(|s| s.label.as_str())
        .collect();
    println!("noise events: {rv_labels:?}\n");

    for outcome in [0b000usize, 0b010, 0b100, 0b110, 0b111] {
        println!("observed |{outcome:03b}>:");
        match bound.most_probable_explanation(outcome, 1 << 16) {
            None => println!("  impossible under this noise model"),
            Some(exp) => {
                let blamed: Vec<&str> = exp
                    .events
                    .iter()
                    .zip(&rv_labels)
                    .filter(|(&e, _)| e != 0)
                    .map(|(_, &l)| l)
                    .collect();
                if blamed.is_empty() {
                    println!("  best explanation: no error (p = {:.4})", exp.probability);
                } else {
                    println!(
                        "  best explanation: flip at {blamed:?} (p = {:.4})",
                        exp.probability
                    );
                }
                // Posterior over each noise event given the observation.
                for (i, label) in rv_labels.iter().enumerate() {
                    let post = bound.noise_posterior(outcome, i);
                    println!("  P({label} flipped | obs) = {:.3}", post[1]);
                }
            }
        }
        println!();
    }

    // Sanity: the symptomatic |010> must blame qubit 1's flip with certainty
    // (a flip of q0 or q2 alone cannot produce it from a GHZ state).
    let exp = bound
        .most_probable_explanation(0b010, 1 << 16)
        .expect("explainable");
    assert_eq!(exp.events, vec![0, 1, 0], "the middle flip is to blame");
    println!("diagnosis confirmed: |010> is explained by the flip on qubit 1");
}
