//! Noisy-circuit sampling: compare the knowledge-compilation simulator's
//! Gibbs samples against the exact density-matrix distribution for a QAOA
//! circuit with depolarizing noise after every gate — the paper's Figure 9
//! setting, with the Figure 7 KL-divergence accuracy metric.
//!
//! Run with: `cargo run --release --example noisy_sampling`

use qkc::circuit::NoiseChannel;
use qkc::densitymatrix::DensityMatrixSimulator;
use qkc::kc::KcSimulator;
use qkc::knowledge::GibbsOptions;
use qkc::math::{empirical_kl, EmpiricalDistribution};
use qkc::workloads::{Graph, QaoaMaxCut};

fn main() {
    let n = 4;
    let qaoa = QaoaMaxCut::new(Graph::cycle(n), 1);
    let noisy = qaoa
        .circuit()
        .with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
    let params = qaoa.default_params();
    println!(
        "noisy QAOA: {} qubits, {} gates, {} noise events",
        noisy.num_qubits(),
        noisy.num_gates(),
        noisy.num_noise_ops()
    );

    // Exact distribution from the density-matrix baseline.
    let exact = DensityMatrixSimulator::new()
        .probabilities(&noisy, &params)
        .expect("bound");

    // Knowledge compilation: compile, bind, Gibbs-sample.
    let sim = KcSimulator::compile(&noisy, &Default::default());
    println!(
        "compiled AC: {} nodes / {} edges (CNF had {} clauses)",
        sim.metrics().ac_nodes,
        sim.metrics().ac_edges,
        sim.metrics().cnf_clauses_simplified
    );
    let bound = sim.bind(&params).expect("bound");
    let mut sampler = bound.sampler(&GibbsOptions {
        warmup: 500,
        thin: 2,
        seed: 11,
        ..Default::default()
    });

    println!("\nsamples    KL(empirical ‖ exact)");
    let mut emp = EmpiricalDistribution::new(1 << n);
    let checkpoints = [10usize, 100, 1000, 10_000];
    let mut drawn = 0;
    for &target in &checkpoints {
        for x in sampler.sample_outputs(target - drawn, 2) {
            emp.record(x);
        }
        drawn = target;
        println!("{target:>7}    {:.4}", empirical_kl(&emp, &exact));
    }

    // Side-by-side distribution for the most likely outcomes.
    let mut ranked: Vec<usize> = (0..1 << n).collect();
    ranked.sort_by(|&a, &b| exact[b].total_cmp(&exact[a]));
    println!("\noutcome   exact    gibbs");
    for &x in ranked.iter().take(6) {
        println!("  |{x:04b}>  {:.4}   {:.4}", exact[x], emp.probability(x));
    }
    let kl = empirical_kl(&emp, &exact);
    assert!(kl < 0.05, "Gibbs sampling should converge, KL = {kl}");
    println!("\nfinal KL divergence: {kl:.4} — Gibbs sampling matches the exact distribution");
}
