//! VQE for the 2-D transverse-field Ising model, with energies estimated
//! from two measurement settings (computational and X basis) — the workload
//! of the paper's Figures 8(b)/(d) and 9(b)/(d).
//!
//! Run with: `cargo run --release --example vqe_ising`

use qkc::kc::KcSimulator;
use qkc::knowledge::GibbsOptions;
use qkc::optim::NelderMead;
use qkc::workloads::VqeIsing;
use std::cell::RefCell;

fn main() {
    let vqe = VqeIsing::new(2, 2, 1);
    println!(
        "VQE 2x2 Ising grid: {} qubits, J = {}, h = {}",
        vqe.num_qubits(),
        vqe.coupling_j,
        vqe.field_h
    );

    // Two measurement settings, two compiled circuits (each compiled once).
    let start = std::time::Instant::now();
    let sim_z = KcSimulator::compile(&vqe.circuit(), &Default::default());
    let sim_x = KcSimulator::compile(&vqe.circuit_x_basis(), &Default::default());
    println!(
        "compiled both settings: {} + {} AC nodes in {:.2}s",
        sim_z.metrics().ac_nodes,
        sim_x.metrics().ac_nodes,
        start.elapsed().as_secs_f64()
    );

    let seed = RefCell::new(500u64);
    let objective = |values: &[f64]| -> f64 {
        *seed.borrow_mut() += 2;
        let params = vqe.params(values);
        let shots = 800;
        let z_samples = sim_z
            .bind(&params)
            .expect("bound")
            .sampler(&GibbsOptions {
                warmup: 300,
                thin: 2,
                seed: *seed.borrow(),
                ..Default::default()
            })
            .sample_outputs(shots, 2);
        let x_samples = sim_x
            .bind(&params)
            .expect("bound")
            .sampler(&GibbsOptions {
                warmup: 300,
                thin: 2,
                seed: *seed.borrow() + 1,
                ..Default::default()
            })
            .sample_outputs(shots, 2);
        vqe.energy_from_samples(&z_samples, &x_samples)
    };

    let start_point = vec![0.4; vqe.num_params()];
    let initial_energy = objective(&start_point);
    let result = NelderMead::new()
        .with_max_iterations(60)
        .with_initial_step(0.4)
        .minimize(objective, &start_point);

    let ground = vqe.ground_energy_brute_force();
    println!("initial sampled energy : {initial_energy:+.4}");
    println!("optimized sampled energy: {:+.4}", result.value);
    println!("exact ground energy     : {ground:+.4}");
    assert!(
        result.value < initial_energy + 1e-9,
        "optimization should not regress"
    );
}
