//! VQE for the 2-D transverse-field Ising model through the engine: two
//! measurement settings (computational and X basis) mean two compiled
//! artifacts, both cached; every optimizer evaluation becomes two parallel
//! parameter sweeps. This is the workload of the paper's Figures 8(b)/(d)
//! and 9(b)/(d).
//!
//! The second half compares the optimizers at an equal engine-evaluation
//! budget: Nelder–Mead, SPSA, and Adam over exact parameter-shift
//! gradients (the shared entangler angle gets the general shift rule of
//! order 4 — one unit per grid edge — and the whole gradient of each
//! measurement setting is one batched bind on its cached artifact).
//!
//! Run with: `cargo run --release --example vqe_ising`

use qkc::engine::{Engine, GradientOptimizer, VariationalGradientConfig};
use qkc::optim::{Adam, NelderMead, Spsa};
use qkc::workloads::VqeIsing;

fn main() {
    let vqe = VqeIsing::new(2, 2, 1);
    println!(
        "VQE 2x2 Ising grid: {} qubits, J = {}, h = {}",
        vqe.num_qubits(),
        vqe.coupling_j,
        vqe.field_h
    );

    let engine = Engine::new();
    let plan = engine.plan_with_hint(&vqe.circuit(), qkc::engine::PlanHint::ParameterSweep);
    println!("planned backend: {} — {}", plan.backend, plan.reason);

    let start_point = vec![0.4; vqe.num_params()];
    let initial_energy = vqe
        .energy_via(&engine, &start_point, 800, 500)
        .expect("engine run");

    let start = std::time::Instant::now();
    let result = vqe
        .optimize_via(
            &engine,
            &NelderMead::new()
                .with_max_iterations(60)
                .with_initial_step(0.4),
            &start_point,
            800,
            500,
        )
        .expect("engine run");
    let elapsed = start.elapsed().as_secs_f64();

    let ground = vqe.ground_energy_brute_force();
    println!("initial sampled energy  : {initial_energy:+.4}");
    println!("optimized sampled energy: {:+.4}", result.value);
    println!("exact ground energy     : {ground:+.4}");
    println!(
        "{} evaluations in {elapsed:.2}s — {} compiled artifact(s), {} cache hits",
        result.evaluations,
        engine.cache().misses(),
        engine.cache().hits()
    );
    assert!(
        engine.cache().misses() <= 2,
        "two measurement settings, at most two compilations"
    );
    assert!(
        result.value < initial_energy + 1e-9,
        "optimization should not regress"
    );

    // ---- optimizer comparison, equal evaluation budget ----

    println!("\n== optimizer comparison: 2x2 grid, exact objective ==");
    let budget = 2400usize;
    let x0 = vec![0.3; vqe.num_params()];
    let mut rows: Vec<(&str, f64, usize, f64)> = Vec::new();
    {
        let engine = Engine::new();
        let t = std::time::Instant::now();
        let r = vqe
            .optimize_via(
                &engine,
                &NelderMead::new().with_max_iterations(budget),
                &x0,
                0,
                7,
            )
            .expect("nelder-mead run");
        rows.push((
            "nelder-mead",
            r.value,
            r.evaluations,
            t.elapsed().as_secs_f64(),
        ));
    }
    {
        let engine = Engine::new();
        let t = std::time::Instant::now();
        let r = vqe
            .optimize_gradient_via(
                &engine,
                &x0,
                &VariationalGradientConfig {
                    optimizer: GradientOptimizer::Spsa(Spsa::new().with_max_iterations(budget / 6)),
                    shots: 0,
                    seed: 7,
                },
            )
            .expect("spsa run");
        rows.push((
            "spsa",
            r.optim.value,
            r.engine_evaluations,
            t.elapsed().as_secs_f64(),
        ));
    }
    {
        let engine = Engine::new();
        let t = std::time::Instant::now();
        // Lanes per Adam iteration: per measurement setting, base + 2 per
        // rotation + 2·4 for the shared entangler angle.
        let lanes_per_term = 1 + 2 * vqe.num_qubits() + 2 * vqe.grid().num_edges();
        let r = vqe
            .optimize_gradient_via(
                &engine,
                &x0,
                &VariationalGradientConfig {
                    optimizer: GradientOptimizer::Adam(
                        Adam::new().with_max_iterations(budget / (2 * lanes_per_term)),
                    ),
                    shots: 0,
                    seed: 7,
                },
            )
            .expect("adam run");
        assert!(r.all_exact, "KC parameter-shift gradients are exact");
        rows.push((
            "adam (param-shift)",
            r.optim.value,
            r.engine_evaluations,
            t.elapsed().as_secs_f64(),
        ));
    }
    println!("optimizer           energy     evals   secs   (ground {ground:+.4})");
    let nm_energy = rows[0].1;
    for (name, energy, evals, secs) in &rows {
        println!("{name:<18} {energy:+9.5} {evals:8} {secs:6.2}");
    }
    for (name, energy, ..) in &rows[1..] {
        assert!(
            *energy <= nm_energy + 1e-3,
            "{name} must match the Nelder–Mead baseline at equal budget: {energy} vs {nm_energy}"
        );
        assert!(*energy >= ground - 1e-6, "cannot beat the ground state");
    }
}
