//! VQE for the 2-D transverse-field Ising model through the engine: two
//! measurement settings (computational and X basis) mean two compiled
//! artifacts, both cached; every optimizer evaluation becomes two parallel
//! parameter sweeps. This is the workload of the paper's Figures 8(b)/(d)
//! and 9(b)/(d).
//!
//! Run with: `cargo run --release --example vqe_ising`

use qkc::engine::Engine;
use qkc::optim::NelderMead;
use qkc::workloads::VqeIsing;

fn main() {
    let vqe = VqeIsing::new(2, 2, 1);
    println!(
        "VQE 2x2 Ising grid: {} qubits, J = {}, h = {}",
        vqe.num_qubits(),
        vqe.coupling_j,
        vqe.field_h
    );

    let engine = Engine::new();
    let plan = engine.plan_with_hint(&vqe.circuit(), qkc::engine::PlanHint::ParameterSweep);
    println!("planned backend: {} — {}", plan.backend, plan.reason);

    let start_point = vec![0.4; vqe.num_params()];
    let initial_energy = vqe
        .energy_via(&engine, &start_point, 800, 500)
        .expect("engine run");

    let start = std::time::Instant::now();
    let result = vqe
        .optimize_via(
            &engine,
            &NelderMead::new()
                .with_max_iterations(60)
                .with_initial_step(0.4),
            &start_point,
            800,
            500,
        )
        .expect("engine run");
    let elapsed = start.elapsed().as_secs_f64();

    let ground = vqe.ground_energy_brute_force();
    println!("initial sampled energy  : {initial_energy:+.4}");
    println!("optimized sampled energy: {:+.4}", result.value);
    println!("exact ground energy     : {ground:+.4}");
    println!(
        "{} evaluations in {elapsed:.2}s — {} compiled artifact(s), {} cache hits",
        result.evaluations,
        engine.cache().misses(),
        engine.cache().hits()
    );
    assert!(
        engine.cache().misses() <= 2,
        "two measurement settings, at most two compilations"
    );
    assert!(
        result.value < initial_energy + 1e-9,
        "optimization should not regress"
    );
}
