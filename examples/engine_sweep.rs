//! The engine's moving parts in one tour: the planner picking backends
//! from circuit shape, the artifact cache compiling a sweep's structure
//! exactly once, the parallel sweep executor producing
//! thread-count-independent results, and the artifact lifecycle — a
//! byte-capped cache evicting, spilling to disk, and rehydrating without
//! changing a single bit of the output.
//!
//! Run with: `cargo run --release --example engine_sweep`
//!
//! The final section doubles as the CI eviction smoke test: it runs a
//! sweep under a `max_resident_bytes` budget small enough to force
//! eviction and asserts budget, spill, and byte-identity invariants.

use qkc::circuit::{Circuit, NoiseChannel, Param, ParamMap};
use qkc::engine::{BackendKind, CacheOptions, Engine, EngineOptions, PlanHint, SweepSpec};
use qkc::workloads::{Graph, QaoaMaxCut};

fn main() {
    let engine = Engine::new();

    // --- 1. The planner reads circuit shape -----------------------------
    println!("== planner decisions ==");
    let qaoa = QaoaMaxCut::new(Graph::random_regular(20, 3, 7), 1);
    let mut deep = Circuit::new(10);
    for _layer in 0..20 {
        for q in 0..10 {
            deep.h(q).t(q);
        }
        for q in 0..9 {
            deep.cnot(q, q + 1);
        }
    }
    let noisy = qaoa
        .circuit()
        .with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
    for (name, circuit, hint) in [
        ("20q QAOA sweep", &qaoa.circuit(), PlanHint::ParameterSweep),
        ("10q deep circuit", &deep, PlanHint::SingleShot),
        ("noisy QAOA", &noisy, PlanHint::SingleShot),
    ] {
        let plan = engine.plan_with_hint(circuit, hint);
        println!(
            "  {name:<17} -> {:<22} ({})",
            plan.backend.to_string(),
            plan.reason
        );
    }

    // --- 2. Compile once, bind many -------------------------------------
    println!("\n== parameter sweep: one compile, many bindings ==");
    let mut c = Circuit::new(2);
    c.rx(0, Param::symbol("theta")).cnot(0, 1);
    let thetas: Vec<ParamMap> = (0..64)
        .map(|i| ParamMap::from_pairs([("theta", 0.05 * i as f64)]))
        .collect();
    let obs = |bits: usize| if bits == 0b11 { 1.0 } else { 0.0 };
    let start = std::time::Instant::now();
    let points = engine
        .sweep(&c, &thetas, &SweepSpec::expectation(&obs).with_seed(11))
        .expect("sweep");
    let stats = engine.cache().stats();
    println!(
        "  {} points in {:.1} ms — {} compile(s), {} cache hits, \
         {} B of compiled tape resident",
        points.len(),
        start.elapsed().as_secs_f64() * 1e3,
        stats.misses,
        stats.hits,
        stats.resident_bytes
    );
    for p in points.iter().step_by(16) {
        let theta = 0.05 * p.index as f64;
        println!(
            "  theta = {theta:.2}  P(|11>) = {:.4}  (sin^2(theta/2) = {:.4})",
            p.expectation.unwrap(),
            (theta / 2.0).sin().powi(2)
        );
    }
    assert_eq!(engine.cache().misses(), 1);

    // --- 3. Determinism across thread counts ----------------------------
    println!("\n== determinism: per-point seeding, any thread count ==");
    use qkc::engine::{Backend, KcBackend, SweepExecutor};
    let backend = KcBackend::new(
        std::sync::Arc::new(qkc::engine::ArtifactCache::new()),
        Default::default(),
    );
    let spec = SweepSpec::samples(32).with_seed(99);
    let mut noisy_rx = Circuit::new(2);
    noisy_rx
        .rx(0, Param::symbol("theta"))
        .depolarize(0, 0.02)
        .cnot(0, 1);
    let single = SweepExecutor::new(1)
        .run(&backend, &noisy_rx, &thetas[..8], &spec)
        .expect("sweep");
    let parallel = SweepExecutor::new(8)
        .run(&backend, &noisy_rx, &thetas[..8], &spec)
        .expect("sweep");
    assert_eq!(single, parallel);
    println!(
        "  1-thread and 8-thread sweeps produced identical samples \
         (backend: {})",
        backend.kind()
    );

    // --- 4. Artifact lifecycle: byte-capped cache + on-disk spill --------
    println!("\n== artifact lifecycle: eviction + spill, bits unchanged ==");
    // Two structures whose combined tapes exceed the budget, swept twice
    // each, so the cache must evict mid-run and serve the re-requests by
    // rehydrating spill files.
    let mut other = Circuit::new(2);
    other
        .h(0)
        .rx(0, Param::symbol("theta"))
        .t(1)
        .cnot(0, 1)
        .rx(1, Param::symbol("theta"));
    let reference_engine = Engine::with_options(
        EngineOptions::default().with_backend(BackendKind::KnowledgeCompilation),
    );
    let spec = SweepSpec::expectation(&obs).with_seed(11);
    let want_c = reference_engine.sweep(&c, &thetas, &spec).expect("sweep");
    let want_other = reference_engine
        .sweep(&other, &thetas, &spec)
        .expect("sweep");
    let total = reference_engine.cache().resident_bytes();

    let spill_dir = std::env::temp_dir().join(format!("qkc-engine-sweep-{}", std::process::id()));
    let bounded = Engine::with_options(
        EngineOptions::default()
            .with_backend(BackendKind::KnowledgeCompilation)
            .with_cache(
                CacheOptions::default()
                    .with_max_resident_bytes(total / 2)
                    .with_spill_dir(&spill_dir),
            ),
    );
    for _round in 0..2 {
        let got_c = bounded.sweep(&c, &thetas, &spec).expect("bounded sweep");
        let got_other = bounded
            .sweep(&other, &thetas, &spec)
            .expect("bounded sweep");
        assert_eq!(got_c, want_c, "eviction must not change results");
        assert_eq!(got_other, want_other, "eviction must not change results");
    }
    let stats = bounded.cache().stats();
    println!(
        "  occupancy: {} of {} cached structures resident ({} B), rest \
         evicted to disk",
        stats.resident_entries, stats.entries, stats.resident_bytes
    );
    assert!(
        stats.resident_bytes <= total / 2,
        "resident {} exceeds the {}-byte budget",
        stats.resident_bytes,
        total / 2
    );
    assert!(stats.evictions > 0, "budget below footprint must evict");
    assert!(stats.spill_hits > 0, "re-requests must rehydrate from disk");
    assert_eq!(stats.misses, 2, "each structure compiled exactly once");
    println!(
        "  budget {} B (of {} B total): {} eviction(s), {} spill hit(s), \
         {} compile(s), {} B spilled on disk — outputs byte-identical to \
         the unbounded cache",
        total / 2,
        total,
        stats.evictions,
        stats.spill_hits,
        stats.misses,
        stats.spilled_bytes
    );
    bounded.cache().clear();
    let _ = std::fs::remove_dir_all(&spill_dir);

    // --- 5. Telemetry: the whole run, one tree -------------------------
    println!("\n== telemetry: spans, counters, per-phase profiles ==");
    // Off by default (every site above cost one relaxed atomic load).
    // Enable, replay a representative slice of the workload, and render.
    qkc::telemetry::set_enabled(true);
    qkc::telemetry::reset();
    let telemetry_engine = Engine::with_options(
        EngineOptions::default()
            .with_backend(BackendKind::KnowledgeCompilation)
            .with_cache(
                CacheOptions::default()
                    .with_max_resident_bytes(total / 2)
                    .with_spill_dir(&spill_dir),
            ),
    );
    let explain = telemetry_engine.explain(&qaoa.circuit());
    print!("{}", explain.render());
    for _round in 0..2 {
        telemetry_engine
            .sweep(&c, &thetas, &spec)
            .expect("telemetry sweep");
        telemetry_engine
            .sweep(&other, &thetas, &spec)
            .expect("telemetry sweep");
    }
    let snap = telemetry_engine.telemetry();
    qkc::telemetry::set_enabled(false);
    print!("{}", snap.render_tree());
    // CI smoke contract: one engine run covers all four subsystems.
    for phase in ["compile", "cache", "sweep", "planner"] {
        assert!(
            snap.has_data_under(phase),
            "telemetry report missing {phase} data"
        );
    }
    assert!(
        snap.span("compile/ddnnf").map(|s| s.count).unwrap_or(0) > 0,
        "per-phase compile spans missing"
    );
    println!(
        "  covered: compile ({} runs), cache ({} hits / {} misses), sweep \
         ({} points), planner ({} plans)",
        snap.counter("compile/runs").unwrap_or(0),
        snap.counter("cache/hit").unwrap_or(0),
        snap.counter("cache/miss").unwrap_or(0),
        snap.counter("sweep/points").unwrap_or(0),
        snap.counter("planner/plan").unwrap_or(0),
    );
    telemetry_engine.cache().clear();
    let _ = std::fs::remove_dir_all(&spill_dir);
}
