//! The engine's three moving parts in one tour: the planner picking
//! backends from circuit shape, the artifact cache compiling a sweep's
//! structure exactly once, and the parallel sweep executor producing
//! thread-count-independent results.
//!
//! Run with: `cargo run --release --example engine_sweep`

use qkc::circuit::{Circuit, NoiseChannel, Param, ParamMap};
use qkc::engine::{Engine, PlanHint, SweepSpec};
use qkc::workloads::{Graph, QaoaMaxCut};

fn main() {
    let engine = Engine::new();

    // --- 1. The planner reads circuit shape -----------------------------
    println!("== planner decisions ==");
    let qaoa = QaoaMaxCut::new(Graph::random_regular(20, 3, 7), 1);
    let mut deep = Circuit::new(10);
    for _layer in 0..20 {
        for q in 0..10 {
            deep.h(q).t(q);
        }
        for q in 0..9 {
            deep.cnot(q, q + 1);
        }
    }
    let noisy = qaoa
        .circuit()
        .with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
    for (name, circuit, hint) in [
        ("20q QAOA sweep", &qaoa.circuit(), PlanHint::ParameterSweep),
        ("10q deep circuit", &deep, PlanHint::SingleShot),
        ("noisy QAOA", &noisy, PlanHint::SingleShot),
    ] {
        let plan = engine.plan_with_hint(circuit, hint);
        println!(
            "  {name:<17} -> {:<22} ({})",
            plan.backend.to_string(),
            plan.reason
        );
    }

    // --- 2. Compile once, bind many -------------------------------------
    println!("\n== parameter sweep: one compile, many bindings ==");
    let mut c = Circuit::new(2);
    c.rx(0, Param::symbol("theta")).cnot(0, 1);
    let thetas: Vec<ParamMap> = (0..64)
        .map(|i| ParamMap::from_pairs([("theta", 0.05 * i as f64)]))
        .collect();
    let obs = |bits: usize| if bits == 0b11 { 1.0 } else { 0.0 };
    let start = std::time::Instant::now();
    let points = engine
        .sweep(&c, &thetas, &SweepSpec::expectation(&obs).with_seed(11))
        .expect("sweep");
    let stats = engine.cache().stats();
    println!(
        "  {} points in {:.1} ms — {} compile(s), {} cache hits, \
         {} B of compiled tape resident",
        points.len(),
        start.elapsed().as_secs_f64() * 1e3,
        stats.misses,
        stats.hits,
        stats.resident_bytes
    );
    for p in points.iter().step_by(16) {
        let theta = 0.05 * p.index as f64;
        println!(
            "  theta = {theta:.2}  P(|11>) = {:.4}  (sin^2(theta/2) = {:.4})",
            p.expectation.unwrap(),
            (theta / 2.0).sin().powi(2)
        );
    }
    assert_eq!(engine.cache().misses(), 1);

    // --- 3. Determinism across thread counts ----------------------------
    println!("\n== determinism: per-point seeding, any thread count ==");
    use qkc::engine::{Backend, KcBackend, SweepExecutor};
    let backend = KcBackend::new(
        std::sync::Arc::new(qkc::engine::ArtifactCache::new()),
        Default::default(),
    );
    let spec = SweepSpec::samples(32).with_seed(99);
    let mut noisy_rx = Circuit::new(2);
    noisy_rx
        .rx(0, Param::symbol("theta"))
        .depolarize(0, 0.02)
        .cnot(0, 1);
    let single = SweepExecutor::new(1)
        .run(&backend, &noisy_rx, &thetas[..8], &spec)
        .expect("sweep");
    let parallel = SweepExecutor::new(8)
        .run(&backend, &noisy_rx, &thetas[..8], &spec)
        .expect("sweep");
    assert_eq!(single, parallel);
    println!(
        "  1-thread and 8-thread sweeps produced identical samples \
         (backend: {})",
        backend.kind()
    );
}
