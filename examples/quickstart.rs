//! Quickstart: compile the paper's noisy Bell-state example (Figure 2),
//! inspect every pipeline stage, and reproduce the Table 5 upward pass.
//!
//! Run with: `cargo run --release --example quickstart`

use qkc::circuit::{Circuit, ParamMap};
use qkc::kc::KcSimulator;
use qkc::knowledge::GibbsOptions;

fn main() {
    // The running example of the paper: H on q0, phase damping with
    // γ = 0.36, CNOT — a noisy Bell pair.
    let mut circuit = Circuit::new(2);
    circuit.h(0).phase_damp(0, 0.36).cnot(0, 1);
    println!("{circuit}");

    // Stage 1-3 of the toolchain: circuit → Bayesian network → CNF → AC.
    let sim = KcSimulator::compile(&circuit, &Default::default());
    let m = sim.metrics();
    println!("Bayesian network : {} nodes", m.bn_nodes);
    println!(
        "CNF              : {} vars, {} clauses ({} after unit resolution)",
        m.cnf_vars, m.cnf_clauses, m.cnf_clauses_simplified
    );
    println!(
        "Arithmetic circuit: {} nodes, {} edges, {} bytes",
        m.ac_nodes, m.ac_edges, m.ac_size_bytes
    );

    // Bind (no symbolic parameters here) and reproduce Table 5: the
    // amplitude of each (outputs, noise-event) assignment.
    let bound = sim.bind(&ParamMap::new()).unwrap();
    println!("\nTable 5 — upward pass amplitudes:");
    println!("  rv   q0m1  q1m3   amplitude");
    for rv in 0..2usize {
        for outputs in 0..4usize {
            let amp = bound.amplitude(outputs, &[rv]);
            if amp.norm() > 1e-12 {
                println!("   {rv}    |{}>   |{}>   {amp}", outputs >> 1, outputs & 1);
            }
        }
    }

    // The density matrix of Equation 3.
    let rho = bound.density_matrix();
    println!("\nDensity matrix (Equation 3):");
    for r in 0..4 {
        print!("  ");
        for c in 0..4 {
            print!("{:+.3} ", rho[(r, c)].re);
        }
        println!();
    }

    // Gibbs-sample measurement outcomes (§3.3.2).
    let mut sampler = bound.sampler(&GibbsOptions {
        warmup: 200,
        thin: 2,
        seed: 7,
        ..Default::default()
    });
    let mut counts = [0usize; 4];
    let shots = 5000;
    for x in sampler.sample_outputs(shots, 2) {
        counts[x] += 1;
    }
    println!("\n{shots} Gibbs samples:");
    for (x, &count) in counts.iter().enumerate() {
        println!(
            "  |{:02b}>  {:5}  ({:.3})",
            x,
            count,
            count as f64 / shots as f64
        );
    }
}
