//! A full variational QAOA Max-Cut loop driven end-to-end by the engine:
//! the planner picks the knowledge-compilation backend for this
//! wide-shallow sweep, the artifact cache compiles the circuit exactly
//! once, and every optimizer evaluation re-binds the angles — candidate
//! batches fanned out across worker threads. This is the workload of the
//! paper's Figures 8(a)/(c) and 9(a)/(c).
//!
//! The second half compares the three optimizers at an equal
//! engine-evaluation budget on the C8 ring: derivative-free Nelder–Mead,
//! SPSA (two-point stochastic descent), and Adam over the engine's *exact*
//! parameter-shift gradients (each shared angle gets the general shift
//! rule of order equal to its gate count; every shifted binding is a lane
//! of one batched bind on the cached artifact).
//!
//! Run with: `cargo run --release --example qaoa_maxcut`

use qkc::engine::{Engine, GradientOptimizer, VariationalConfig, VariationalGradientConfig};
use qkc::optim::{Adam, NelderMead, Spsa};
use qkc::workloads::{Graph, QaoaMaxCut};

fn main() {
    let n = 8;
    let graph = Graph::random_regular(n, 3, 42);
    let qaoa = QaoaMaxCut::new(graph.clone(), 1);
    println!(
        "QAOA Max-Cut: {} vertices, {} edges, p = {}",
        graph.num_vertices(),
        graph.num_edges(),
        qaoa.iterations()
    );

    let engine = Engine::new();
    let plan = engine.plan_with_hint(&qaoa.circuit(), qkc::engine::PlanHint::ParameterSweep);
    println!("planned backend: {} — {}", plan.backend, plan.reason);

    let start = std::time::Instant::now();
    let result = qaoa
        .optimize_via(
            &engine,
            &VariationalConfig {
                optimizer: NelderMead::new()
                    .with_max_iterations(40)
                    .with_initial_step(0.3),
                shots: 1000,
                seed: 1000,
            },
        )
        .expect("engine run");
    let elapsed = start.elapsed().as_secs_f64();

    let best_cut = -result.optim.value;
    let max_cut = graph.max_cut_brute_force();
    println!(
        "optimized angles: gamma = {:.4}, beta = {:.4}",
        result.optim.x[0], result.optim.x[1]
    );
    println!(
        "expected cut: {best_cut:.3} (max cut = {max_cut}, ratio {:.3})",
        best_cut / max_cut as f64
    );
    println!(
        "{} engine evaluations in {elapsed:.2}s — compiled {} artifact(s), {} cache hits",
        result.engine_evaluations,
        engine.cache().misses(),
        engine.cache().hits()
    );
    assert_eq!(
        engine.cache().misses(),
        1,
        "the whole loop must compile exactly once"
    );
    assert!(
        best_cut > graph.num_edges() as f64 / 2.0,
        "QAOA should beat random guessing"
    );

    // ---- optimizer comparison on the C8 ring, equal evaluation budget ----

    println!("\n== optimizer comparison: C8 ring, p = 1, exact objective ==");
    let ring = QaoaMaxCut::new(Graph::cycle(8), 1);
    // Budget in engine evaluations; iteration caps sized so nobody exceeds
    // it (Adam pays 2·(#gamma gates + #beta gates) + 1 lanes per
    // iteration, SPSA 3 values, Nelder–Mead ~1-2).
    let budget = 2000usize;
    let mut rows: Vec<(&str, f64, usize, f64, bool)> = Vec::new();
    {
        let engine = Engine::new();
        let t = std::time::Instant::now();
        let r = ring
            .optimize_via(
                &engine,
                &VariationalConfig {
                    optimizer: NelderMead::new().with_max_iterations(budget),
                    shots: 0,
                    seed: 7,
                },
            )
            .expect("nelder-mead run");
        rows.push((
            "nelder-mead",
            -r.optim.value,
            r.engine_evaluations,
            t.elapsed().as_secs_f64(),
            r.all_exact,
        ));
    }
    {
        let engine = Engine::new();
        let t = std::time::Instant::now();
        let r = ring
            .optimize_gradient_via(
                &engine,
                &VariationalGradientConfig {
                    optimizer: GradientOptimizer::Spsa(Spsa::new().with_max_iterations(budget / 3)),
                    shots: 0,
                    seed: 7,
                },
            )
            .expect("spsa run");
        rows.push((
            "spsa",
            -r.optim.value,
            r.engine_evaluations,
            t.elapsed().as_secs_f64(),
            r.all_exact,
        ));
    }
    {
        let engine = Engine::new();
        let t = std::time::Instant::now();
        // Lanes per Adam iteration: base + 2 shifts per gate occurrence.
        let lanes = 1 + 2 * (ring.graph().num_edges() + 8);
        let r = ring
            .optimize_gradient_via(
                &engine,
                &VariationalGradientConfig {
                    optimizer: GradientOptimizer::Adam(
                        Adam::new().with_max_iterations(budget / lanes),
                    ),
                    shots: 0,
                    seed: 7,
                },
            )
            .expect("adam run");
        assert!(r.all_exact, "KC parameter-shift gradients are exact");
        rows.push((
            "adam (param-shift)",
            -r.optim.value,
            r.engine_evaluations,
            t.elapsed().as_secs_f64(),
            r.all_exact,
        ));
    }
    println!("optimizer           cut      evals   secs   exact");
    let nm_cut = rows[0].1;
    for (name, cut, evals, secs, exact) in &rows {
        println!("{name:<18} {cut:8.5} {evals:7} {secs:6.2}   {exact}");
    }
    for (name, cut, ..) in &rows[1..] {
        assert!(
            *cut >= nm_cut - 1e-3,
            "{name} must match the Nelder–Mead baseline at equal budget: {cut} vs {nm_cut}"
        );
    }
}
