//! A full variational QAOA Max-Cut loop driven end-to-end by the engine:
//! the planner picks the knowledge-compilation backend for this
//! wide-shallow sweep, the artifact cache compiles the circuit exactly
//! once, and every optimizer evaluation re-binds the angles — candidate
//! batches fanned out across worker threads. This is the workload of the
//! paper's Figures 8(a)/(c) and 9(a)/(c).
//!
//! Run with: `cargo run --release --example qaoa_maxcut`

use qkc::engine::{Engine, VariationalConfig};
use qkc::optim::NelderMead;
use qkc::workloads::{Graph, QaoaMaxCut};

fn main() {
    let n = 8;
    let graph = Graph::random_regular(n, 3, 42);
    let qaoa = QaoaMaxCut::new(graph.clone(), 1);
    println!(
        "QAOA Max-Cut: {} vertices, {} edges, p = {}",
        graph.num_vertices(),
        graph.num_edges(),
        qaoa.iterations()
    );

    let engine = Engine::new();
    let plan = engine.plan_with_hint(&qaoa.circuit(), qkc::engine::PlanHint::ParameterSweep);
    println!("planned backend: {} — {}", plan.backend, plan.reason);

    let start = std::time::Instant::now();
    let result = qaoa
        .optimize_via(
            &engine,
            &VariationalConfig {
                optimizer: NelderMead::new()
                    .with_max_iterations(40)
                    .with_initial_step(0.3),
                shots: 1000,
                seed: 1000,
            },
        )
        .expect("engine run");
    let elapsed = start.elapsed().as_secs_f64();

    let best_cut = -result.optim.value;
    let max_cut = graph.max_cut_brute_force();
    println!(
        "optimized angles: gamma = {:.4}, beta = {:.4}",
        result.optim.x[0], result.optim.x[1]
    );
    println!(
        "expected cut: {best_cut:.3} (max cut = {max_cut}, ratio {:.3})",
        best_cut / max_cut as f64
    );
    println!(
        "{} engine evaluations in {elapsed:.2}s — compiled {} artifact(s), {} cache hits",
        result.engine_evaluations,
        engine.cache().misses(),
        engine.cache().hits()
    );
    assert_eq!(
        engine.cache().misses(),
        1,
        "the whole loop must compile exactly once"
    );
    assert!(
        best_cut > graph.num_edges() as f64 / 2.0,
        "QAOA should beat random guessing"
    );
}
