//! A full variational QAOA Max-Cut loop driven by the knowledge-compilation
//! simulator: compile the circuit once, then let Nelder–Mead re-bind the
//! angles every iteration and estimate the objective from Gibbs samples —
//! the workload of the paper's Figures 8(a)/(c) and 9(a)/(c).
//!
//! Run with: `cargo run --release --example qaoa_maxcut`

use qkc::kc::KcSimulator;
use qkc::knowledge::GibbsOptions;
use qkc::optim::NelderMead;
use qkc::workloads::{Graph, QaoaMaxCut};
use std::cell::RefCell;

fn main() {
    let n = 8;
    let graph = Graph::random_regular(n, 3, 42);
    let qaoa = QaoaMaxCut::new(graph.clone(), 1);
    println!(
        "QAOA Max-Cut: {} vertices, {} edges, p = {}",
        graph.num_vertices(),
        graph.num_edges(),
        qaoa.iterations()
    );

    // Compile ONCE — the expensive step. Every optimizer iteration below
    // only re-binds parameters on the same arithmetic circuit.
    let start = std::time::Instant::now();
    let sim = KcSimulator::compile(&qaoa.circuit(), &Default::default());
    println!(
        "compiled: {} AC nodes in {:.2}s",
        sim.metrics().ac_nodes,
        start.elapsed().as_secs_f64()
    );

    let evals = RefCell::new(0usize);
    let seed = RefCell::new(1000u64);
    let objective = |angles: &[f64]| -> f64 {
        *evals.borrow_mut() += 1;
        *seed.borrow_mut() += 1;
        let params = qaoa.params(&angles[..1], &angles[1..]);
        let bound = sim.bind(&params).expect("all symbols bound");
        let mut sampler = bound.sampler(&GibbsOptions {
            warmup: 300,
            thin: 2,
            seed: *seed.borrow(),
            ..Default::default()
        });
        let samples = sampler.sample_outputs(1000, 2);
        qaoa.objective_from_samples(&samples)
    };

    let result = NelderMead::new()
        .with_max_iterations(40)
        .with_initial_step(0.3)
        .minimize(objective, &[0.5, 0.4]);

    let best_cut = -result.value;
    let max_cut = graph.max_cut_brute_force();
    println!(
        "optimized angles: gamma = {:.4}, beta = {:.4}",
        result.x[0], result.x[1]
    );
    println!(
        "expected cut from samples: {best_cut:.3} (max cut = {max_cut}, \
         ratio {:.3})",
        best_cut / max_cut as f64
    );
    println!(
        "{} objective evaluations, each re-binding the same compiled AC",
        evals.borrow()
    );
    assert!(
        best_cut > graph.num_edges() as f64 / 2.0,
        "QAOA should beat random guessing"
    );
}
