//! The [`Engine`]: planner + cache + backends + sweep executor in one
//! handle.

use crate::backend::{
    Backend, BackendKind, DensityMatrixBackend, EngineError, KcBackend, StateVectorBackend,
    TensorNetworkBackend,
};
use crate::budget::{QueryBudget, QueryCtx};
use crate::cache::{ArtifactCache, CacheOptions};
use crate::faults::FaultPlan;
use crate::gradient::{self, GradientPoint, GradientResult, GradientSpec};
use crate::planner::{KcCalibration, Plan, PlanExplanation, PlanHint, Planner};
use crate::sweep::{SweepExecutor, SweepPoint, SweepReport, SweepSpec};
use qkc_circuit::{Circuit, CircuitError, ParamMap};
use qkc_core::{record_verify_telemetry, KcOptions, VerifyLevel, VerifyReport};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Backend planning thresholds and the user override.
    pub planner: Planner,
    /// Knowledge-compilation pipeline options.
    pub kc_options: KcOptions,
    /// Worker threads for sweeps and the dense kernels.
    pub threads: usize,
    /// Sweep batch width: points per batched backend call inside each
    /// worker (see [`SweepExecutor::with_batch`]). Results are identical
    /// for every width.
    pub batch: usize,
    /// Default workload hint used by queries that do not state one.
    pub hint: PlanHint,
    /// Artifact-cache residency bounds: byte budget and spill directory
    /// (see [`CacheOptions`]). Defaults to unbounded without spill;
    /// bounding the cache never changes results — evicted artifacts
    /// rehydrate or recompile bit-identically.
    pub cache: CacheOptions,
    /// Wall-time budget applied to every engine call: a whole-call
    /// deadline and/or per-compile timeout, enforced cooperatively at
    /// compile-phase boundaries, cache waits, and sweep-lane boundaries.
    /// Defaults to unlimited.
    pub budget: QueryBudget,
    /// Deterministic fault-injection schedule, threaded into every query
    /// this engine runs (spill I/O, compile boundaries, sweep points).
    /// `None` — the default — makes every hook a no-op `Option` check.
    pub faults: Option<FaultPlan>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            planner: Planner::default(),
            kc_options: KcOptions::default(),
            threads: std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(1)
                .min(16),
            batch: crate::sweep::DEFAULT_BATCH,
            hint: PlanHint::default(),
            cache: CacheOptions::default(),
            budget: QueryBudget::default(),
            faults: None,
        }
    }
}

impl EngineOptions {
    /// Forces every query onto one backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.planner.force = Some(backend);
        self
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the sweep batch width (1 disables batched evaluation).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the default workload hint.
    pub fn with_hint(mut self, hint: PlanHint) -> Self {
        self.hint = hint;
        self
    }

    /// Sets the artifact-cache residency bounds.
    pub fn with_cache(mut self, cache: CacheOptions) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the per-call wall-time budget.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a deterministic fault-injection schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the static-verification level the artifact cache applies to
    /// rehydrated artifacts (see [`CacheOptions::verify`]).
    pub fn with_verify(mut self, level: VerifyLevel) -> Self {
        self.cache.verify = level;
        self
    }

    /// Validates the configuration: the builders keep these invariants by
    /// construction, but the fields are public, so direct assignment is
    /// re-checked before an engine is built around them.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidOptions`] naming the offending field.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.threads == 0 {
            return Err(EngineError::InvalidOptions {
                detail: "threads must be at least 1 (0 worker threads can run nothing)".into(),
            });
        }
        if self.batch == 0 {
            return Err(EngineError::InvalidOptions {
                detail: "batch must be at least 1 (0-point lanes can evaluate nothing)".into(),
            });
        }
        Ok(())
    }
}

/// The single entry point for running circuits: plans a backend per
/// circuit, caches compiled artifacts across calls, and fans parameter
/// sweeps out over worker threads.
///
/// # Examples
///
/// ```
/// use qkc_circuit::{Circuit, ParamMap};
/// use qkc_engine::Engine;
///
/// let engine = Engine::new();
/// let mut bell = Circuit::new(2);
/// bell.h(0).cnot(0, 1);
/// let p = engine.probabilities(&bell, &ParamMap::new()).unwrap();
/// assert!((p[0] - 0.5).abs() < 1e-9 && (p[3] - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct Engine {
    options: EngineOptions,
    cache: Arc<ArtifactCache>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with default options.
    pub fn new() -> Self {
        Self::with_options(EngineOptions::default())
    }

    /// An engine with explicit options.
    ///
    /// # Panics
    ///
    /// On an invalid configuration or an unusable spill directory — the
    /// same conditions [`Engine::try_with_options`] reports as typed
    /// errors.
    pub fn with_options(options: EngineOptions) -> Self {
        Self::try_with_options(options).expect("engine options rejected")
    }

    /// An engine with explicit options, validated eagerly: bad
    /// configuration values and an uncreatable/unwritable spill directory
    /// are reported here, at construction, instead of surfacing later as
    /// per-query spill failures deep inside a sweep.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidOptions`] (see [`EngineOptions::validate`])
    /// or [`EngineError::SpillDirUnavailable`] when the configured spill
    /// directory cannot be created or written.
    pub fn try_with_options(options: EngineOptions) -> Result<Self, EngineError> {
        options.validate()?;
        let cache = Arc::new(ArtifactCache::try_with_options(options.cache.clone())?);
        Ok(Self { options, cache })
    }

    /// The per-call query context: the budget's clock starts now, and the
    /// engine-wide fault plan rides along. `None` when there is nothing
    /// to enforce or inject, which keeps every downstream hook on its
    /// single-`Option`-check fast path.
    fn query_ctx(&self) -> Option<QueryCtx> {
        if self.options.budget.is_unlimited() && self.options.faults.is_none() {
            return None;
        }
        Some(QueryCtx::new(
            self.options.budget,
            self.options.faults.clone(),
        ))
    }

    /// The configuration.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The shared artifact cache (hit/miss counters, clearing).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Measured calibration for the planner's KC candidate: present
    /// exactly when this structure's compiled artifact is resident in the
    /// engine's cache (a pure peek — never compiles, never counts as a
    /// hit or miss).
    fn calibration(&self, circuit: &Circuit) -> Option<KcCalibration> {
        self.cache
            .resident_metrics(circuit, &self.options.kc_options)
            .map(|(metrics, _cost_seconds)| KcCalibration::from_metrics(&metrics))
    }

    /// Plans a backend for `circuit` under the engine's default hint.
    /// When the structure's compiled artifact is already cache-resident,
    /// the plan is calibrated against its measured tape size and compile
    /// time (see [`Planner::plan_calibrated`]).
    pub fn plan(&self, circuit: &Circuit) -> Plan {
        self.plan_with_hint(circuit, self.options.hint)
    }

    /// Plans a backend under an explicit hint.
    pub fn plan_with_hint(&self, circuit: &Circuit, hint: PlanHint) -> Plan {
        self.options
            .planner
            .plan_calibrated(circuit, hint, self.calibration(circuit).as_ref())
    }

    /// An "explain plan" for dispatch under the engine's default hint:
    /// every candidate backend's feasibility and estimated cost, plus the
    /// chosen one (always the same backend [`Engine::plan`] picks). A
    /// cache-resident artifact upgrades the KC candidate's score from the
    /// treewidth proxy to its exact measured footprint.
    pub fn explain(&self, circuit: &Circuit) -> PlanExplanation {
        self.options.planner.explain_calibrated(
            circuit,
            self.options.hint,
            self.calibration(circuit).as_ref(),
        )
    }

    /// A snapshot of the global telemetry registry: every span, counter,
    /// and histogram recorded since the last
    /// [`reset`](qkc_telemetry::reset). Telemetry is off by default —
    /// enable with [`qkc_telemetry::set_enabled`] (or `QKC_TELEMETRY=1`
    /// via [`qkc_telemetry::init_from_env`]); while disabled every
    /// instrumentation site is a single relaxed atomic load and this
    /// snapshot stays empty.
    pub fn telemetry(&self) -> qkc_telemetry::Snapshot {
        qkc_telemetry::snapshot()
    }

    /// Runs the certifying static verifier over `circuit`'s compiled
    /// artifact at [`VerifyLevel::Full`]: tape well-formedness, semantic
    /// d-DNNF certification (decomposability, determinism witnesses,
    /// smoothness over the query groups), slot liveness, and the
    /// model-layer lints evaluated under `params` (CPT
    /// row-stochasticity / unitarity within tolerance). The artifact is
    /// resolved through the engine cache, so verification never compiles
    /// a structure the cache already holds. Findings are mirrored into
    /// telemetry (`verify/finding/*`, `verify/pass/*`).
    ///
    /// # Errors
    ///
    /// Compile-side failures (budget exhaustion, injected faults) or
    /// [`EngineError::Circuit`] when `params` leaves a circuit parameter
    /// unbound.
    pub fn verify(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
    ) -> Result<VerifyReport, EngineError> {
        let ctx = self.query_ctx();
        let sim = self
            .cache
            .try_get_or_compile(circuit, &self.options.kc_options, ctx.as_ref())?;
        let report = sim
            .verify_with_params(params, VerifyLevel::Full)
            .map_err(|e| EngineError::Circuit(CircuitError::Unbound(e)))?;
        record_verify_telemetry(&report);
        Ok(report)
    }

    /// Instantiates the backend a plan chose.
    pub fn backend(&self, kind: BackendKind) -> Box<dyn Backend> {
        self.backend_with_ctx(kind, None)
    }

    /// Like [`Engine::backend`], but threads a per-call query context into
    /// the backends that honour one (the KC backend enforces budgets and
    /// fault plans through the artifact cache; the dense backends have no
    /// compile step to budget).
    fn backend_with_ctx(&self, kind: BackendKind, ctx: Option<&QueryCtx>) -> Box<dyn Backend> {
        match kind {
            BackendKind::KnowledgeCompilation => {
                let mut backend =
                    KcBackend::new(Arc::clone(&self.cache), self.options.kc_options.clone())
                        .with_max_exact_log2_branches(self.options.planner.max_exact_log2_branches);
                if let Some(ctx) = ctx {
                    backend = backend.with_ctx(ctx.clone());
                }
                Box::new(backend)
            }
            BackendKind::StateVector => Box::new(StateVectorBackend::new(self.options.threads)),
            BackendKind::DensityMatrix => Box::new(DensityMatrixBackend::new()),
            BackendKind::TensorNetwork => Box::new(TensorNetworkBackend::new(self.options.threads)),
        }
    }

    /// Plans and instantiates in one step.
    pub fn backend_for(&self, circuit: &Circuit) -> (Plan, Box<dyn Backend>) {
        let plan = self.plan(circuit);
        let backend = self.backend(plan.backend);
        (plan, backend)
    }

    /// The exact output-measurement distribution, on the planned backend.
    ///
    /// # Errors
    ///
    /// Circuit-level errors, or [`EngineError::Unsupported`] when no exact
    /// answer is feasible (fall back to [`Engine::sample`]).
    pub fn probabilities(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
    ) -> Result<Vec<f64>, EngineError> {
        let ctx = self.query_ctx();
        let backend = self.backend_with_ctx(self.plan(circuit).backend, ctx.as_ref());
        backend.probabilities(circuit, params)
    }

    /// Draws `shots` measurement outcomes on the planned backend,
    /// deterministically in `seed`.
    ///
    /// # Errors
    ///
    /// Circuit-level errors from the selected backend.
    pub fn sample(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        shots: usize,
        seed: u64,
    ) -> Result<Vec<usize>, EngineError> {
        let ctx = self.query_ctx();
        let backend = self.backend_with_ctx(self.plan(circuit).backend, ctx.as_ref());
        backend.sample(circuit, params, shots, seed)
    }

    /// The expectation of a diagonal observable: exact when the planned
    /// backend supports it, otherwise estimated from `shots` samples.
    ///
    /// # Errors
    ///
    /// Circuit-level errors from the selected backend.
    pub fn expectation(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        observable: &(dyn Fn(usize) -> f64 + Sync),
        shots: usize,
        seed: u64,
    ) -> Result<f64, EngineError> {
        let spec = SweepSpec {
            shots,
            observable: Some(observable),
            keep_samples: false,
            seed,
        };
        let points = self.sweep(circuit, std::slice::from_ref(params), &spec)?;
        Ok(points[0].expectation.expect("observable was requested"))
    }

    /// The expectation of a diagonal observable **and its gradient** with
    /// respect to `wrt` (`None` = every circuit symbol, sorted), on the
    /// backend planned for a parameter sweep. On the
    /// knowledge-compilation backend the gradient is the exact
    /// parameter-shift rule evaluated as lanes of one batched bind against
    /// the cached artifact; other backends answer the same query by
    /// central finite differences, flagged
    /// [`exact`](GradientResult::exact)` = false`.
    ///
    /// # Errors
    ///
    /// Unbound-symbol errors, or [`EngineError::Unsupported`] when the
    /// planned backend cannot produce exact expectations for this circuit
    /// (gradients never fall back to sampling).
    pub fn gradient(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        observable: &(dyn Fn(usize) -> f64 + Sync),
        wrt: Option<&[String]>,
    ) -> Result<GradientResult, EngineError> {
        let plan = self.plan_with_hint(circuit, PlanHint::ParameterSweep);
        let ctx = self.query_ctx();
        let backend = self.backend_with_ctx(plan.backend, ctx.as_ref());
        let owned;
        let wrt = match wrt {
            Some(w) => w,
            None => {
                owned = gradient::default_wrt(circuit);
                &owned
            }
        };
        backend.expectation_gradient(circuit, params, observable, wrt)
    }

    /// Runs a gradient sweep: value and gradient at every binding in
    /// `params`, fanned out across the engine's worker threads. The
    /// circuit structure compiles at most once (shared artifact cache);
    /// every point is an independent exact query, so results are
    /// byte-identical for any thread count.
    ///
    /// # Errors
    ///
    /// The first point-level error in input order.
    pub fn gradient_sweep(
        &self,
        circuit: &Circuit,
        params: &[ParamMap],
        spec: &GradientSpec<'_>,
    ) -> Result<Vec<GradientPoint>, EngineError> {
        if params.is_empty() {
            return Ok(Vec::new());
        }
        let plan = self.plan_with_hint(circuit, PlanHint::ParameterSweep);
        let ctx = self.query_ctx();
        let backend = self.backend_with_ctx(plan.backend, ctx.as_ref());
        let ctx = ctx.as_ref();
        let wrt = match &spec.wrt {
            Some(w) => w.clone(),
            None => gradient::default_wrt(circuit),
        };
        crate::sweep::fan_out_chunks(self.options.threads, params, |lo, slice| {
            slice
                .iter()
                .enumerate()
                .map(|(j, p)| {
                    if let Some(c) = ctx {
                        // Cooperative cancellation boundary, per point (a
                        // gradient point is many bound evaluations — the
                        // natural lane here).
                        c.check_deadline()?;
                    }
                    let r = backend.expectation_gradient(circuit, p, spec.observable, &wrt)?;
                    Ok(GradientPoint {
                        index: lo + j,
                        value: r.value,
                        gradient: r.gradient,
                        exact: r.exact,
                        method: r.method,
                    })
                })
                .collect()
        })
    }

    /// Runs a parameter sweep: every binding in `params` evaluated against
    /// one planned backend (hinted [`PlanHint::ParameterSweep`]), fanned
    /// out across the engine's worker threads. On the
    /// knowledge-compilation backend the circuit compiles once and every
    /// point re-binds.
    ///
    /// # Errors
    ///
    /// The lowest-index point-level failure. Use [`Engine::sweep_report`]
    /// to keep the points that did succeed.
    pub fn sweep(
        &self,
        circuit: &Circuit,
        params: &[ParamMap],
        spec: &SweepSpec<'_>,
    ) -> Result<Vec<SweepPoint>, EngineError> {
        self.sweep_report(circuit, params, spec)
            .and_then(SweepReport::into_result)
    }

    /// Runs a parameter sweep with graceful degradation: point-level
    /// failures (including worker panics, which are caught and retried
    /// once) are contained into typed [`SweepFailure`](crate::SweepFailure)
    /// entries, and every other point's result is returned —
    /// byte-identical to what a fault-free run would produce for it.
    ///
    /// # Errors
    ///
    /// Only sweep-global failures: an exceeded [`QueryBudget`] deadline or
    /// a panic that escapes point-level containment.
    pub fn sweep_report(
        &self,
        circuit: &Circuit,
        params: &[ParamMap],
        spec: &SweepSpec<'_>,
    ) -> Result<SweepReport, EngineError> {
        let plan = self.plan_with_hint(circuit, PlanHint::ParameterSweep);
        let ctx = self.query_ctx();
        let backend = self.backend_with_ctx(plan.backend, ctx.as_ref());
        SweepExecutor::new(self.options.threads)
            .with_batch(self.options.batch)
            .with_ctx(ctx)
            .run_report(backend.as_ref(), circuit, params, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_backend_is_respected() {
        let engine =
            Engine::with_options(EngineOptions::default().with_backend(BackendKind::DensityMatrix));
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let plan = engine.plan(&c);
        assert_eq!(plan.backend, BackendKind::DensityMatrix);
    }

    #[test]
    fn expectation_exact_on_pure_circuit() {
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, 1.3);
        let p1 = engine
            .expectation(&c, &ParamMap::new(), &|bits| bits as f64, 0, 0)
            .unwrap();
        assert!((p1 - (1.3f64 / 2.0).sin().powi(2)).abs() < 1e-10);
    }

    #[test]
    fn plans_calibrate_against_cache_resident_artifacts() {
        let engine = Engine::new();
        // A wide-shallow sweep circuit the planner routes to KC.
        let mut c = Circuit::new(8);
        for q in 0..8 {
            c.h(q);
        }
        for q in 0..8 {
            c.zz(q, (q + 1) % 8, qkc_circuit::Param::symbol("g"));
        }
        let hint = PlanHint::ParameterSweep;
        // Cold cache: static plan, treewidth-proxy scoring.
        let cold = engine.plan_with_hint(&c, hint);
        assert_eq!(cold.backend, BackendKind::KnowledgeCompilation);
        assert!(!cold.reason.contains("calibrated"), "{}", cold.reason);
        // Compile the artifact through a normal query, then re-plan: the
        // same decision, now justified by measured figures.
        let params = [ParamMap::from_pairs([("g", 0.3)])];
        let obs = |bits: usize| bits.count_ones() as f64;
        engine
            .sweep(&c, &params, &SweepSpec::expectation(&obs))
            .unwrap();
        let warm = engine.plan_with_hint(&c, hint);
        assert_eq!(
            warm.backend, cold.backend,
            "calibration never flips the plan"
        );
        assert!(warm.reason.contains("calibrated"), "{}", warm.reason);
        let explain = engine.explain(&c);
        let kc = explain
            .candidates
            .iter()
            .find(|cand| cand.backend == BackendKind::KnowledgeCompilation)
            .expect("kc candidate");
        assert!(kc.verdict.contains("measured"), "{}", kc.verdict);
        assert_eq!(
            engine.cache().misses(),
            1,
            "planning peeks never compile or count"
        );
    }

    #[test]
    fn invalid_options_are_rejected_with_typed_errors() {
        let zero_threads = EngineOptions {
            threads: 0,
            ..Default::default()
        };
        match Engine::try_with_options(zero_threads) {
            Err(EngineError::InvalidOptions { detail }) => {
                assert!(detail.contains("threads"), "{detail}");
            }
            other => panic!("expected InvalidOptions, got {other:?}"),
        }
        let zero_batch = EngineOptions {
            batch: 0,
            ..Default::default()
        };
        match Engine::try_with_options(zero_batch) {
            Err(EngineError::InvalidOptions { detail }) => {
                assert!(detail.contains("batch"), "{detail}");
            }
            other => panic!("expected InvalidOptions, got {other:?}"),
        }
    }

    #[test]
    fn unusable_spill_dir_is_rejected_at_construction() {
        // A regular *file* where the spill directory should be: the spill
        // path can never work, and the engine must say so now — not as a
        // degraded-mode surprise mid-sweep.
        let file =
            std::env::temp_dir().join(format!("qkc-engine-not-a-dir-{}", std::process::id()));
        std::fs::write(&file, b"occupied").expect("write blocker file");
        let options =
            EngineOptions::default().with_cache(CacheOptions::default().with_spill_dir(&file));
        let result = Engine::try_with_options(options);
        std::fs::remove_file(&file).ok();
        match result {
            Err(EngineError::SpillDirUnavailable { path, .. }) => {
                assert!(path.contains("qkc-engine-not-a-dir"), "{path}");
            }
            Ok(_) => panic!("a file-shadowed spill dir must be rejected"),
            Err(other) => panic!("expected SpillDirUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn engine_deadline_surfaces_as_a_typed_error() {
        use std::time::Duration;
        let engine = Engine::with_options(
            EngineOptions::default()
                .with_budget(QueryBudget::unlimited().with_deadline(Duration::ZERO)),
        );
        std::thread::sleep(Duration::from_millis(1));
        let mut c = Circuit::new(2);
        c.rx(0, qkc_circuit::Param::symbol("t")).cnot(0, 1);
        let params = [ParamMap::from_pairs([("t", 0.3)])];
        let obs = |bits: usize| bits as f64;
        let result = engine.sweep(&c, &params, &SweepSpec::expectation(&obs));
        assert!(
            matches!(result, Err(EngineError::DeadlineExceeded { .. })),
            "got {result:?}"
        );
    }

    #[test]
    fn engine_fault_plan_panics_are_retried_transparently() {
        let mut c = Circuit::new(2);
        c.rx(0, qkc_circuit::Param::symbol("t")).cnot(0, 1);
        let params: Vec<ParamMap> = (0..4)
            .map(|i| ParamMap::from_pairs([("t", 0.1 + 0.2 * i as f64)]))
            .collect();
        let obs = |bits: usize| bits as f64;
        let clean = Engine::new()
            .sweep(&c, &params, &SweepSpec::expectation(&obs))
            .unwrap();
        // First-attempt-only panics at two points: the executor's retry
        // makes the whole sweep succeed, byte-identically.
        let engine = Engine::with_options(
            EngineOptions::default()
                .with_fault_plan(crate::FaultPlan::seeded(9).with_panic_at([0, 2])),
        );
        let recovered = engine
            .sweep(&c, &params, &SweepSpec::expectation(&obs))
            .unwrap();
        assert_eq!(clean, recovered);
    }

    #[test]
    fn sweep_reuses_one_artifact_across_calls() {
        let engine = Engine::with_options(
            EngineOptions::default().with_backend(BackendKind::KnowledgeCompilation),
        );
        let mut c = Circuit::new(2);
        c.rx(0, qkc_circuit::Param::symbol("t")).cnot(0, 1);
        let params: Vec<ParamMap> = (0..5)
            .map(|i| ParamMap::from_pairs([("t", 0.1 * i as f64)]))
            .collect();
        let obs = |bits: usize| bits as f64;
        engine
            .sweep(&c, &params, &SweepSpec::expectation(&obs))
            .unwrap();
        engine
            .sweep(&c, &params, &SweepSpec::expectation(&obs))
            .unwrap();
        assert_eq!(
            engine.cache().misses(),
            1,
            "second sweep re-uses the artifact"
        );
    }
}
