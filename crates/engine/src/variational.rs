//! The engine-driven variational loop: batched Nelder–Mead over a
//! parameter sweep.

use crate::backend::EngineError;
use crate::facade::Engine;
use crate::sweep::SweepSpec;
use qkc_circuit::{Circuit, ParamMap};
use qkc_optim::{NelderMead, OptimResult};

/// Configuration of [`minimize_variational`].
#[derive(Debug, Clone)]
pub struct VariationalConfig {
    /// The simplex optimizer (iteration budget, tolerance, step).
    pub optimizer: NelderMead,
    /// Shots per objective evaluation when the backend cannot compute the
    /// expectation exactly. `0` forces exact-only evaluation.
    pub shots: usize,
    /// Base seed; evaluation `k` of the loop derives its own stream, so a
    /// run is exactly reproducible.
    pub seed: u64,
}

impl Default for VariationalConfig {
    fn default() -> Self {
        Self {
            optimizer: NelderMead::new(),
            shots: 1024,
            seed: 0,
        }
    }
}

/// One weighted term of a variational objective: the expectation of a
/// diagonal observable over one circuit's output distribution. Multi-term
/// objectives arise from multiple measurement settings — VQE's `Z`-basis
/// couplings plus `X`-basis field terms, for example.
pub struct VariationalTerm<'a> {
    /// The (parameterized) circuit of this measurement setting.
    pub circuit: &'a Circuit,
    /// Diagonal observable over output bitstrings.
    pub observable: &'a (dyn Fn(usize) -> f64 + Sync),
    /// Coefficient of this term in the objective.
    pub weight: f64,
}

/// The outcome of a variational run.
#[derive(Debug, Clone)]
pub struct VariationalResult {
    /// The optimizer's result (best point, value, iteration counts).
    pub optim: OptimResult,
    /// Total objective evaluations routed through the engine (one per
    /// point per term).
    pub engine_evaluations: usize,
    /// Whether every evaluation was exact (from full distributions) rather
    /// than sampled.
    pub all_exact: bool,
}

/// Minimizes the expectation of `observable` over the output distribution
/// of `circuit`, as a function of the parameter vector `x` mapped to
/// bindings by `to_params` — the paper's variational loop, run end to end
/// through the engine.
///
/// The circuit structure compiles at most once (first evaluation, via the
/// engine's artifact cache); every subsequent objective evaluation re-binds
/// parameters. Candidate batches from the optimizer (initial simplex,
/// shrink steps) are fanned out across the engine's worker threads as one
/// parameter sweep.
///
/// # Errors
///
/// The first engine-level error encountered during an evaluation.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn minimize_variational(
    engine: &Engine,
    circuit: &Circuit,
    to_params: impl Fn(&[f64]) -> ParamMap + Sync,
    observable: &(dyn Fn(usize) -> f64 + Sync),
    x0: &[f64],
    config: &VariationalConfig,
) -> Result<VariationalResult, EngineError> {
    minimize_variational_terms(
        engine,
        &[VariationalTerm {
            circuit,
            observable,
            weight: 1.0,
        }],
        to_params,
        x0,
        config,
    )
}

/// Multi-term variant of [`minimize_variational`]: minimizes
/// `Σ_t weight_t · ⟨observable_t⟩_{circuit_t(x)}`. Every term's circuit
/// compiles at most once; each optimizer batch becomes one parameter sweep
/// per term.
///
/// # Errors
///
/// The first engine-level error encountered during an evaluation.
///
/// # Panics
///
/// Panics if `terms` or `x0` is empty.
pub fn minimize_variational_terms(
    engine: &Engine,
    terms: &[VariationalTerm<'_>],
    to_params: impl Fn(&[f64]) -> ParamMap + Sync,
    x0: &[f64],
    config: &VariationalConfig,
) -> Result<VariationalResult, EngineError> {
    assert!(!terms.is_empty(), "need at least one objective term");
    let mut first_error: Option<EngineError> = None;
    let mut engine_evaluations = 0usize;
    let mut all_exact = true;
    let mut batch_index = 0u64;
    let optim = config.optimizer.minimize_batch(
        |points| {
            if first_error.is_some() {
                // A previous batch failed: short-circuit with placeholder
                // values; the result is discarded below.
                return vec![f64::INFINITY; points.len()];
            }
            let bindings: Vec<ParamMap> = points.iter().map(|x| to_params(x)).collect();
            let mut totals = vec![0.0; points.len()];
            for (t, term) in terms.iter().enumerate() {
                let spec = SweepSpec {
                    shots: config.shots,
                    observable: Some(term.observable),
                    keep_samples: false,
                    seed: crate::mix_seed(config.seed, batch_index * terms.len() as u64 + t as u64),
                };
                engine_evaluations += points.len();
                match engine.sweep(term.circuit, &bindings, &spec) {
                    Ok(sweep_points) => {
                        for (total, p) in totals.iter_mut().zip(sweep_points) {
                            all_exact &= p.exact;
                            *total +=
                                term.weight * p.expectation.expect("observable was requested");
                        }
                    }
                    Err(e) => {
                        first_error = Some(e);
                        return vec![f64::INFINITY; points.len()];
                    }
                }
            }
            batch_index += 1;
            totals
        },
        x0,
    );
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(VariationalResult {
        optim,
        engine_evaluations,
        all_exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackendKind, EngineOptions};
    use qkc_circuit::Param;

    /// Minimize P(|1>) of Rx(theta)|0>: optimum at theta = 0 (mod 2pi).
    #[test]
    fn variational_loop_finds_the_minimum_exactly() {
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let result = minimize_variational(
            &engine,
            &c,
            |x| ParamMap::from_pairs([("theta", x[0])]),
            &|bits| bits as f64,
            &[2.0],
            &VariationalConfig {
                optimizer: NelderMead::new().with_max_iterations(120),
                shots: 0,
                seed: 5,
            },
        )
        .unwrap();
        assert!(result.all_exact);
        assert!(result.optim.value < 1e-6, "value {}", result.optim.value);
        assert!(result.engine_evaluations >= result.optim.evaluations);
        assert_eq!(engine.cache().misses(), 1, "one compile for the whole loop");
    }

    #[test]
    fn variational_runs_are_reproducible() {
        // Sampled objective (forced state-vector backend on a noisy
        // circuit): two runs with one seed agree, a third seed differs.
        let mk_engine = || {
            Engine::with_options(EngineOptions::default().with_backend(BackendKind::StateVector))
        };
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta")).depolarize(0, 0.05);
        let run = |seed: u64| {
            let engine = mk_engine();
            minimize_variational(
                &engine,
                &c,
                |x| ParamMap::from_pairs([("theta", x[0])]),
                &|bits| bits as f64,
                &[1.0],
                &VariationalConfig {
                    optimizer: NelderMead::new().with_max_iterations(12),
                    shots: 64,
                    seed,
                },
            )
            .unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.optim.x, b.optim.x);
        assert_eq!(a.optim.value, b.optim.value);
        assert!(!a.all_exact);
    }

    #[test]
    fn unbound_symbol_surfaces_as_error() {
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let r = minimize_variational(
            &engine,
            &c,
            |_| ParamMap::new(), // never binds theta
            &|bits| bits as f64,
            &[1.0],
            &VariationalConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn exact_only_objective_on_incapable_backend_is_an_error_not_a_panic() {
        // shots = 0 (exact only) + forced state-vector backend + noisy
        // circuit: exact probabilities are unsupported, so the loop must
        // report the error instead of panicking on a missing expectation.
        let engine =
            Engine::with_options(EngineOptions::default().with_backend(BackendKind::StateVector));
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta")).depolarize(0, 0.05);
        let r = minimize_variational(
            &engine,
            &c,
            |x| ParamMap::from_pairs([("theta", x[0])]),
            &|bits| bits as f64,
            &[1.0],
            &VariationalConfig {
                shots: 0,
                ..Default::default()
            },
        );
        match r {
            Err(EngineError::Unsupported { .. }) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn two_term_objective_sums_weighted_expectations() {
        // Terms: +1·P(|1>) on Rx(theta) and -0.5·P(|1>) on the same
        // circuit; net objective 0.5·sin^2(theta/2), minimized at 0.
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let obs = |bits: usize| bits as f64;
        let result = minimize_variational_terms(
            &engine,
            &[
                VariationalTerm {
                    circuit: &c,
                    observable: &obs,
                    weight: 1.0,
                },
                VariationalTerm {
                    circuit: &c,
                    observable: &obs,
                    weight: -0.5,
                },
            ],
            |x| ParamMap::from_pairs([("theta", x[0])]),
            &[2.0],
            &VariationalConfig {
                optimizer: NelderMead::new().with_max_iterations(120),
                shots: 0,
                seed: 1,
            },
        )
        .unwrap();
        assert!(result.optim.value.abs() < 1e-6);
        assert_eq!(engine.cache().misses(), 1, "same structure: one compile");
    }
}
