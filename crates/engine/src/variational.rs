//! The engine-driven variational loop: batched Nelder–Mead, SPSA, or Adam
//! over parameter sweeps (and, for Adam, exact parameter-shift gradient
//! sweeps).

use crate::backend::EngineError;
use crate::facade::Engine;
use crate::sweep::SweepSpec;
use qkc_circuit::{Circuit, ParamMap};
use qkc_optim::{Adam, NelderMead, OptimResult, Spsa};

/// Configuration of [`minimize_variational`].
#[derive(Debug, Clone)]
pub struct VariationalConfig {
    /// The simplex optimizer (iteration budget, tolerance, step).
    pub optimizer: NelderMead,
    /// Shots per objective evaluation when the backend cannot compute the
    /// expectation exactly. `0` forces exact-only evaluation.
    pub shots: usize,
    /// Base seed; evaluation `k` of the loop derives its own stream, so a
    /// run is exactly reproducible.
    pub seed: u64,
}

impl Default for VariationalConfig {
    fn default() -> Self {
        Self {
            optimizer: NelderMead::new(),
            shots: 1024,
            seed: 0,
        }
    }
}

/// One weighted term of a variational objective: the expectation of a
/// diagonal observable over one circuit's output distribution. Multi-term
/// objectives arise from multiple measurement settings — VQE's `Z`-basis
/// couplings plus `X`-basis field terms, for example.
pub struct VariationalTerm<'a> {
    /// The (parameterized) circuit of this measurement setting.
    pub circuit: &'a Circuit,
    /// Diagonal observable over output bitstrings.
    pub observable: &'a (dyn Fn(usize) -> f64 + Sync),
    /// Coefficient of this term in the objective.
    pub weight: f64,
}

/// The outcome of a variational run.
#[derive(Debug, Clone)]
pub struct VariationalResult {
    /// The optimizer's result (best point, value, iteration counts).
    pub optim: OptimResult,
    /// Total objective evaluations routed through the engine (one per
    /// point per term).
    pub engine_evaluations: usize,
    /// Whether every evaluation was exact (from full distributions) rather
    /// than sampled.
    pub all_exact: bool,
}

/// Minimizes the expectation of `observable` over the output distribution
/// of `circuit`, as a function of the parameter vector `x` mapped to
/// bindings by `to_params` — the paper's variational loop, run end to end
/// through the engine.
///
/// The circuit structure compiles at most once (first evaluation, via the
/// engine's artifact cache); every subsequent objective evaluation re-binds
/// parameters. Candidate batches from the optimizer (initial simplex,
/// shrink steps) are fanned out across the engine's worker threads as one
/// parameter sweep.
///
/// # Errors
///
/// The first engine-level error encountered during an evaluation.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn minimize_variational(
    engine: &Engine,
    circuit: &Circuit,
    to_params: impl Fn(&[f64]) -> ParamMap + Sync,
    observable: &(dyn Fn(usize) -> f64 + Sync),
    x0: &[f64],
    config: &VariationalConfig,
) -> Result<VariationalResult, EngineError> {
    minimize_variational_terms(
        engine,
        &[VariationalTerm {
            circuit,
            observable,
            weight: 1.0,
        }],
        to_params,
        x0,
        config,
    )
}

/// Multi-term variant of [`minimize_variational`]: minimizes
/// `Σ_t weight_t · ⟨observable_t⟩_{circuit_t(x)}`. Every term's circuit
/// compiles at most once; each optimizer batch becomes one parameter sweep
/// per term.
///
/// # Errors
///
/// The first engine-level error encountered during an evaluation.
///
/// # Panics
///
/// Panics if `terms` or `x0` is empty.
pub fn minimize_variational_terms(
    engine: &Engine,
    terms: &[VariationalTerm<'_>],
    to_params: impl Fn(&[f64]) -> ParamMap + Sync,
    x0: &[f64],
    config: &VariationalConfig,
) -> Result<VariationalResult, EngineError> {
    assert!(!terms.is_empty(), "need at least one objective term");
    let mut state = TermState::new(engine, terms, config.shots, config.seed);
    let optim = config
        .optimizer
        .minimize_batch_try(|points| state.eval_batch(&to_params, points), x0);
    state.finish(optim)
}

/// Shared evaluation state of the value-based loops (Nelder–Mead, SPSA):
/// one batched objective over the weighted terms, with per-batch seeding,
/// prompt abort on the first engine error, and evaluation accounting that
/// only counts batches whose values were actually delivered.
struct TermState<'e, 'a, 'b> {
    engine: &'e Engine,
    terms: &'b [VariationalTerm<'a>],
    shots: usize,
    seed: u64,
    first_error: Option<EngineError>,
    engine_evaluations: usize,
    all_exact: bool,
    batch_index: u64,
}

impl<'e, 'a, 'b> TermState<'e, 'a, 'b> {
    fn new(engine: &'e Engine, terms: &'b [VariationalTerm<'a>], shots: usize, seed: u64) -> Self {
        Self {
            engine,
            terms,
            shots,
            seed,
            first_error: None,
            engine_evaluations: 0,
            all_exact: true,
            batch_index: 0,
        }
    }

    /// Evaluates one optimizer batch: one parameter sweep per term.
    /// Returns `None` on the first engine error, aborting the optimizer
    /// promptly; discarded batches do not count toward
    /// `engine_evaluations`.
    fn eval_batch(
        &mut self,
        to_params: &(impl Fn(&[f64]) -> ParamMap + Sync),
        points: &[Vec<f64>],
    ) -> Option<Vec<f64>> {
        let bindings: Vec<ParamMap> = points.iter().map(|x| to_params(x)).collect();
        let mut totals = vec![0.0; points.len()];
        let mut exact = self.all_exact;
        for (t, term) in self.terms.iter().enumerate() {
            let spec = SweepSpec {
                shots: self.shots,
                observable: Some(term.observable),
                keep_samples: false,
                seed: crate::mix_seed(
                    self.seed,
                    self.batch_index * self.terms.len() as u64 + t as u64,
                ),
            };
            match self.engine.sweep(term.circuit, &bindings, &spec) {
                Ok(sweep_points) => {
                    for (total, p) in totals.iter_mut().zip(sweep_points) {
                        exact &= p.exact;
                        *total += term.weight * p.expectation.expect("observable was requested");
                    }
                }
                Err(e) => {
                    self.first_error = Some(e);
                    return None;
                }
            }
        }
        // The whole batch succeeded: commit its accounting.
        self.engine_evaluations += points.len() * self.terms.len();
        self.all_exact = exact;
        self.batch_index += 1;
        Some(totals)
    }

    fn finish(self, optim: OptimResult) -> Result<VariationalResult, EngineError> {
        if let Some(e) = self.first_error {
            return Err(e);
        }
        Ok(VariationalResult {
            optim,
            engine_evaluations: self.engine_evaluations,
            all_exact: self.all_exact,
        })
    }
}

/// A gradient-capable optimizer for [`minimize_variational_gradient`].
#[derive(Debug, Clone)]
pub enum GradientOptimizer {
    /// Adam over exact engine gradient queries (parameter-shift on the
    /// compiled artifact): one batched gradient sweep per iteration.
    Adam(Adam),
    /// SPSA over objective values only: two-point sweeps per iteration,
    /// robust to sampled objectives — no gradient queries issued. The
    /// perturbation stream is derived from *both* the run's
    /// [`VariationalGradientConfig::seed`] and the optimizer's own seed,
    /// so one config seed reproduces a whole trajectory while distinct
    /// optimizer seeds still explore distinct perturbation streams.
    Spsa(Spsa),
}

/// Configuration of [`minimize_variational_gradient`].
#[derive(Debug, Clone)]
pub struct VariationalGradientConfig {
    /// The optimizer (Adam rides gradient queries, SPSA value sweeps).
    pub optimizer: GradientOptimizer,
    /// Shots per objective evaluation when the backend cannot compute the
    /// expectation exactly (`0` forces exact-only). Only SPSA's value
    /// sweeps ever sample; gradient queries are always exact.
    pub shots: usize,
    /// Base seed: sweep batch `k` derives its own stream, and SPSA's
    /// perturbation stream derives from it too, so a run is exactly
    /// reproducible — independent of thread count and batch width.
    pub seed: u64,
}

impl Default for VariationalGradientConfig {
    fn default() -> Self {
        Self {
            optimizer: GradientOptimizer::Adam(Adam::new()),
            shots: 1024,
            seed: 0,
        }
    }
}

/// Central-difference step for probing the `x → ParamMap` coordinate map's
/// Jacobian (exactly `2⁻¹⁶`, so `x ± δ` costs one rounding each). The maps
/// variational workloads use are affine (sign flips, scalings), where the
/// probed slope is exact up to that rounding.
const JACOBIAN_PROBE_STEP: f64 = 1.0 / 65536.0;

/// Gradient-based variant of [`minimize_variational_terms`]: minimizes
/// `Σ_t weight_t · ⟨observable_t⟩_{circuit_t(to_params(x))}` with a
/// gradient-capable optimizer, under the same compile-once and per-batch
/// seeding contract as the simplex loop — results are bit-for-bit
/// reproducible across thread counts and batch widths.
///
/// With [`GradientOptimizer::Adam`], each iteration issues one engine
/// gradient query per term ([`Engine::gradient`]): exact parameter-shift
/// on the knowledge-compilation backend, every shifted binding a lane of
/// one batched bind against the same cached artifact the value sweeps use.
/// The gradient with respect to `x` is pulled back through `to_params` by
/// the chain rule, with the coordinate map's Jacobian probed by central
/// differences (exact-to-rounding for the affine maps the workloads use).
///
/// With [`GradientOptimizer::Spsa`], no gradient queries are issued at
/// all: each iteration is one two-point value sweep, which also works for
/// sampled objectives (`shots > 0` on sampling backends).
///
/// # Errors
///
/// The first engine-level error encountered; the optimizer is aborted
/// promptly (no budget is burned after a failure).
///
/// # Panics
///
/// Panics if `terms` or `x0` is empty.
pub fn minimize_variational_gradient(
    engine: &Engine,
    terms: &[VariationalTerm<'_>],
    to_params: impl Fn(&[f64]) -> ParamMap + Sync,
    x0: &[f64],
    config: &VariationalGradientConfig,
) -> Result<VariationalResult, EngineError> {
    assert!(!terms.is_empty(), "need at least one objective term");
    match &config.optimizer {
        GradientOptimizer::Spsa(spsa) => {
            // SPSA is value-only: reuse the simplex loop's batched
            // objective. Its perturbation stream derives from the run
            // seed mixed with the optimizer's own seed (see
            // [`GradientOptimizer::Spsa`]).
            let spsa = spsa
                .clone()
                .with_seed(crate::mix_seed(config.seed, 0x5b5a_0001 ^ spsa.seed()));
            let mut state = TermState::new(engine, terms, config.shots, config.seed);
            let optim = spsa.minimize_batch_try(|points| state.eval_batch(&to_params, points), x0);
            state.finish(optim)
        }
        GradientOptimizer::Adam(adam) => {
            let n = x0.len();
            let wrt_per_term: Vec<Vec<String>> = terms
                .iter()
                .map(|t| crate::gradient::default_wrt(t.circuit))
                .collect();
            let mut first_error: Option<EngineError> = None;
            let mut engine_evaluations = 0usize;
            let mut all_exact = true;
            let optim = adam.minimize_batch_try(
                |points| {
                    let mut out = Vec::with_capacity(points.len());
                    let mut evals = 0usize;
                    let mut exact = all_exact;
                    for x in points {
                        // Probe the coordinate map's Jacobian at x.
                        let probes: Vec<(ParamMap, ParamMap)> = (0..n)
                            .map(|i| {
                                let mut xp = x.clone();
                                let mut xm = x.clone();
                                xp[i] += JACOBIAN_PROBE_STEP;
                                xm[i] -= JACOBIAN_PROBE_STEP;
                                (to_params(&xp), to_params(&xm))
                            })
                            .collect();
                        let params = to_params(x);
                        let mut value = 0.0;
                        let mut grad_x = vec![0.0; n];
                        for (term, wrt) in terms.iter().zip(&wrt_per_term) {
                            let r = match engine.gradient(
                                term.circuit,
                                &params,
                                term.observable,
                                Some(wrt),
                            ) {
                                Ok(r) => r,
                                Err(e) => {
                                    first_error = Some(e);
                                    return None;
                                }
                            };
                            evals += r.evaluations;
                            exact &= r.exact;
                            value += term.weight * r.value;
                            // Chain rule: ∂E/∂x_i = Σ_s ∂E/∂s · ∂s/∂x_i.
                            for (s, g_s) in wrt.iter().zip(&r.gradient) {
                                if *g_s == 0.0 {
                                    continue;
                                }
                                for (i, gx) in grad_x.iter_mut().enumerate() {
                                    let (plus, minus) = &probes[i];
                                    if let (Some(sp), Some(sm)) = (plus.get(s), minus.get(s)) {
                                        let j = (sp - sm) / (2.0 * JACOBIAN_PROBE_STEP);
                                        *gx += term.weight * g_s * j;
                                    }
                                }
                            }
                        }
                        out.push((value, grad_x));
                    }
                    engine_evaluations += evals;
                    all_exact = exact;
                    Some(out)
                },
                x0,
            );
            if let Some(e) = first_error {
                return Err(e);
            }
            Ok(VariationalResult {
                optim,
                engine_evaluations,
                all_exact,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackendKind, EngineOptions};
    use qkc_circuit::Param;

    /// Minimize P(|1>) of Rx(theta)|0>: optimum at theta = 0 (mod 2pi).
    #[test]
    fn variational_loop_finds_the_minimum_exactly() {
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let result = minimize_variational(
            &engine,
            &c,
            |x| ParamMap::from_pairs([("theta", x[0])]),
            &|bits| bits as f64,
            &[2.0],
            &VariationalConfig {
                optimizer: NelderMead::new().with_max_iterations(120),
                shots: 0,
                seed: 5,
            },
        )
        .unwrap();
        assert!(result.all_exact);
        assert!(result.optim.value < 1e-6, "value {}", result.optim.value);
        assert!(result.engine_evaluations >= result.optim.evaluations);
        assert_eq!(engine.cache().misses(), 1, "one compile for the whole loop");
    }

    #[test]
    fn variational_runs_are_reproducible() {
        // Sampled objective (forced state-vector backend on a noisy
        // circuit): two runs with one seed agree, a third seed differs.
        let mk_engine = || {
            Engine::with_options(EngineOptions::default().with_backend(BackendKind::StateVector))
        };
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta")).depolarize(0, 0.05);
        let run = |seed: u64| {
            let engine = mk_engine();
            minimize_variational(
                &engine,
                &c,
                |x| ParamMap::from_pairs([("theta", x[0])]),
                &|bits| bits as f64,
                &[1.0],
                &VariationalConfig {
                    optimizer: NelderMead::new().with_max_iterations(12),
                    shots: 64,
                    seed,
                },
            )
            .unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.optim.x, b.optim.x);
        assert_eq!(a.optim.value, b.optim.value);
        assert!(!a.all_exact);
    }

    #[test]
    fn unbound_symbol_surfaces_as_error() {
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let r = minimize_variational(
            &engine,
            &c,
            |_| ParamMap::new(), // never binds theta
            &|bits| bits as f64,
            &[1.0],
            &VariationalConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn exact_only_objective_on_incapable_backend_is_an_error_not_a_panic() {
        // shots = 0 (exact only) + forced state-vector backend + noisy
        // circuit: exact probabilities are unsupported, so the loop must
        // report the error instead of panicking on a missing expectation.
        let engine =
            Engine::with_options(EngineOptions::default().with_backend(BackendKind::StateVector));
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta")).depolarize(0, 0.05);
        let r = minimize_variational(
            &engine,
            &c,
            |x| ParamMap::from_pairs([("theta", x[0])]),
            &|bits| bits as f64,
            &[1.0],
            &VariationalConfig {
                shots: 0,
                ..Default::default()
            },
        );
        match r {
            Err(EngineError::Unsupported { .. }) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn failed_batch_aborts_without_counting_evaluations() {
        // Unit-level contract of the shared term evaluator: the first
        // engine error returns None (aborting the optimizer promptly) and
        // the discarded batch never lands in `engine_evaluations`.
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let obs = |bits: usize| bits as f64;
        let terms = [VariationalTerm {
            circuit: &c,
            observable: &obs,
            weight: 1.0,
        }];
        let mut state = TermState::new(&engine, &terms, 0, 1);
        let to_params = |_x: &[f64]| ParamMap::new(); // never binds theta
        assert!(state.eval_batch(&to_params, &[vec![0.5]]).is_none());
        assert!(state.first_error.is_some());
        assert_eq!(state.engine_evaluations, 0, "discarded points not counted");
        // A successful batch (bound symbol) commits its accounting.
        let mut state = TermState::new(&engine, &terms, 0, 1);
        let to_params = |x: &[f64]| ParamMap::from_pairs([("theta", x[0])]);
        let values = state
            .eval_batch(&to_params, &[vec![0.5], vec![1.0]])
            .unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(state.engine_evaluations, 2);
    }

    #[test]
    fn gradient_loop_finds_the_minimum_with_adam() {
        // Minimize P(|1>) of Rx(theta)|0> = sin²(θ/2) by exact
        // analytic gradients: optimum at θ = 0 (mod 2π).
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let obs = |bits: usize| bits as f64;
        let result = minimize_variational_gradient(
            &engine,
            &[VariationalTerm {
                circuit: &c,
                observable: &obs,
                weight: 1.0,
            }],
            |x| ParamMap::from_pairs([("theta", x[0])]),
            &[2.0],
            &VariationalGradientConfig {
                optimizer: GradientOptimizer::Adam(qkc_optim::Adam::new().with_max_iterations(150)),
                shots: 0,
                seed: 3,
            },
        )
        .unwrap();
        assert!(result.all_exact, "analytic gradients are exact");
        assert!(result.optim.value < 1e-4, "value {}", result.optim.value);
        // One tape evaluation per gradient query on the analytic path,
        // regardless of parameter count.
        assert!(result.engine_evaluations >= result.optim.iterations);
        assert_eq!(engine.cache().misses(), 1, "one compile for the whole run");
    }

    #[test]
    fn gradient_loop_finds_the_minimum_with_spsa() {
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let obs = |bits: usize| bits as f64;
        let result = minimize_variational_gradient(
            &engine,
            &[VariationalTerm {
                circuit: &c,
                observable: &obs,
                weight: 1.0,
            }],
            |x| ParamMap::from_pairs([("theta", x[0])]),
            &[2.0],
            &VariationalGradientConfig {
                optimizer: GradientOptimizer::Spsa(qkc_optim::Spsa::new().with_max_iterations(300)),
                shots: 0,
                seed: 3,
            },
        )
        .unwrap();
        assert!(result.all_exact);
        assert!(result.optim.value < 5e-2, "value {}", result.optim.value);
        assert_eq!(engine.cache().misses(), 1);
    }

    #[test]
    fn gradient_loop_pulls_back_through_affine_maps() {
        // to_params binds theta = -2·x: the Jacobian pullback must flip
        // and scale the gradient, so the optimizer still converges — to
        // x = 0 (where theta = 0).
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let obs = |bits: usize| bits as f64;
        let result = minimize_variational_gradient(
            &engine,
            &[VariationalTerm {
                circuit: &c,
                observable: &obs,
                weight: 1.0,
            }],
            |x| ParamMap::from_pairs([("theta", -2.0 * x[0])]),
            &[1.0],
            &VariationalGradientConfig {
                optimizer: GradientOptimizer::Adam(qkc_optim::Adam::new().with_max_iterations(150)),
                shots: 0,
                seed: 0,
            },
        )
        .unwrap();
        assert!(result.optim.value < 1e-4, "value {}", result.optim.value);
    }

    #[test]
    fn gradient_runs_are_reproducible_across_threads_and_batch() {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("a")).zz(0, 1, Param::symbol("b"));
        let obs = |bits: usize| bits as f64;
        let run = |threads: usize, batch: usize, spsa: bool| {
            let engine = Engine::with_options(
                EngineOptions::default()
                    .with_threads(threads)
                    .with_batch(batch),
            );
            let optimizer = if spsa {
                GradientOptimizer::Spsa(qkc_optim::Spsa::new().with_max_iterations(40))
            } else {
                GradientOptimizer::Adam(qkc_optim::Adam::new().with_max_iterations(40))
            };
            minimize_variational_gradient(
                &engine,
                &[VariationalTerm {
                    circuit: &c,
                    observable: &obs,
                    weight: 1.0,
                }],
                |x| ParamMap::from_pairs([("a", x[0]), ("b", x[1])]),
                &[1.2, 0.4],
                &VariationalGradientConfig {
                    optimizer,
                    shots: 0,
                    seed: 11,
                },
            )
            .unwrap()
        };
        for spsa in [false, true] {
            let base = run(1, 1, spsa);
            for (threads, batch) in [(2, 3), (4, 8), (8, 1)] {
                let got = run(threads, batch, spsa);
                assert_eq!(
                    base.optim.x, got.optim.x,
                    "spsa={spsa} threads={threads} batch={batch}"
                );
                assert_eq!(base.optim.value.to_bits(), got.optim.value.to_bits());
            }
        }
    }

    #[test]
    fn two_term_objective_sums_weighted_expectations() {
        // Terms: +1·P(|1>) on Rx(theta) and -0.5·P(|1>) on the same
        // circuit; net objective 0.5·sin^2(theta/2), minimized at 0.
        let engine = Engine::new();
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("theta"));
        let obs = |bits: usize| bits as f64;
        let result = minimize_variational_terms(
            &engine,
            &[
                VariationalTerm {
                    circuit: &c,
                    observable: &obs,
                    weight: 1.0,
                },
                VariationalTerm {
                    circuit: &c,
                    observable: &obs,
                    weight: -0.5,
                },
            ],
            |x| ParamMap::from_pairs([("theta", x[0])]),
            &[2.0],
            &VariationalConfig {
                optimizer: NelderMead::new().with_max_iterations(120),
                shots: 0,
                seed: 1,
            },
        )
        .unwrap();
        assert!(result.optim.value.abs() < 1e-6);
        assert_eq!(engine.cache().misses(), 1, "same structure: one compile");
    }
}
