//! The unified backend interface and the four simulator adapters.

use crate::cache::ArtifactCache;
use crate::gradient::{self, GradientMethod, GradientResult, SymbolClass, SymbolRule};
use crate::mix_seed;
use qkc_circuit::{Circuit, CircuitError, ParamMap, UnboundParam};
use qkc_core::KcOptions;
use qkc_densitymatrix::DensityMatrixSimulator;
use qkc_knowledge::GibbsOptions;
use qkc_math::AliasTable;
use qkc_statevector::StateVectorSimulator;
use qkc_tensornet::{TensorNetwork, TensorNetworkSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// The four simulator families the engine can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Compiled arithmetic circuit ([`qkc_core::KcSimulator`]): compile
    /// once, re-bind parameters cheaply; exact for pure circuits and for
    /// noisy circuits with few random events; Gibbs sampling beyond.
    KnowledgeCompilation,
    /// Dense state vector: exact pure states up to ~25 qubits; noise as
    /// per-shot quantum trajectories.
    StateVector,
    /// Dense density matrix: exact mixed states up to ~12 qubits.
    DensityMatrix,
    /// Tensor-network contraction: pure circuits; cost set by treewidth,
    /// re-paid on every sample.
    TensorNetwork,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BackendKind::KnowledgeCompilation => "knowledge-compilation",
            BackendKind::StateVector => "state-vector",
            BackendKind::DensityMatrix => "density-matrix",
            BackendKind::TensorNetwork => "tensor-network",
        };
        f.write_str(s)
    }
}

/// What a backend can answer, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Can produce exact output probabilities for noise-free circuits.
    pub exact_pure: bool,
    /// Can produce exact output probabilities for noisy circuits.
    pub exact_noisy: bool,
    /// Can draw measurement samples from noisy circuits.
    pub sample_noisy: bool,
    /// Amortizes compilation: parameter re-binding is much cheaper than the
    /// first run on a circuit structure.
    pub compile_once: bool,
}

/// Errors from engine queries.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The underlying circuit-level failure (unbound symbol, non-unitary
    /// circuit handed to a pure-state method, ...).
    Circuit(CircuitError),
    /// The selected backend cannot answer this query for this circuit.
    Unsupported {
        /// The backend that was asked.
        backend: BackendKind,
        /// What was asked of it.
        query: String,
    },
    /// A sweep worker panicked while evaluating its points. The panic is
    /// contained to the affected chunk: other workers' results are still
    /// computed and the process survives.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// An expectation was requested from a sample estimate, but the
    /// backend produced zero samples — there is no estimate, and reporting
    /// `0.0` would be silently wrong.
    NoSamples {
        /// The backend that produced no samples.
        backend: BackendKind,
    },
    /// A [`QueryBudget`](crate::QueryBudget) limit expired before the
    /// query finished. Raised cooperatively — at a compile-phase boundary,
    /// between sweep lanes, or while waiting on a cache resolution — so it
    /// fires within one checkpoint interval and never tears shared state.
    DeadlineExceeded {
        /// Which limit fired: `"deadline"` or `"compile_timeout"`.
        budget: &'static str,
        /// The configured limit, in seconds.
        limit_secs: f64,
    },
    /// [`EngineOptions`](crate::EngineOptions) that cannot be executed
    /// (zero threads, zero batch width) — rejected at construction so they
    /// never reach an executor.
    InvalidOptions {
        /// What is wrong with the options.
        detail: String,
    },
    /// The configured `CacheOptions::spill_dir` cannot be created or
    /// written. Raised eagerly at construction
    /// ([`ArtifactCache::try_with_options`]) instead of surprising the
    /// first spill.
    SpillDirUnavailable {
        /// The configured directory.
        path: String,
        /// The underlying I/O error.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Circuit(e) => write!(f, "{e}"),
            EngineError::Unsupported { backend, query } => {
                write!(f, "backend {backend} does not support {query}")
            }
            EngineError::WorkerPanicked { detail } => {
                write!(f, "sweep worker panicked: {detail}")
            }
            EngineError::NoSamples { backend } => {
                write!(
                    f,
                    "backend {backend} returned zero samples for a sampled expectation estimate"
                )
            }
            EngineError::DeadlineExceeded { budget, limit_secs } => {
                write!(f, "query budget `{budget}` of {limit_secs}s exceeded")
            }
            EngineError::InvalidOptions { detail } => {
                write!(f, "invalid engine options: {detail}")
            }
            EngineError::SpillDirUnavailable { path, detail } => {
                write!(f, "spill directory `{path}` is unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CircuitError> for EngineError {
    fn from(e: CircuitError) -> Self {
        EngineError::Circuit(e)
    }
}

/// A uniform interface over every simulator family.
///
/// All methods are deterministic: sampling queries take an explicit seed
/// and derive their generators from it, never from global state, so results
/// are reproducible and independent of scheduling.
pub trait Backend: Send + Sync {
    /// Which family this is.
    fn kind(&self) -> BackendKind;

    /// What this backend can do.
    fn capabilities(&self) -> Capabilities;

    /// The exact measurement distribution over the `2^n` output basis
    /// states.
    ///
    /// # Errors
    ///
    /// [`EngineError::Unsupported`] if this backend cannot compute exact
    /// probabilities for this circuit (e.g. noisy circuit on a pure-state
    /// backend), or a circuit-level error.
    fn probabilities(&self, circuit: &Circuit, params: &ParamMap) -> Result<Vec<f64>, EngineError>;

    /// Draws `shots` measurement outcomes, deterministically in `seed`.
    ///
    /// # Errors
    ///
    /// Circuit-level errors, or [`EngineError::Unsupported`] for circuit
    /// shapes the backend cannot sample.
    fn sample(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        shots: usize,
        seed: u64,
    ) -> Result<Vec<usize>, EngineError>;

    /// The exact measurement distribution for a batch of parameter
    /// bindings: `result[i]` equals `probabilities(circuit, &params[i])`
    /// **bit-for-bit** — batching is a throughput contract, never a
    /// numerics contract.
    ///
    /// The default runs the bindings sequentially; compile-once backends
    /// override it to amortize the compiled artifact over the whole batch
    /// ([`KcBackend`] compiles once and reconstructs each point through
    /// the flat tape's delta evaluator, which recomputes only the dirty
    /// cone between basis states).
    ///
    /// # Errors
    ///
    /// The first point-level error in input order.
    fn probabilities_batch(
        &self,
        circuit: &Circuit,
        params: &[ParamMap],
    ) -> Result<Vec<Vec<f64>>, EngineError> {
        params
            .iter()
            .map(|p| self.probabilities(circuit, p))
            .collect()
    }

    /// The exact expectation of a diagonal observable for a batch of
    /// bindings, riding on [`Backend::probabilities_batch`]. Like it,
    /// `result[i]` is bit-for-bit the single-point expectation.
    ///
    /// # Errors
    ///
    /// The first point-level error in input order.
    fn expectation_batch(
        &self,
        circuit: &Circuit,
        params: &[ParamMap],
        observable: &(dyn Fn(usize) -> f64 + Sync),
    ) -> Result<Vec<f64>, EngineError> {
        Ok(self
            .probabilities_batch(circuit, params)?
            .iter()
            .map(|probs| {
                probs
                    .iter()
                    .enumerate()
                    .map(|(bits, &p)| p * observable(bits))
                    .sum()
            })
            .collect())
    }

    /// The expectation of a diagonal observable **and its gradient** with
    /// respect to the symbols in `wrt`, at the binding `params`.
    ///
    /// The default implementation evaluates central finite differences
    /// (`±`[`FD_STEP`](crate::FD_STEP) per symbol) through one
    /// [`Backend::expectation_batch`] call and flags the result
    /// [`GradientResult::exact`]` = false`. Compile-once backends override
    /// it with the exact parameter-shift rule ([`KcBackend`] evaluates
    /// every shifted binding as a lane of one batched bind against the
    /// cached artifact).
    ///
    /// Symbols absent from the circuit get gradient component 0; symbols
    /// the circuit mentions must be bound in `params`.
    ///
    /// # Errors
    ///
    /// Unbound-symbol errors, or [`EngineError::Unsupported`] when the
    /// backend cannot produce the exact expectations the gradient is built
    /// from (gradient queries never fall back to sampling — shot noise
    /// would swamp a finite difference).
    fn expectation_gradient(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        observable: &(dyn Fn(usize) -> f64 + Sync),
        wrt: &[String],
    ) -> Result<GradientResult, EngineError> {
        // Central differences for every symbol, regardless of shift
        // structure: one batched exact evaluation, `exact: false`. Only
        // the absent/noise/gate classification is needed here — the exact
        // shift coefficients are never built.
        let scan_span = qkc_telemetry::span("gradient/scan");
        let rules: Vec<SymbolRule> = gradient::symbol_classes(circuit, wrt)
            .into_iter()
            .map(|class| match class {
                SymbolClass::Absent => SymbolRule::Absent,
                SymbolClass::Noise => SymbolRule::CentralDiffProbability,
                SymbolClass::Gates { .. } => SymbolRule::CentralDiff,
            })
            .collect();
        let (lanes, plans) = gradient::shifted_bindings(params, wrt, &rules)
            .map_err(|name| EngineError::Circuit(CircuitError::Unbound(UnboundParam::new(name))))?;
        drop(scan_span);
        let eval_span = qkc_telemetry::span("gradient/bind_eval");
        let values = self.expectation_batch(circuit, &lanes, observable)?;
        drop(eval_span);
        qkc_telemetry::count("gradient/queries", 1);
        qkc_telemetry::count("gradient/lanes", lanes.len() as u64);
        qkc_telemetry::count(GradientMethod::FiniteDifference.counter_path(), 1);
        let (value, gradient, _) = gradient::contract_gradient(&values, &plans);
        Ok(GradientResult {
            value,
            gradient,
            exact: false,
            evaluations: lanes.len(),
            method: GradientMethod::FiniteDifference,
        })
    }
}

// ---------------------------------------------------------------------------
// Knowledge compilation
// ---------------------------------------------------------------------------

/// The compiled-artifact backend: every query first consults the shared
/// [`ArtifactCache`], so repeated queries on one circuit structure (the
/// variational-sweep case) compile exactly once and then only re-bind.
#[derive(Debug, Clone)]
pub struct KcBackend {
    cache: Arc<ArtifactCache>,
    options: KcOptions,
    /// Exact noisy reconstruction enumerates every joint noise assignment;
    /// beyond this many `log2` branches it reports `Unsupported` (callers
    /// fall back to Gibbs sampling, which has no such limit).
    max_exact_log2_branches: f64,
    gibbs_warmup: usize,
    gibbs_thin: usize,
    /// Routes gate-symbol gradients through the parameter-shift path even
    /// when the analytic tangent path applies — the cross-check and
    /// benchmark-comparison knob.
    force_shift: bool,
    /// Per-symbol shift-structure scans keyed by `(circuit structural
    /// hash, wrt)`: a gradient sweep asks the same classification for
    /// every sweep point, so the circuit scan runs once per structure.
    /// Shared across clones (the sweep executor clones the backend).
    scan_cache: Arc<Mutex<HashMap<u64, Arc<Vec<SymbolClass>>>>>,
    /// The per-call query context (budget clock + fault plan), attached by
    /// the engine facade for the duration of one entry-point call. `None`
    /// — the default — costs one `Option` check per artifact acquisition.
    ctx: Option<crate::budget::QueryCtx>,
}

impl KcBackend {
    /// A backend over `cache` with the given pipeline options.
    pub fn new(cache: Arc<ArtifactCache>, options: KcOptions) -> Self {
        Self {
            cache,
            options,
            max_exact_log2_branches: 14.0,
            gibbs_warmup: 800,
            gibbs_thin: 3,
            force_shift: false,
            scan_cache: Arc::new(Mutex::new(HashMap::new())),
            ctx: None,
        }
    }

    /// Attaches a per-call query context: artifact acquisitions then
    /// honour its budget (cooperative compile cancellation, bounded cache
    /// waits) and its fault plan reaches the cache's spill I/O.
    pub(crate) fn with_ctx(mut self, ctx: crate::budget::QueryCtx) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Every query's artifact acquisition: `get_or_compile` under the
    /// attached per-call context, surfacing budget expiry as a typed
    /// error.
    fn acquire(&self, circuit: &Circuit) -> Result<Arc<qkc_core::KcSimulator>, EngineError> {
        self.cache
            .try_get_or_compile(circuit, &self.options, self.ctx.as_ref())
    }

    /// Sets the exact-enumeration budget (in `log2` joint noise branches).
    pub fn with_max_exact_log2_branches(mut self, log2: f64) -> Self {
        self.max_exact_log2_branches = log2;
        self
    }

    /// Sets the Gibbs warmup and thinning used for noisy sampling.
    pub fn with_gibbs(mut self, warmup: usize, thin: usize) -> Self {
        self.gibbs_warmup = warmup;
        self.gibbs_thin = thin;
        self
    }

    /// Forces gradient queries onto the parameter-shift path even when the
    /// one-pass analytic path applies. For cross-checking the two exact
    /// paths against each other and for benchmark comparisons; never needed
    /// for correctness.
    pub fn with_force_shift(mut self, force: bool) -> Self {
        self.force_shift = force;
        self
    }

    /// The per-symbol classification of `wrt` against `circuit`, cached by
    /// the circuit's structural hash (parameter *values* do not affect the
    /// classification, so every point of a sweep shares one scan).
    fn classes_for(&self, circuit: &Circuit, wrt: &[String]) -> Arc<Vec<SymbolClass>> {
        let mut h = DefaultHasher::new();
        circuit.structural_hash().hash(&mut h);
        wrt.hash(&mut h);
        let key = h.finish();
        if let Some(classes) = self.scan_cache.lock().unwrap().get(&key) {
            return Arc::clone(classes);
        }
        let classes = Arc::new(gradient::symbol_classes(circuit, wrt));
        self.scan_cache
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(classes)
            .clone()
    }

    /// Checks the exact-enumeration budget: `Ok` when the joint noise
    /// branches of `circuit` fit, the `Unsupported` error callers fall
    /// back to sampling on otherwise. One definition keeps the scalar and
    /// batched exact paths agreeing on what is feasible.
    fn ensure_exact_budget(&self, circuit: &Circuit) -> Result<(), EngineError> {
        let log2_branches = Self::log2_noise_branches(circuit);
        if log2_branches > self.max_exact_log2_branches {
            return Err(EngineError::Unsupported {
                backend: self.kind(),
                query: format!(
                    "exact probabilities with 2^{log2_branches:.0} noise branches \
                     (budget 2^{:.0}); use sampling instead",
                    self.max_exact_log2_branches
                ),
            });
        }
        Ok(())
    }

    /// `log2` of the joint noise/measurement branch count — the cheap
    /// O(ops) piece of [`CircuitStats`](crate::CircuitStats), computed
    /// directly so per-point hot-path calls skip the treewidth proxy.
    fn log2_noise_branches(circuit: &Circuit) -> f64 {
        circuit
            .operations()
            .iter()
            .map(|op| match op {
                qkc_circuit::Operation::Noise { channel, .. } => {
                    (channel.num_branches() as f64).log2()
                }
                qkc_circuit::Operation::Measure { .. } => 1.0,
                _ => 0.0,
            })
            .sum()
    }
}

impl Backend for KcBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::KnowledgeCompilation
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact_pure: true,
            exact_noisy: true, // subject to the enumeration budget
            sample_noisy: true,
            compile_once: true,
        }
    }

    fn probabilities(&self, circuit: &Circuit, params: &ParamMap) -> Result<Vec<f64>, EngineError> {
        let artifact = self.acquire(circuit)?;
        let bound = artifact
            .bind(params)
            .map_err(|e| EngineError::Circuit(CircuitError::Unbound(e)))?;
        if artifact.num_random_events() == 0 {
            return Ok(bound.wavefunction().iter().map(|a| a.norm_sqr()).collect());
        }
        self.ensure_exact_budget(circuit)?;
        Ok(bound.output_probabilities())
    }

    fn probabilities_batch(
        &self,
        circuit: &Circuit,
        params: &[ParamMap],
    ) -> Result<Vec<Vec<f64>>, EngineError> {
        if params.is_empty() {
            return Ok(Vec::new());
        }
        // Compile once, then all points as lanes of one batched bind: the
        // delta-aware batch lane kernel sweeps the Gray-ordered basis once
        // for the whole lane, decoding each dirty slot once while updating
        // every lane — compounding the PR 3 delta win with the PR 2 lane
        // win. Each lane is bit-for-bit the scalar reconstruction, so
        // sweep results stay byte-identical to every earlier configuration.
        let artifact = self.acquire(circuit)?;
        if artifact.num_random_events() > 0 {
            // Mirror the scalar path's per-point error order (bind first,
            // then the enumeration budget): the budget depends only on the
            // circuit, so the first scalar error is point 0's bind error
            // when it has one, the budget error otherwise.
            artifact
                .bind(&params[0])
                .map_err(|e| EngineError::Circuit(CircuitError::Unbound(e)))?;
            self.ensure_exact_budget(circuit)?;
        }
        let bound = artifact
            .bind_batch(params)
            .map_err(|e| EngineError::Circuit(CircuitError::Unbound(e)))?;
        if artifact.num_random_events() == 0 {
            Ok(bound
                .wavefunctions()
                .into_iter()
                .map(|wf| wf.iter().map(|a| a.norm_sqr()).collect())
                .collect())
        } else {
            Ok(bound.output_probabilities())
        }
    }

    fn expectation_batch(
        &self,
        circuit: &Circuit,
        params: &[ParamMap],
        observable: &(dyn Fn(usize) -> f64 + Sync),
    ) -> Result<Vec<f64>, EngineError> {
        if params.is_empty() {
            return Ok(Vec::new());
        }
        // One batched bind + one Gray-ordered basis sweep for the whole
        // lane (see `probabilities_batch`); the per-lane expectation fold
        // is the same enumerate-and-sum as the scalar path, so values are
        // bit-for-bit the single-point expectations.
        let artifact = self.acquire(circuit)?;
        if artifact.num_random_events() > 0 {
            artifact
                .bind(&params[0])
                .map_err(|e| EngineError::Circuit(CircuitError::Unbound(e)))?;
            self.ensure_exact_budget(circuit)?;
        }
        let bound = artifact
            .bind_batch(params)
            .map_err(|e| EngineError::Circuit(CircuitError::Unbound(e)))?;
        Ok(bound.expectations(&|bits| observable(bits)))
    }

    /// Exact gradients on the compiled artifact. The **analytic path** is
    /// primary: when every `wrt` symbol lives in gates (or is absent), the
    /// bind carries symbolic weight tangents and ONE differentials pass
    /// per evidence assignment yields every parameter's derivative through
    /// the chain rule — O(1) tape evaluations independent of parameter
    /// count. Symbols inside noise channels have no analytic weight
    /// tangent (their Kraus entries are `√p`-polynomial), so those queries
    /// fall back to the **parameter-shift path**: each symbol's shift
    /// structure (rule order = gate-occurrence count, so shared symbols
    /// stay exact; noise symbols use finite differences) becomes lanes of
    /// one batched bind. The shift path also remains available as a
    /// cross-check via [`KcBackend::with_force_shift`].
    fn expectation_gradient(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        observable: &(dyn Fn(usize) -> f64 + Sync),
        wrt: &[String],
    ) -> Result<GradientResult, EngineError> {
        let scan_span = qkc_telemetry::span("gradient/scan");
        let classes = self.classes_for(circuit, wrt);
        drop(scan_span);
        let analytic =
            !self.force_shift && !classes.iter().any(|c| matches!(c, SymbolClass::Noise));
        if analytic {
            // Mirror the shift path's error order: unbound *wrt* symbols
            // first (shifted_bindings reports them before compiling), then
            // the enumeration budget.
            if let Some(unbound) = wrt
                .iter()
                .zip(classes.iter())
                .find(|(s, c)| !matches!(c, SymbolClass::Absent) && params.get(s).is_none())
            {
                return Err(EngineError::Circuit(CircuitError::Unbound(
                    UnboundParam::new(unbound.0.clone()),
                )));
            }
            let artifact = self.acquire(circuit)?;
            if artifact.num_random_events() > 0 {
                self.ensure_exact_budget(circuit)?;
            }
            let bind_span = qkc_telemetry::span("gradient/tangent_bind");
            let bound = artifact
                .bind_with_tangents(params, wrt)
                .map_err(|e| EngineError::Circuit(CircuitError::Unbound(e)))?;
            drop(bind_span);
            let contract_span = qkc_telemetry::span("gradient/contract");
            let (value, grad) = bound.expectation_gradient(&|bits| observable(bits));
            drop(contract_span);
            qkc_telemetry::count("gradient/queries", 1);
            qkc_telemetry::count("gradient/lanes", 1);
            qkc_telemetry::count(GradientMethod::Analytic.counter_path(), 1);
            return Ok(GradientResult {
                value,
                gradient: grad,
                exact: true,
                evaluations: 1,
                method: GradientMethod::Analytic,
            });
        }
        let scan_span = qkc_telemetry::span("gradient/scan");
        let rules = gradient::rules_from_classes(&classes);
        let (lanes, plans) = gradient::shifted_bindings(params, wrt, &rules)
            .map_err(|name| EngineError::Circuit(CircuitError::Unbound(UnboundParam::new(name))))?;
        drop(scan_span);
        let artifact = self.acquire(circuit)?;
        if artifact.num_random_events() > 0 {
            // Gradients need exact expectations; the budget error tells the
            // caller to choose a different backend (or SPSA) instead of
            // silently differentiating shot noise.
            self.ensure_exact_budget(circuit)?;
        }
        let eval_span = qkc_telemetry::span("gradient/bind_eval");
        let bound = artifact
            .bind_batch(&lanes)
            .map_err(|e| EngineError::Circuit(CircuitError::Unbound(e)))?;
        let values = bound.expectations(&|bits| observable(bits));
        drop(eval_span);
        qkc_telemetry::count("gradient/queries", 1);
        qkc_telemetry::count("gradient/lanes", lanes.len() as u64);
        qkc_telemetry::count(GradientMethod::ParameterShift.counter_path(), 1);
        let (value, grad, exact) = gradient::contract_gradient(&values, &plans);
        Ok(GradientResult {
            value,
            gradient: grad,
            exact,
            evaluations: lanes.len(),
            method: GradientMethod::ParameterShift,
        })
    }

    fn sample(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        shots: usize,
        seed: u64,
    ) -> Result<Vec<usize>, EngineError> {
        let artifact = self.acquire(circuit)?;
        let bound = artifact
            .bind(params)
            .map_err(|e| EngineError::Circuit(CircuitError::Unbound(e)))?;
        // Exact distribution + O(1) alias draws whenever it is computable:
        // always for pure circuits, and for noisy circuits whose joint
        // noise assignments fit the enumeration budget. Gibbs sampling is
        // the fallback for wide noisy circuits, where enumeration is
        // impossible but chain updates stay cheap on the compiled artifact.
        let exact_probs = if artifact.num_random_events() == 0 {
            Some(
                bound
                    .wavefunction()
                    .iter()
                    .map(|a| a.norm_sqr())
                    .collect::<Vec<f64>>(),
            )
        } else if self.ensure_exact_budget(circuit).is_ok() {
            Some(bound.output_probabilities())
        } else {
            None
        };
        if let Some(mut probs) = exact_probs {
            for p in &mut probs {
                // Clamp numerical dust so the alias table accepts the
                // vector: probabilities are mathematically non-negative,
                // so any negative entry is cancellation error.
                *p = p.max(0.0);
            }
            let table = AliasTable::new(&probs).expect("distribution sums to 1");
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0));
            return Ok((0..shots).map(|_| table.sample(&mut rng)).collect());
        }
        let mut sampler = bound.sampler(&GibbsOptions {
            warmup: self.gibbs_warmup,
            thin: self.gibbs_thin,
            seed: mix_seed(seed, 1),
            ..Default::default()
        });
        Ok(sampler.sample_outputs(shots, self.gibbs_thin))
    }
}

// ---------------------------------------------------------------------------
// State vector
// ---------------------------------------------------------------------------

/// The dense state-vector backend (qsim-style). Exact for pure circuits;
/// noisy circuits sample as per-shot quantum trajectories.
#[derive(Debug, Clone)]
pub struct StateVectorBackend {
    sim: StateVectorSimulator,
}

impl Default for StateVectorBackend {
    fn default() -> Self {
        Self::new(1)
    }
}

impl StateVectorBackend {
    /// A backend whose gate kernels use `threads` worker threads.
    pub fn new(threads: usize) -> Self {
        Self {
            sim: StateVectorSimulator::new().with_threads(threads),
        }
    }
}

impl Backend for StateVectorBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::StateVector
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact_pure: true,
            exact_noisy: false,
            sample_noisy: true,
            compile_once: false,
        }
    }

    fn probabilities(&self, circuit: &Circuit, params: &ParamMap) -> Result<Vec<f64>, EngineError> {
        if circuit.is_noisy() {
            return Err(EngineError::Unsupported {
                backend: self.kind(),
                query: "exact probabilities of a noisy circuit".to_string(),
            });
        }
        Ok(self.sim.probabilities(circuit, params)?)
    }

    fn sample(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        shots: usize,
        seed: u64,
    ) -> Result<Vec<usize>, EngineError> {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, 2));
        Ok(self.sim.sample(circuit, params, shots, &mut rng)?)
    }
}

// ---------------------------------------------------------------------------
// Density matrix
// ---------------------------------------------------------------------------

/// The dense density-matrix backend (Cirq-style). Exact for noisy circuits;
/// memory is `4^n` so the planner caps its qubit count.
#[derive(Debug, Clone, Default)]
pub struct DensityMatrixBackend {
    sim: DensityMatrixSimulator,
}

impl DensityMatrixBackend {
    /// A density-matrix backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for DensityMatrixBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::DensityMatrix
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact_pure: true,
            exact_noisy: true,
            sample_noisy: true,
            compile_once: false,
        }
    }

    fn probabilities(&self, circuit: &Circuit, params: &ParamMap) -> Result<Vec<f64>, EngineError> {
        Ok(self.sim.probabilities(circuit, params)?)
    }

    fn sample(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        shots: usize,
        seed: u64,
    ) -> Result<Vec<usize>, EngineError> {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, 3));
        Ok(self.sim.sample(circuit, params, shots, &mut rng)?)
    }
}

// ---------------------------------------------------------------------------
// Tensor network
// ---------------------------------------------------------------------------

/// The tensor-network backend (qTorch-style). Pure circuits only; every
/// probability or sample query re-pays contraction cost, which is the
/// asymmetry the paper's Figure 8 quantifies.
#[derive(Debug, Clone)]
pub struct TensorNetworkBackend {
    sim: TensorNetworkSimulator,
    threads: usize,
    /// Exact probabilities contract one doubled network per basis state, so
    /// they are capped at this qubit count.
    max_exact_qubits: usize,
}

impl Default for TensorNetworkBackend {
    fn default() -> Self {
        Self::new(1)
    }
}

impl TensorNetworkBackend {
    /// A backend whose sampling partitions shots over `threads` threads.
    pub fn new(threads: usize) -> Self {
        Self {
            sim: TensorNetworkSimulator::new(),
            threads: threads.max(1),
            max_exact_qubits: 14,
        }
    }
}

impl Backend for TensorNetworkBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::TensorNetwork
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact_pure: true,
            exact_noisy: false,
            sample_noisy: false,
            compile_once: false,
        }
    }

    fn probabilities(&self, circuit: &Circuit, params: &ParamMap) -> Result<Vec<f64>, EngineError> {
        if circuit.is_noisy() {
            return Err(EngineError::Unsupported {
                backend: self.kind(),
                query: "exact probabilities of a noisy circuit".to_string(),
            });
        }
        if circuit.num_qubits() > self.max_exact_qubits {
            return Err(EngineError::Unsupported {
                backend: self.kind(),
                query: format!(
                    "exact probabilities beyond {} qubits (2^n contractions)",
                    self.max_exact_qubits
                ),
            });
        }
        let tn = TensorNetwork::from_circuit(circuit, params)?;
        Ok((0..1usize << circuit.num_qubits())
            .map(|x| tn.amplitude(x).norm_sqr())
            .collect())
    }

    fn sample(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        shots: usize,
        seed: u64,
    ) -> Result<Vec<usize>, EngineError> {
        if circuit.is_noisy() {
            return Err(EngineError::Unsupported {
                backend: self.kind(),
                query: "sampling a noisy circuit".to_string(),
            });
        }
        // Each shot owns a generator derived from (seed, shot index), so
        // the stream is identical however the shots are partitioned across
        // threads — unlike TensorNetworkSimulator::sample, whose per-thread
        // seeding ties results to the configured thread count.
        let tn = TensorNetwork::from_circuit(circuit, params)?;
        let shot = |s: usize| {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, 4 + s as u64));
            self.sim.sample_once(&tn, &mut rng)
        };
        if self.threads <= 1 || shots < 2 {
            return Ok((0..shots).map(shot).collect());
        }
        let chunk = shots.div_ceil(self.threads);
        let mut all = Vec::with_capacity(shots);
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..self.threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(shots);
                if lo >= hi {
                    break;
                }
                let shot = &shot;
                handles.push(scope.spawn(move |_| (lo..hi).map(shot).collect::<Vec<usize>>()));
            }
            for h in handles {
                all.extend(h.join().expect("sampler thread panicked"));
            }
        })
        .expect("scoped thread panicked");
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::Circuit;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        c
    }

    #[test]
    fn all_backends_agree_on_bell_probabilities() {
        let cache = Arc::new(ArtifactCache::new());
        let backends: Vec<Box<dyn Backend>> = vec![
            Box::new(KcBackend::new(cache, KcOptions::default())),
            Box::new(StateVectorBackend::new(1)),
            Box::new(DensityMatrixBackend::new()),
            Box::new(TensorNetworkBackend::new(1)),
        ];
        for b in &backends {
            let p = b.probabilities(&bell(), &ParamMap::new()).unwrap();
            assert!((p[0] - 0.5).abs() < 1e-9, "{}: {p:?}", b.kind());
            assert!((p[3] - 0.5).abs() < 1e-9, "{}: {p:?}", b.kind());
        }
    }

    #[test]
    fn batched_probabilities_match_scalar_bit_for_bit() {
        use qkc_circuit::Param;
        let mut pure = Circuit::new(2);
        pure.rx(0, Param::symbol("t")).cnot(0, 1);
        let mut noisy = pure.clone();
        noisy.depolarize(0, 0.05);
        let params: Vec<ParamMap> = (0..5)
            .map(|i| ParamMap::from_pairs([("t", 0.2 + 0.4 * i as f64)]))
            .collect();
        let cache = Arc::new(ArtifactCache::new());
        let backends: Vec<Box<dyn Backend>> = vec![
            Box::new(KcBackend::new(cache, KcOptions::default())),
            Box::new(StateVectorBackend::new(1)),
            Box::new(DensityMatrixBackend::new()),
            Box::new(TensorNetworkBackend::new(1)),
        ];
        for b in &backends {
            for circuit in [&pure, &noisy] {
                let scalar: Result<Vec<Vec<f64>>, EngineError> =
                    params.iter().map(|p| b.probabilities(circuit, p)).collect();
                let batched = b.probabilities_batch(circuit, &params);
                match (scalar, batched) {
                    (Ok(scalar), Ok(batched)) => {
                        for (i, (s, g)) in scalar.iter().zip(&batched).enumerate() {
                            for (x, (&sv, &gv)) in s.iter().zip(g).enumerate() {
                                assert_eq!(
                                    sv.to_bits(),
                                    gv.to_bits(),
                                    "{} point {i} P({x})",
                                    b.kind()
                                );
                            }
                        }
                    }
                    (Err(_), Err(_)) => {} // both unsupported, consistently
                    other => panic!("{}: support mismatch {other:?}", b.kind()),
                }
            }
        }
    }

    #[test]
    fn expectation_batch_rides_probabilities() {
        let cache = Arc::new(ArtifactCache::new());
        let kc = KcBackend::new(cache, KcOptions::default());
        let obs = |bits: usize| if bits == 3 { 1.0 } else { 0.0 };
        let params = vec![ParamMap::new(); 3];
        let got = kc.expectation_batch(&bell(), &params, &obs).unwrap();
        for v in got {
            assert!((v - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let cache = Arc::new(ArtifactCache::new());
        let backends: Vec<Box<dyn Backend>> = vec![
            Box::new(KcBackend::new(cache, KcOptions::default())),
            Box::new(StateVectorBackend::new(1)),
            Box::new(DensityMatrixBackend::new()),
            Box::new(TensorNetworkBackend::new(1)),
        ];
        let mut noisy = bell();
        noisy.depolarize(0, 0.05);
        for b in &backends {
            let circuit = if b.capabilities().sample_noisy {
                noisy.clone()
            } else {
                bell()
            };
            let a = b.sample(&circuit, &ParamMap::new(), 64, 9).unwrap();
            let bb = b.sample(&circuit, &ParamMap::new(), 64, 9).unwrap();
            let c = b.sample(&circuit, &ParamMap::new(), 64, 10).unwrap();
            assert_eq!(a, bb, "{} must be seed-deterministic", b.kind());
            assert_ne!(a, c, "{} must vary with the seed", b.kind());
        }
    }

    #[test]
    fn tensor_network_sampling_is_thread_count_independent() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rx(2, 0.7).cz(1, 2);
        let single = TensorNetworkBackend::new(1)
            .sample(&c, &ParamMap::new(), 33, 5)
            .unwrap();
        for threads in [2, 4, 8] {
            let got = TensorNetworkBackend::new(threads)
                .sample(&c, &ParamMap::new(), 33, 5)
                .unwrap();
            assert_eq!(single, got, "thread count {threads} changed the stream");
        }
    }

    #[test]
    fn unsupported_queries_are_reported_not_wrong() {
        let mut noisy = bell();
        noisy.depolarize(0, 0.05);
        let sv = StateVectorBackend::new(1);
        let err = sv.probabilities(&noisy, &ParamMap::new()).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported { .. }));
        let tn = TensorNetworkBackend::new(1);
        assert!(tn.sample(&noisy, &ParamMap::new(), 8, 1).is_err());
    }
}
