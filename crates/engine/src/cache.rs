//! The compile-once artifact cache.

use qkc_circuit::Circuit;
use qkc_core::{KcOptions, KcSimulator};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A thread-safe cache of compiled [`KcSimulator`] artifacts, keyed by the
/// circuit's [structural hash](Circuit::structural_hash) plus the pipeline
/// options.
///
/// Variational sweeps re-run one circuit structure under thousands of
/// parameter bindings; every engine query routes through this cache, so the
/// expensive compilation happens exactly once per structure and each
/// iteration only pays the cheap bind step. Concurrent requests for the
/// same structure block on one compilation rather than duplicating it.
///
/// # Examples
///
/// ```
/// use qkc_circuit::{Circuit, Param, ParamMap};
/// use qkc_core::KcOptions;
/// use qkc_engine::ArtifactCache;
///
/// let cache = ArtifactCache::new();
/// let mut c = Circuit::new(2);
/// c.rx(0, Param::symbol("t")).cnot(0, 1);
/// let a = cache.get_or_compile(&c, &KcOptions::default());
/// let b = cache.get_or_compile(&c, &KcOptions::default());
/// assert_eq!(cache.misses(), 1); // compiled once
/// assert_eq!(cache.hits(), 1);
/// // Both handles re-bind against the same artifact.
/// assert!(a.bind(&ParamMap::from_pairs([("t", 0.3)])).is_ok());
/// assert!(b.bind(&ParamMap::from_pairs([("t", 1.2)])).is_ok());
/// ```
#[derive(Debug)]
struct Entry {
    /// The circuit this entry was created for, kept to turn a 64-bit key
    /// collision into a cache miss instead of silently wrong results.
    circuit: Circuit,
    options_key: String,
    cell: Arc<OnceLock<Arc<KcSimulator>>>,
}

#[derive(Debug, Default)]
pub struct ArtifactCache {
    /// Keyed by the 64-bit structural key; each key holds *every* distinct
    /// `(circuit, options)` pair that hashes to it (64-bit collisions are
    /// astronomically rare, so the vec is length 1 in practice — but a
    /// collision must not evict either structure from caching).
    entries: Mutex<HashMap<u64, Vec<Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Test-only key hook: collapse every key to a constant so collision
    /// handling can be exercised deterministically.
    #[cfg(test)]
    collide_all_keys: bool,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache whose every key collides — the regression hook for the
    /// collision path (test-only).
    #[cfg(test)]
    fn with_forced_collisions() -> Self {
        Self {
            collide_all_keys: true,
            ..Self::default()
        }
    }

    /// The cache key: structural hash of the circuit, extended with the
    /// pipeline options (different options compile different artifacts).
    fn key(&self, circuit: &Circuit, options: &KcOptions) -> u64 {
        #[cfg(test)]
        if self.collide_all_keys {
            return 0;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_u64(circuit.structural_hash());
        // KcOptions is a plain field struct; its Debug form covers every
        // field deterministically.
        format!("{options:?}").hash(&mut h);
        h.finish()
    }

    /// Returns the compiled artifact for `circuit`, compiling it on first
    /// use. Concurrent callers with the same structure share one
    /// compilation; callers with different structures compile in parallel.
    ///
    /// A 64-bit key collision between two different circuits is detected
    /// by comparing the stored circuits, and the colliding structure is
    /// stored *alongside* the existing one — both cache normally (an
    /// earlier version recompiled the second structure on every request,
    /// which turned a one-in-2⁶⁴ event into a permanent recompile loop).
    pub fn get_or_compile(&self, circuit: &Circuit, options: &KcOptions) -> Arc<KcSimulator> {
        let key = self.key(circuit, options);
        let options_key = format!("{options:?}");
        let cell = {
            let mut entries = self.entries.lock().expect("cache poisoned");
            let bucket = entries.entry(key).or_default();
            match bucket
                .iter()
                .find(|e| e.options_key == options_key && e.circuit == *circuit)
            {
                Some(entry) => entry.cell.clone(),
                None => {
                    bucket.push(Entry {
                        circuit: circuit.clone(),
                        options_key,
                        cell: Arc::default(),
                    });
                    bucket.last().expect("just pushed").cell.clone()
                }
            }
        };
        let mut compiled_here = false;
        let artifact = cell
            .get_or_init(|| {
                compiled_here = true;
                Arc::new(KcSimulator::compile(circuit, options))
            })
            .clone();
        if compiled_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        artifact
    }

    /// Number of requests served from an existing artifact.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that compiled a new artifact.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Exact bytes of compiled execution tape resident in the cache: the
    /// sum of `ac_size_bytes` over every finished artifact (entries still
    /// compiling contribute 0). This is the occupancy figure a size-aware
    /// eviction policy evicts against.
    pub fn resident_bytes(&self) -> usize {
        self.occupancy().1
    }

    /// Entry count and resident tape bytes, read under one lock
    /// acquisition so the pair is mutually consistent.
    fn occupancy(&self) -> (usize, usize) {
        let map = self.entries.lock().expect("cache poisoned");
        let entries = map.values().map(Vec::len).sum();
        let bytes = map
            .values()
            .flatten()
            .filter_map(|e| e.cell.get())
            .map(|artifact| artifact.metrics().ac_size_bytes)
            .sum();
        (entries, bytes)
    }

    /// A point-in-time snapshot of counters and resident footprint (the
    /// hit/miss counters are sampled alongside, best-effort).
    pub fn stats(&self) -> crate::CacheStats {
        let (entries, resident_bytes) = self.occupancy();
        crate::CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries,
            resident_bytes,
        }
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every artifact (hit/miss counters keep accumulating).
    pub fn clear(&self) {
        self.entries.lock().expect("cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::Param;

    fn parameterized() -> Circuit {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("a")).zz(0, 1, Param::symbol("b"));
        c
    }

    #[test]
    fn same_structure_compiles_once() {
        let cache = ArtifactCache::new();
        for _ in 0..10 {
            cache.get_or_compile(&parameterized(), &KcOptions::default());
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 9);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn changed_structure_recompiles() {
        let cache = ArtifactCache::new();
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        let mut widened = parameterized();
        widened.h(1);
        cache.get_or_compile(&widened, &KcOptions::default());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn changed_options_recompile() {
        let cache = ArtifactCache::new();
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        let no_elide = KcOptions {
            elide_internal: false,
            ..Default::default()
        };
        cache.get_or_compile(&parameterized(), &no_elide);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn concurrent_requests_share_one_compilation() {
        let cache = Arc::new(ArtifactCache::new());
        crossbeam::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                handles.push(s.spawn(move |_| {
                    cache.get_or_compile(&parameterized(), &KcOptions::default());
                }));
            }
            for h in handles {
                h.join().expect("thread");
            }
        })
        .expect("scope");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn resident_bytes_track_cached_artifacts() {
        let cache = ArtifactCache::new();
        assert_eq!(cache.resident_bytes(), 0);
        let a = cache.get_or_compile(&parameterized(), &KcOptions::default());
        let one = cache.resident_bytes();
        assert_eq!(one, a.metrics().ac_size_bytes);
        assert!(one > 0);
        // A second structure adds its own tape bytes.
        let mut widened = parameterized();
        widened.h(1);
        let b = cache.get_or_compile(&widened, &KcOptions::default());
        assert_eq!(
            cache.resident_bytes(),
            a.metrics().ac_size_bytes + b.metrics().ac_size_bytes
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.resident_bytes, cache.resident_bytes());
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn colliding_structures_both_cache() {
        // Regression: with every key forced to collide, two different
        // structures must still each compile exactly once — the earlier
        // collision handling never stored the second structure, so every
        // later request for it recompiled forever.
        let cache = ArtifactCache::with_forced_collisions();
        let a = parameterized();
        let mut b = parameterized();
        b.h(1);
        for _ in 0..3 {
            cache.get_or_compile(&a, &KcOptions::default());
            cache.get_or_compile(&b, &KcOptions::default());
        }
        assert_eq!(cache.misses(), 2, "one compile per structure, ever");
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 2, "both structures resident under one key");
        // Options changes on a colliding key also cache independently.
        let no_elide = KcOptions {
            elide_internal: false,
            ..Default::default()
        };
        cache.get_or_compile(&a, &no_elide);
        cache.get_or_compile(&a, &no_elide);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.len(), 3);
        // Occupancy accounting covers every entry in the bucket.
        assert!(cache.resident_bytes() > 0);
        assert_eq!(cache.stats().entries, 3);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = ArtifactCache::new();
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        assert_eq!(cache.misses(), 2);
    }
}
