//! The compile-once artifact cache: bounded residency, cost-aware
//! eviction, and on-disk spill.
//!
//! Variational sweeps re-run one circuit structure under thousands of
//! parameter bindings; every engine query routes through this cache, so
//! the expensive compilation happens exactly once per structure and each
//! iteration only pays the cheap bind step. Long-running services add a
//! second requirement the paper's economics imply but an unbounded map
//! ignores: the compiled artifacts *are* the precious resource, and a
//! shared cache must hold as many of them as memory allows — and no more.
//!
//! # Lifecycle
//!
//! [`CacheOptions`] bounds the cache. When `max_resident_bytes` is set,
//! the cache enforces it against the **exact** resident tape footprint
//! (`PipelineMetrics::ac_size_bytes`, maintained incrementally): whenever
//! occupancy exceeds the budget, entries are evicted in cost-aware-LRU
//! order (GreedyDual-Size: each resident artifact carries the priority
//! `clock + reacquire_cost / size`, refreshed on every access; eviction
//! removes the minimum and advances the clock to it — so recently used,
//! expensive-to-recompile, small artifacts survive longest).
//!
//! When `spill_dir` is also set, artifacts are *written through* to disk
//! in the versioned artifact wire format ([`KcSimulator::to_bytes`]) right
//! after compilation, outside every lock. Eviction then merely drops the
//! resident copy; the next request for that structure **rehydrates** from
//! the spill file ([`KcSimulator::from_bytes`]) instead of recompiling —
//! orders of magnitude cheaper, and bit-for-bit identical (the
//! determinism contract is unaffected by eviction). Spill files carry the
//! circuit's structural hash, an options fingerprint, and checksums, so a
//! fresh cache pointed at a warm `spill_dir` safely reuses artifacts from
//! a previous process — corrupt, stale, or mismatched files are detected
//! and recompiled over.
//!
//! # Concurrency
//!
//! One mutex guards the whole cache state, so counters, entry count, and
//! occupancy are always mutually consistent (a [`stats`](ArtifactCache::stats)
//! snapshot is taken under a single lock acquisition). Compilation and
//! rehydration run *outside* the lock: the resolving thread marks the
//! entry busy, and concurrent requests for the same structure block on a
//! condvar until it lands, while requests for other structures proceed in
//! parallel. Eviction and spill never do I/O under the lock.
//!
//! # Examples
//!
//! ```
//! use qkc_circuit::{Circuit, Param, ParamMap};
//! use qkc_core::KcOptions;
//! use qkc_engine::ArtifactCache;
//!
//! let cache = ArtifactCache::new();
//! let mut c = Circuit::new(2);
//! c.rx(0, Param::symbol("t")).cnot(0, 1);
//! let a = cache.get_or_compile(&c, &KcOptions::default());
//! let b = cache.get_or_compile(&c, &KcOptions::default());
//! assert_eq!(cache.misses(), 1); // compiled once
//! assert_eq!(cache.hits(), 1);
//! // Both handles re-bind against the same artifact.
//! assert!(a.bind(&ParamMap::from_pairs([("t", 0.3)])).is_ok());
//! assert!(b.bind(&ParamMap::from_pairs([("t", 1.2)])).is_ok());
//! ```

use crate::budget::{self, QueryCtx};
use crate::faults::{self, FaultPlan, FaultSite};
use crate::EngineError;
use qkc_circuit::Circuit;
use qkc_core::{
    record_verify_telemetry, CompileError, CompilePhase, KcOptions, KcSimulator, VerifyLevel,
};
use qkc_telemetry::{count, record_size, record_span_secs};
use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Total attempts per spill-I/O operation (1 initial + retries).
const SPILL_ATTEMPTS: u32 = 3;

/// Deterministic exponential backoff before retry `n` (0-based):
/// 500µs · 2ⁿ — long enough to let a transient I/O hiccup clear, short
/// enough that an always-failing disk degrades within a few milliseconds.
fn spill_backoff(retry: u32) -> Duration {
    Duration::from_micros(500) * 2u32.saturating_pow(retry)
}

/// Residency and persistence bounds for an [`ArtifactCache`].
#[derive(Debug, Clone, Default)]
pub struct CacheOptions {
    /// Maximum bytes of compiled execution tape the cache keeps resident
    /// (`None` = unbounded). Enforced against the exact
    /// `PipelineMetrics::ac_size_bytes` occupancy after every
    /// resolution/access; a single artifact larger than the budget is
    /// evicted as soon as it lands (each request then recompiles or
    /// rehydrates it, but the budget holds).
    ///
    /// The budget covers the compiled tapes — the payload that dominates
    /// memory by orders of magnitude. Per-structure bookkeeping (the
    /// circuit, options, spill path) stays resident after eviction so the
    /// entry can come back; a service cycling through unboundedly many
    /// *distinct structures* should call
    /// [`clear`](ArtifactCache::clear) at its own epoch boundaries.
    pub max_resident_bytes: Option<usize>,
    /// Directory for on-disk artifact spill. When set, compiled artifacts
    /// are written through here and evicted entries rehydrate from disk
    /// instead of recompiling; a cache constructed over a warm directory
    /// reuses artifacts across process restarts. `None` disables spill —
    /// eviction then discards, and the next request recompiles.
    pub spill_dir: Option<PathBuf>,
    /// Deterministic fault-injection schedule for the cache's spill I/O
    /// (see [`FaultPlan`]). `None` — the production default — makes every
    /// hook a skipped `Option` check.
    pub fault_plan: Option<FaultPlan>,
    /// Static-verification level applied to **rehydrated** artifacts —
    /// the one artifact source that crosses a trust boundary (a spill
    /// directory can be torn or hostile in ways the checksum alone does
    /// not certify semantically). An artifact whose report is not
    /// [`clean`](qkc_core::VerifyReport::is_clean) is quarantined and
    /// recompiled over, exactly like a checksum failure. The default
    /// ([`VerifyLevel::default`]) is full verification in debug builds
    /// and none in release builds, keeping the release hot path
    /// unchanged.
    pub verify: VerifyLevel,
}

impl CacheOptions {
    /// Sets the resident-byte budget.
    pub fn with_max_resident_bytes(mut self, max: usize) -> Self {
        self.max_resident_bytes = Some(max);
        self
    }

    /// Sets the spill directory.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Installs a fault-injection plan on the spill I/O paths.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the static-verification level for rehydrated artifacts.
    pub fn with_verify(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }
}

/// Residency of one cached structure.
#[derive(Debug, Default)]
enum EntryState {
    /// No resident artifact: never compiled, evicted, or cleared.
    #[default]
    Absent,
    /// A worker is compiling or rehydrating outside the lock; waiters
    /// block on the cache condvar.
    Resolving,
    /// Resident and shared.
    Ready(Arc<KcSimulator>),
}

/// One cached `(circuit, options)` structure. The entry persists across
/// evictions — only the `Ready` artifact is dropped — so the identity
/// needed to rehydrate or recompile (and to detect 64-bit key collisions)
/// is never lost.
#[derive(Debug)]
struct Entry {
    /// The circuit this entry was created for, kept to turn a 64-bit key
    /// collision into a cache miss instead of silently wrong results, and
    /// to recompile/rehydrate after eviction.
    circuit: Circuit,
    options: KcOptions,
    state: EntryState,
    /// Designated spill path (fixed at insertion when the cache has a
    /// spill dir; stable across this entry's lifetime).
    spill_path: Option<PathBuf>,
    /// Bytes of a *valid* spill file on disk, once one is known to exist.
    spilled_bytes: Option<usize>,
    /// Exact resident tape bytes while `Ready` (0 before first
    /// resolution).
    size_bytes: usize,
    /// Measured seconds of this entry's most recent acquisition (compile
    /// on a miss, decode on a spill hit) — the price eviction would make
    /// the next request pay again.
    cost_seconds: f64,
    /// GreedyDual-Size priority: `clock_at_access + cost / size`.
    priority: f64,
}

#[derive(Debug, Default)]
struct CacheState {
    /// Key → indices into `entries`; each key holds *every* distinct
    /// `(circuit, options)` pair that hashes to it (64-bit collisions are
    /// astronomically rare, so the vec is length 1 in practice — but a
    /// collision must not evict either structure from caching).
    buckets: HashMap<u64, Vec<usize>>,
    entries: Vec<Entry>,
    /// Bumped by `clear()`; resolutions and waiters started against an
    /// older generation re-validate instead of touching freed indices.
    generation: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    spill_hits: u64,
    /// Exact bytes of compiled tape across every `Ready` entry,
    /// maintained incrementally (the figure the byte budget bounds).
    resident_bytes: usize,
    /// Bytes of valid spill files on disk.
    spilled_bytes: usize,
    /// GreedyDual-Size clock: advances to the evicted priority on each
    /// eviction, so post-eviction accesses outrank stale ones.
    clock: f64,
}

/// A thread-safe, optionally bounded cache of compiled [`KcSimulator`]
/// artifacts, keyed by the circuit's
/// [structural hash](Circuit::structural_hash) plus the pipeline options.
/// See the [module docs](self) for the eviction and spill lifecycle.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    options: CacheOptions,
    state: Mutex<CacheState>,
    resolved: Condvar,
    /// Sticky in-memory-only degradation: set once spill-write retries
    /// exhaust, cleared by [`clear`](Self::clear). While set, spill writes
    /// are skipped (queries keep succeeding; evicted entries recompile).
    degraded: AtomicBool,
    /// Spill-I/O attempts retried after a failure (monotonic).
    spill_retries: AtomicU64,
    /// Corrupt spill files renamed aside (monotonic).
    quarantined: AtomicU64,
    /// Test-only key hook: collapse every key to a constant so collision
    /// handling can be exercised deterministically.
    #[cfg(test)]
    collide_all_keys: bool,
}

impl ArtifactCache {
    /// An empty, unbounded cache without spill.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with the given residency/persistence bounds. The
    /// spill dir (if any) is probed lazily, on first spill; use
    /// [`Self::try_with_options`] to fail fast instead.
    pub fn with_options(options: CacheOptions) -> Self {
        Self {
            options,
            ..Self::default()
        }
    }

    /// [`Self::with_options`] with the spill directory validated eagerly:
    /// the directory is created if missing and probed for writability, so
    /// a misconfigured path is a typed
    /// [`EngineError::SpillDirUnavailable`] at construction instead of a
    /// silent in-memory fallback on the first spill.
    pub fn try_with_options(options: CacheOptions) -> Result<Self, EngineError> {
        if let Some(dir) = &options.spill_dir {
            validate_spill_dir(dir)?;
        }
        Ok(Self::with_options(options))
    }

    /// The residency/persistence bounds this cache enforces.
    pub fn cache_options(&self) -> &CacheOptions {
        &self.options
    }

    /// Whether the cache has degraded to in-memory-only caching (spill
    /// writes are skipped after their retries exhausted). Sticky until
    /// [`clear`](Self::clear).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// A cache whose every key collides — the regression hook for the
    /// collision path (test-only).
    #[cfg(test)]
    fn with_forced_collisions() -> Self {
        Self {
            collide_all_keys: true,
            ..Self::default()
        }
    }

    /// The cache key: structural hash of the circuit, extended with the
    /// pipeline options through their bit-exact `Hash` implementation
    /// (different options compile different artifacts; float fields key by
    /// bit pattern, never by a formatted representation).
    fn key(&self, circuit: &Circuit, options: &KcOptions) -> u64 {
        #[cfg(test)]
        if self.collide_all_keys {
            return 0;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_u64(circuit.structural_hash());
        options.hash(&mut h);
        h.finish()
    }

    /// Returns the compiled artifact for `circuit`, compiling it on first
    /// use — or rehydrating it from the spill tier when an evicted (or
    /// previous-process) artifact is on disk. Concurrent callers with the
    /// same structure share one resolution; callers with different
    /// structures resolve in parallel.
    ///
    /// A 64-bit key collision between two different circuits is detected
    /// by comparing the stored circuits, and the colliding structure is
    /// stored *alongside* the existing one — both cache normally.
    pub fn get_or_compile(&self, circuit: &Circuit, options: &KcOptions) -> Arc<KcSimulator> {
        self.try_get_or_compile(circuit, options, None)
            .expect("acquisition without a query budget cannot fail")
    }

    /// [`Self::get_or_compile`] under a per-query context: the caller's
    /// [`QueryBudget`](crate::QueryBudget) is honoured cooperatively (at
    /// compile-phase boundaries via the core checkpoint, and with a timed
    /// condvar wait while blocked on another thread's resolution) and the
    /// caller's [`FaultPlan`] reaches the spill I/O shim. With `ctx =
    /// None` this is exactly `get_or_compile` and cannot fail.
    pub(crate) fn try_get_or_compile(
        &self,
        circuit: &Circuit,
        options: &KcOptions,
        ctx: Option<&QueryCtx>,
    ) -> Result<Arc<KcSimulator>, EngineError> {
        if let Some(ctx) = ctx {
            ctx.check_deadline()?;
        }
        let key = self.key(circuit, options);
        let mut st = self.state.lock().expect("cache poisoned");
        'restart: loop {
            let ix = Self::find_or_insert(&mut st, key, circuit, options, &self.options);
            let generation = st.generation;
            loop {
                match &st.entries[ix].state {
                    EntryState::Ready(artifact) => {
                        let artifact = Arc::clone(artifact);
                        st.hits += 1;
                        count("cache/hit", 1);
                        Self::touch(&mut st, ix);
                        self.enforce_budget(&mut st);
                        return Ok(artifact);
                    }
                    EntryState::Resolving => {
                        // Block until the resolving thread publishes — but
                        // never past this caller's own deadline.
                        match ctx.and_then(QueryCtx::remaining) {
                            None => st = self.resolved.wait(st).expect("cache poisoned"),
                            Some(remaining) => {
                                if remaining.is_zero() {
                                    ctx.expect("remaining implies ctx").check_deadline()?;
                                }
                                let (guard, _) = self
                                    .resolved
                                    .wait_timeout(st, remaining)
                                    .expect("cache poisoned");
                                st = guard;
                                if let Some(ctx) = ctx {
                                    ctx.check_deadline()?;
                                }
                            }
                        }
                        if st.generation != generation {
                            // The cache was cleared while we waited; the
                            // index may now name a different entry.
                            continue 'restart;
                        }
                    }
                    EntryState::Absent => {
                        st.entries[ix].state = EntryState::Resolving;
                        let spill_path = st.entries[ix].spill_path.clone();
                        drop(st);
                        return self.resolve(circuit, options, ix, generation, spill_path, ctx);
                    }
                }
            }
        }
    }

    /// Finds the entry for `(circuit, options)` in `key`'s bucket, or
    /// inserts a fresh one (designating its spill path from its stable
    /// position in the bucket).
    fn find_or_insert(
        st: &mut CacheState,
        key: u64,
        circuit: &Circuit,
        options: &KcOptions,
        cache_options: &CacheOptions,
    ) -> usize {
        if let Some(bucket) = st.buckets.get(&key) {
            for &ix in bucket {
                let e = &st.entries[ix];
                if e.options == *options && e.circuit == *circuit {
                    return ix;
                }
            }
        }
        let position = st.buckets.get(&key).map_or(0, Vec::len);
        let ix = st.entries.len();
        st.entries.push(Entry {
            circuit: circuit.clone(),
            options: options.clone(),
            state: EntryState::Absent,
            spill_path: cache_options
                .spill_dir
                .as_ref()
                .map(|dir| dir.join(format!("qkc-art-{key:016x}-{position}.qkcart"))),
            spilled_bytes: None,
            size_bytes: 0,
            cost_seconds: 0.0,
            priority: 0.0,
        });
        st.buckets.entry(key).or_default().push(ix);
        ix
    }

    /// Compiles or rehydrates entry `ix` outside the state lock, then
    /// publishes the result. Runs with the entry marked `Resolving`; the
    /// guard restores `Absent` and wakes waiters if this unwinds — or if
    /// this returns a typed budget error, so no waiter is ever stranded.
    fn resolve(
        &self,
        circuit: &Circuit,
        options: &KcOptions,
        ix: usize,
        generation: u64,
        spill_path: Option<PathBuf>,
        ctx: Option<&QueryCtx>,
    ) -> Result<Arc<KcSimulator>, EngineError> {
        let mut guard = ResolveGuard {
            cache: self,
            ix,
            generation,
            armed: true,
        };
        // The caller's plan (per-query) wins over the installed one.
        let plan = ctx
            .and_then(QueryCtx::faults)
            .or(self.options.fault_plan.as_ref());

        // Rehydrate from the spill tier when a decodable artifact is on
        // disk (written by this cache, an earlier eviction, or a previous
        // process sharing the spill dir). Reads retry transient I/O errors
        // with deterministic backoff; validation inside `from_bytes`
        // rejects stale/corrupt/mismatched files, which are then renamed
        // aside (quarantined) so they cost one recompile, not one per
        // request.
        let mut rehydrated: Option<(Arc<KcSimulator>, f64, usize)> = None;
        let mut quarantined_now = false;
        if let Some(path) = &spill_path {
            let started = Instant::now();
            if let Some(bytes) = self.read_spill(path, plan) {
                let read_secs = started.elapsed().as_secs_f64();
                let decode_started = Instant::now();
                match KcSimulator::from_bytes(circuit, options, &bytes) {
                    Ok(sim) => {
                        // Decode re-established the structural invariants;
                        // when configured, certify the semantic ones too
                        // before publishing. A rehydrated artifact that
                        // fails static verification is quarantined and
                        // recompiled over, exactly like a checksum failure.
                        let certified = if self.options.verify > VerifyLevel::Off {
                            let verify_started = Instant::now();
                            let report = sim.verify(self.options.verify);
                            record_span_secs(
                                "cache/rehydrate/verify",
                                verify_started.elapsed().as_secs_f64(),
                            );
                            record_verify_telemetry(&report);
                            report.is_clean()
                        } else {
                            true
                        };
                        if certified {
                            record_span_secs("cache/rehydrate/read", read_secs);
                            record_span_secs(
                                "cache/rehydrate/decode",
                                decode_started.elapsed().as_secs_f64(),
                            );
                            record_size("cache/rehydrate/bytes", bytes.len() as u64);
                            rehydrated =
                                Some((Arc::new(sim), started.elapsed().as_secs_f64(), bytes.len()));
                        } else {
                            count("cache/rehydrate/verify_reject", 1);
                            self.quarantine(path);
                            quarantined_now = true;
                        }
                    }
                    Err(_) => {
                        self.quarantine(path);
                        quarantined_now = true;
                    }
                }
            }
        }

        let (artifact, cost_seconds, spilled, spill_hit) = match rehydrated {
            Some((artifact, secs, file_len)) => (artifact, secs, Some(file_len), true),
            None => {
                let started = Instant::now();
                let artifact = match self.compile_checked(circuit, options, ctx, plan) {
                    Ok(artifact) => Arc::new(artifact),
                    // Drop `guard` armed: it restores `Absent` and wakes
                    // waiters, exactly as on a panicking compile.
                    Err(e) => return Err(e),
                };
                let secs = started.elapsed().as_secs_f64();
                record_span_secs("cache/compile", secs);
                // Write-through spill: serialize now, outside every lock,
                // so eviction later is a pure pointer drop.
                let spill_started = Instant::now();
                let spilled = spill_path
                    .as_ref()
                    .and_then(|path| self.write_spill(path, &artifact, circuit, options, plan));
                if let Some(file_len) = spilled {
                    record_span_secs("cache/spill/write", spill_started.elapsed().as_secs_f64());
                    record_size("cache/spill/bytes", file_len as u64);
                }
                (artifact, secs, spilled, false)
            }
        };

        let mut st = self.state.lock().expect("cache poisoned");
        guard.armed = false;
        if st.generation != generation {
            // The cache was cleared mid-resolution: the entry (and any
            // index stability) is gone. Hand the artifact to the caller,
            // counted, without touching freed state — and take back any
            // spill file this resolution wrote, since no entry tracks it
            // and `clear()` promises an empty spill dir.
            if spill_hit {
                st.spill_hits += 1;
                count("cache/spill_hit", 1);
            } else {
                st.misses += 1;
                count("cache/miss", 1);
            }
            drop(st);
            if spilled.is_some() && !spill_hit {
                if let Some(path) = &spill_path {
                    let _ = std::fs::remove_file(path);
                }
            }
            self.resolved.notify_all();
            return Ok(artifact);
        }
        let spill_delta = {
            let entry = &mut st.entries[ix];
            entry.size_bytes = artifact.metrics().ac_size_bytes;
            entry.cost_seconds = cost_seconds;
            entry.state = EntryState::Ready(Arc::clone(&artifact));
            match spilled {
                Some(file_len) => {
                    let previous = entry.spilled_bytes.replace(file_len).unwrap_or(0);
                    file_len as isize - previous as isize
                }
                // The file was quarantined and no replacement landed: the
                // entry no longer has a valid spill copy on disk.
                None if quarantined_now => -(entry.spilled_bytes.take().unwrap_or(0) as isize),
                None => 0,
            }
        };
        st.spilled_bytes = (st.spilled_bytes as isize + spill_delta) as usize;
        st.resident_bytes += st.entries[ix].size_bytes;
        if spill_hit {
            st.spill_hits += 1;
            count("cache/spill_hit", 1);
        } else {
            st.misses += 1;
            count("cache/miss", 1);
        }
        Self::touch(&mut st, ix);
        self.enforce_budget(&mut st);
        drop(st);
        self.resolved.notify_all();
        Ok(artifact)
    }

    /// Compiles `circuit` under the caller's budget and fault plan: the
    /// core checkpoint fires at every `PhaseSeconds` boundary, injecting
    /// the plan's artificial phase delay and cancelling on
    /// `compile_timeout` (measured from this resolution's start) or the
    /// whole-call deadline. Without either, this is plain `try_compile`.
    fn compile_checked(
        &self,
        circuit: &Circuit,
        options: &KcOptions,
        ctx: Option<&QueryCtx>,
        plan: Option<&FaultPlan>,
    ) -> Result<KcSimulator, EngineError> {
        let delay = plan.map_or(0.0, |p| p.compile_delay_secs);
        let budgeted =
            ctx.is_some_and(|c| c.compile_timeout().is_some() || c.remaining().is_some());
        if !budgeted && delay == 0.0 {
            return Ok(KcSimulator::try_compile(circuit, options)
                .expect("valid circuits encode satisfiable CNFs"));
        }
        let compile_started = Instant::now();
        // The checkpoint closure runs on this thread; the typed engine
        // error rides out through this cell (core only sees the reason
        // string).
        let cancel: Cell<Option<EngineError>> = Cell::new(None);
        let checkpoint = |_phase: CompilePhase| -> Result<(), String> {
            if delay > 0.0 {
                count(FaultSite::CompileDelay.telemetry_path(), 1);
                std::thread::sleep(Duration::from_secs_f64(delay));
            }
            if let Some(limit) = ctx.and_then(QueryCtx::compile_timeout) {
                if compile_started.elapsed() > limit {
                    let err = budget::deadline_exceeded("compile_timeout", limit);
                    let reason = err.to_string();
                    cancel.set(Some(err));
                    return Err(reason);
                }
            }
            if let Some(ctx) = ctx {
                if let Err(err) = ctx.check_deadline() {
                    let reason = err.to_string();
                    cancel.set(Some(err));
                    return Err(reason);
                }
            }
            Ok(())
        };
        match KcSimulator::try_compile_checked(circuit, options, Some(&checkpoint)) {
            Ok(sim) => Ok(sim),
            Err(CompileError::Unsat(e)) => {
                panic!("valid circuits encode satisfiable CNFs: {e:?}")
            }
            Err(CompileError::Cancelled(_)) => Err(cancel
                .take()
                .expect("the checkpoint records its typed error before cancelling")),
        }
    }

    /// The spill-read half of the injectable I/O shim: reads `path` with
    /// up to [`SPILL_ATTEMPTS`] attempts and deterministic backoff,
    /// consulting the fault plan before each real read. `NotFound` (the
    /// common cold-cache case, and any quarantined file) returns
    /// immediately without retrying.
    fn read_spill(&self, path: &Path, plan: Option<&FaultPlan>) -> Option<Vec<u8>> {
        let key = faults::path_key(path);
        let op_started = Instant::now();
        for attempt in 0..SPILL_ATTEMPTS {
            if attempt > 0 {
                self.spill_retries.fetch_add(1, Ordering::Relaxed);
                count("cache/spill/retry", 1);
                std::thread::sleep(spill_backoff(attempt - 1));
            }
            let injected = plan.is_some_and(|p| p.spill_read_fails(key, attempt));
            if injected {
                count(FaultSite::SpillRead.telemetry_path(), 1);
                continue;
            }
            match std::fs::read(path) {
                Ok(bytes) => {
                    if attempt > 0 {
                        record_span_secs(
                            "cache/spill/retry_latency",
                            op_started.elapsed().as_secs_f64(),
                        );
                    }
                    return Some(bytes);
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
                Err(_) => {}
            }
        }
        record_span_secs(
            "cache/spill/retry_latency",
            op_started.elapsed().as_secs_f64(),
        );
        None
    }

    /// The spill-write half of the I/O shim: serializes `artifact` and
    /// writes it through a same-directory temp file + rename, with up to
    /// [`SPILL_ATTEMPTS`] attempts and deterministic backoff. Exhausting
    /// the retries flips the cache into sticky in-memory-only degradation
    /// — queries keep succeeding; this artifact (and future ones) simply
    /// will not rehydrate from disk. Returns the file length on success.
    fn write_spill(
        &self,
        path: &Path,
        artifact: &KcSimulator,
        circuit: &Circuit,
        options: &KcOptions,
        plan: Option<&FaultPlan>,
    ) -> Option<usize> {
        if self.degraded.load(Ordering::Relaxed) {
            return None;
        }
        let key = faults::path_key(path);
        let bytes = artifact.to_bytes(circuit, options);
        let op_started = Instant::now();
        for attempt in 0..SPILL_ATTEMPTS {
            if attempt > 0 {
                self.spill_retries.fetch_add(1, Ordering::Relaxed);
                count("cache/spill/retry", 1);
                std::thread::sleep(spill_backoff(attempt - 1));
            }
            if plan.is_some_and(|p| p.spill_write_fails(key, attempt)) {
                count(FaultSite::SpillWrite.telemetry_path(), 1);
                continue;
            }
            // A torn write "succeeds" from the writer's point of view but
            // persists truncated bytes — the corruption the decode
            // validation and quarantine path exist to absorb.
            let payload = if plan.is_some_and(|p| p.spill_write_torn(key, attempt)) {
                count(FaultSite::SpillTorn.telemetry_path(), 1);
                &bytes[..bytes.len() / 2]
            } else {
                &bytes[..]
            };
            if let Some(dir) = path.parent() {
                if std::fs::create_dir_all(dir).is_err() {
                    continue;
                }
            }
            let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
            if std::fs::write(&tmp, payload).is_err() {
                let _ = std::fs::remove_file(&tmp);
                continue;
            }
            let rename_ok = if plan.is_some_and(|p| p.spill_rename_fails(key, attempt)) {
                count(FaultSite::SpillRename.telemetry_path(), 1);
                false
            } else {
                std::fs::rename(&tmp, path).is_ok()
            };
            if !rename_ok {
                let _ = std::fs::remove_file(&tmp);
                continue;
            }
            if attempt > 0 {
                record_span_secs(
                    "cache/spill/retry_latency",
                    op_started.elapsed().as_secs_f64(),
                );
            }
            return Some(payload.len());
        }
        record_span_secs(
            "cache/spill/retry_latency",
            op_started.elapsed().as_secs_f64(),
        );
        if !self.degraded.swap(true, Ordering::Relaxed) {
            count("cache/spill/degraded", 1);
        }
        None
    }

    /// Renames a corrupt/stale spill file aside (`*.quarantined`) so it is
    /// decoded — and fails — exactly once instead of on every request.
    /// The quarantined copy is kept for post-mortem until
    /// [`clear`](Self::clear) removes it.
    fn quarantine(&self, path: &Path) {
        if std::fs::rename(path, quarantine_path(path)).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            count("cache/spill/quarantined", 1);
        }
    }

    /// Refreshes entry `ix`'s GreedyDual-Size priority at the current
    /// clock: `clock + reacquire_cost / size`. Bigger artifacts and
    /// cheaper reacquisitions (a spill file beats a recompile) sort
    /// earlier toward eviction; every access pushes the entry past the
    /// clock frontier.
    fn touch(st: &mut CacheState, ix: usize) {
        let e = &mut st.entries[ix];
        e.priority = st.clock + e.cost_seconds / (e.size_bytes.max(1) as f64);
    }

    /// Evicts minimum-priority `Ready` entries until occupancy fits the
    /// byte budget. No I/O: spill files were written through at
    /// compile time, so eviction only drops the resident copy.
    fn enforce_budget(&self, st: &mut CacheState) {
        let Some(max) = self.options.max_resident_bytes else {
            return;
        };
        while st.resident_bytes > max {
            let victim = st
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e.state, EntryState::Ready(_)))
                .min_by(|(_, a), (_, b)| a.priority.total_cmp(&b.priority))
                .map(|(ix, _)| ix);
            let Some(victim) = victim else {
                break; // nothing resident is evictable (all resolving)
            };
            st.clock = st.clock.max(st.entries[victim].priority);
            st.entries[victim].state = EntryState::Absent;
            st.resident_bytes -= st.entries[victim].size_bytes;
            st.evictions += 1;
            count("cache/evict", 1);
            record_size(
                "cache/evict/victim_bytes",
                st.entries[victim].size_bytes as u64,
            );
            // GreedyDual priority in nano-units so the integer histogram
            // resolves the (seconds-per-byte scale) fractional values.
            record_size(
                "cache/evict/priority_nanos",
                (st.entries[victim].priority * 1e9) as u64,
            );
        }
    }

    /// Peeks at the cache for a **resident** compiled artifact of
    /// `(circuit, options)` and returns its pipeline metrics together with
    /// the measured acquisition cost in seconds (compile on a miss, decode
    /// on a spill hit).
    ///
    /// This is a pure observation for callers — like the
    /// [`Planner`](crate::Planner) — that want to replace static proxies
    /// with measured figures when they happen to be available: it never
    /// compiles, never blocks on an in-flight resolution (a `Resolving`
    /// entry reports `None`), never touches eviction priorities, and does
    /// not count as a hit or a miss.
    pub fn resident_metrics(
        &self,
        circuit: &Circuit,
        options: &KcOptions,
    ) -> Option<(qkc_core::PipelineMetrics, f64)> {
        let key = self.key(circuit, options);
        let st = self.state.lock().expect("cache poisoned");
        let bucket = st.buckets.get(&key)?;
        for &ix in bucket {
            let e = &st.entries[ix];
            if e.options == *options && e.circuit == *circuit {
                if let EntryState::Ready(artifact) = &e.state {
                    return Some((artifact.metrics().clone(), e.cost_seconds));
                }
                return None;
            }
        }
        None
    }

    /// Number of requests served from a resident artifact.
    pub fn hits(&self) -> u64 {
        self.state.lock().expect("cache poisoned").hits
    }

    /// Number of requests that compiled a new artifact.
    pub fn misses(&self) -> u64 {
        self.state.lock().expect("cache poisoned").misses
    }

    /// Number of artifacts evicted to enforce the byte budget.
    pub fn evictions(&self) -> u64 {
        self.state.lock().expect("cache poisoned").evictions
    }

    /// Number of requests served by rehydrating a spilled artifact from
    /// disk instead of recompiling.
    pub fn spill_hits(&self) -> u64 {
        self.state.lock().expect("cache poisoned").spill_hits
    }

    /// Exact bytes of compiled execution tape resident in the cache: the
    /// sum of `ac_size_bytes` over every resident artifact (entries still
    /// resolving contribute 0). This is the occupancy the byte budget
    /// bounds.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().expect("cache poisoned").resident_bytes
    }

    /// A point-in-time snapshot of counters and footprint, taken under
    /// **one** lock acquisition so every field is consistent with every
    /// other (`entries` can never disagree with the counters that created
    /// them).
    pub fn stats(&self) -> crate::CacheStats {
        let st = self.state.lock().expect("cache poisoned");
        crate::CacheStats {
            hits: st.hits,
            misses: st.misses,
            evictions: st.evictions,
            spill_hits: st.spill_hits,
            entries: st.entries.len(),
            resident_entries: st
                .entries
                .iter()
                .filter(|e| matches!(e.state, EntryState::Ready(_)))
                .count(),
            resident_bytes: st.resident_bytes,
            spilled_bytes: st.spilled_bytes,
            spill_retries: self.spill_retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }

    /// Number of cached structures (resident, resolving, or evicted — an
    /// evicted entry still knows how to come back).
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache poisoned").entries.len()
    }

    /// Whether the cache holds no structures.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every artifact, removes this cache's spill files (including
    /// quarantined copies), and lifts in-memory-only degradation — the
    /// epoch boundary at which a service gives a repaired disk another
    /// chance. Hit/miss counters keep accumulating.
    pub fn clear(&self) {
        let spill_paths: Vec<PathBuf> = {
            let mut st = self.state.lock().expect("cache poisoned");
            // Every designated path, not just recorded ones: an in-flight
            // resolution may have written its file before this lock was
            // taken (it will not record it either — the generation bump
            // below routes it to the orphan-cleanup path in `resolve`).
            let paths = st
                .entries
                .iter()
                .filter_map(|e| e.spill_path.clone())
                .collect();
            st.buckets.clear();
            st.entries.clear();
            st.resident_bytes = 0;
            st.spilled_bytes = 0;
            st.generation += 1;
            paths
        };
        // Wake waiters parked on pre-clear resolutions so they re-validate.
        self.resolved.notify_all();
        self.degraded.store(false, Ordering::Relaxed);
        for path in spill_paths {
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(quarantine_path(&path));
        }
    }
}

/// Where [`ArtifactCache::quarantine`] renames a corrupt spill file.
fn quarantine_path(path: &Path) -> PathBuf {
    path.with_extension("quarantined")
}

/// Probes `dir` for use as a spill directory: creates it if missing, then
/// writes and removes a probe file. Any failure is the typed construction
/// error [`EngineError::SpillDirUnavailable`].
fn validate_spill_dir(dir: &Path) -> Result<(), EngineError> {
    let unavailable = |detail: &std::io::Error| EngineError::SpillDirUnavailable {
        path: dir.display().to_string(),
        detail: detail.to_string(),
    };
    std::fs::create_dir_all(dir).map_err(|e| unavailable(&e))?;
    let probe = dir.join(format!(".qkc-spill-probe-{}", std::process::id()));
    std::fs::write(&probe, b"probe").map_err(|e| unavailable(&e))?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

/// Restores a `Resolving` entry to `Absent` and wakes waiters if the
/// resolving thread unwinds (a panicking compile must not strand every
/// waiter on the condvar).
struct ResolveGuard<'a> {
    cache: &'a ArtifactCache,
    ix: usize,
    generation: u64,
    armed: bool,
}

impl Drop for ResolveGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Ok(mut st) = self.cache.state.lock() {
            if st.generation == self.generation {
                if let Some(entry) = st.entries.get_mut(self.ix) {
                    if matches!(entry.state, EntryState::Resolving) {
                        entry.state = EntryState::Absent;
                    }
                }
            }
        }
        self.cache.resolved.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::Param;

    fn parameterized() -> Circuit {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("a")).zz(0, 1, Param::symbol("b"));
        c
    }

    /// A unique temp dir per test invocation (std-only; no tempfile dep).
    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qkc-cache-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn same_structure_compiles_once() {
        let cache = ArtifactCache::new();
        for _ in 0..10 {
            cache.get_or_compile(&parameterized(), &KcOptions::default());
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 9);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn changed_structure_recompiles() {
        let cache = ArtifactCache::new();
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        let mut widened = parameterized();
        widened.h(1);
        cache.get_or_compile(&widened, &KcOptions::default());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn changed_options_recompile() {
        let cache = ArtifactCache::new();
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        let no_elide = KcOptions {
            elide_internal: false,
            ..Default::default()
        };
        cache.get_or_compile(&parameterized(), &no_elide);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn options_differing_only_in_a_float_field_cache_separately() {
        // Regression for the stringly-typed `format!("{options:?}")` key:
        // the cache key and entry identity now go through KcOptions'
        // bit-exact Hash/Eq, so two balances that differ in the last ulp —
        // or only in zero sign — are distinct artifacts.
        let cache = ArtifactCache::new();
        let base = KcOptions::default();
        let nudged = KcOptions {
            separator_balance: f64::from_bits(base.separator_balance.to_bits() + 1),
            ..Default::default()
        };
        assert_ne!(base, nudged);
        cache.get_or_compile(&parameterized(), &base);
        cache.get_or_compile(&parameterized(), &nudged);
        cache.get_or_compile(&parameterized(), &base);
        cache.get_or_compile(&parameterized(), &nudged);
        assert_eq!(
            cache.misses(),
            2,
            "distinct float bits → distinct artifacts"
        );
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_requests_share_one_compilation() {
        let cache = Arc::new(ArtifactCache::new());
        crossbeam::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                handles.push(s.spawn(move |_| {
                    cache.get_or_compile(&parameterized(), &KcOptions::default());
                }));
            }
            for h in handles {
                h.join().expect("thread");
            }
        })
        .expect("scope");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn stats_snapshots_are_internally_consistent_under_concurrency() {
        // Counters, entry count, and occupancy all live under one lock:
        // any snapshot taken while workers hammer `get_or_compile` must
        // satisfy the bookkeeping invariants (the old implementation read
        // counters outside the entries lock and could violate them).
        let cache = Arc::new(ArtifactCache::new());
        let distinct = 3u64;
        let workers = 4;
        let iters = 25;
        crossbeam::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let cache = Arc::clone(&cache);
                handles.push(s.spawn(move |_| {
                    for i in 0..iters {
                        let mut c = parameterized();
                        for _ in 0..((w + i) % distinct as usize) {
                            c.h(1);
                        }
                        cache.get_or_compile(&c, &KcOptions::default());
                    }
                }));
            }
            let snapshotter = {
                let cache = Arc::clone(&cache);
                s.spawn(move |_| {
                    for _ in 0..200 {
                        let s = cache.stats();
                        assert!(
                            s.misses <= s.entries as u64,
                            "every miss creates its entry first: {s:?}"
                        );
                        assert!(s.entries as u64 <= distinct, "snapshot: {s:?}");
                        assert_eq!(s.evictions, 0, "unbounded cache never evicts");
                        assert!(
                            s.hits + s.misses <= (workers * iters) as u64,
                            "snapshot: {s:?}"
                        );
                        std::thread::yield_now();
                    }
                })
            };
            for h in handles {
                h.join().expect("worker");
            }
            snapshotter.join().expect("snapshotter");
        })
        .expect("scope");
        let s = cache.stats();
        assert_eq!(s.misses, distinct);
        assert_eq!(s.hits + s.misses, (workers * iters) as u64);
        assert_eq!(s.entries as u64, distinct);
    }

    #[test]
    fn resident_bytes_track_cached_artifacts() {
        let cache = ArtifactCache::new();
        assert_eq!(cache.resident_bytes(), 0);
        let a = cache.get_or_compile(&parameterized(), &KcOptions::default());
        let one = cache.resident_bytes();
        assert_eq!(one, a.metrics().ac_size_bytes);
        assert!(one > 0);
        // A second structure adds its own tape bytes.
        let mut widened = parameterized();
        widened.h(1);
        let b = cache.get_or_compile(&widened, &KcOptions::default());
        assert_eq!(
            cache.resident_bytes(),
            a.metrics().ac_size_bytes + b.metrics().ac_size_bytes
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.resident_bytes, cache.resident_bytes());
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn colliding_structures_both_cache() {
        // Regression: with every key forced to collide, two different
        // structures must still each compile exactly once — the earlier
        // collision handling never stored the second structure, so every
        // later request for it recompiled forever.
        let cache = ArtifactCache::with_forced_collisions();
        let a = parameterized();
        let mut b = parameterized();
        b.h(1);
        for _ in 0..3 {
            cache.get_or_compile(&a, &KcOptions::default());
            cache.get_or_compile(&b, &KcOptions::default());
        }
        assert_eq!(cache.misses(), 2, "one compile per structure, ever");
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 2, "both structures resident under one key");
        // Options changes on a colliding key also cache independently.
        let no_elide = KcOptions {
            elide_internal: false,
            ..Default::default()
        };
        cache.get_or_compile(&a, &no_elide);
        cache.get_or_compile(&a, &no_elide);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.len(), 3);
        // Occupancy accounting covers every entry in the bucket.
        assert!(cache.resident_bytes() > 0);
        assert_eq!(cache.stats().entries, 3);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn resident_metrics_peeks_without_counting() {
        let cache = ArtifactCache::new();
        // Cold cache: nothing resident, nothing counted.
        assert!(cache
            .resident_metrics(&parameterized(), &KcOptions::default())
            .is_none());
        assert_eq!(cache.hits() + cache.misses(), 0, "a peek is not a request");
        let artifact = cache.get_or_compile(&parameterized(), &KcOptions::default());
        let (metrics, cost_seconds) = cache
            .resident_metrics(&parameterized(), &KcOptions::default())
            .expect("artifact is resident");
        assert_eq!(metrics.ac_size_bytes, artifact.metrics().ac_size_bytes);
        assert!(cost_seconds > 0.0, "compile cost was measured");
        // Different options → different structure → no peek result.
        let no_elide = KcOptions {
            elide_internal: false,
            ..Default::default()
        };
        assert!(cache
            .resident_metrics(&parameterized(), &no_elide)
            .is_none());
        assert_eq!(cache.hits(), 0, "peeks never count as hits");
        assert_eq!(cache.misses(), 1);
        // An evicted entry reports None again.
        cache.clear();
        assert!(cache
            .resident_metrics(&parameterized(), &KcOptions::default())
            .is_none());
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = ArtifactCache::new();
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn byte_budget_evicts_down_to_the_cap() {
        // Three structures, budget sized for roughly one: after every
        // request the resident footprint must respect the cap, with the
        // shortfall recorded as evictions.
        let sizes: Vec<usize> = {
            let probe = ArtifactCache::new();
            (0..3)
                .map(|extra| {
                    let mut c = parameterized();
                    for q in 0..extra {
                        c.h(q % 2);
                    }
                    probe
                        .get_or_compile(&c, &KcOptions::default())
                        .metrics()
                        .ac_size_bytes
                })
                .collect()
        };
        let cap = *sizes.iter().max().unwrap();
        let cache =
            ArtifactCache::with_options(CacheOptions::default().with_max_resident_bytes(cap));
        for round in 0..2 {
            for extra in 0..3 {
                let mut c = parameterized();
                for q in 0..extra {
                    c.h(q % 2);
                }
                cache.get_or_compile(&c, &KcOptions::default());
                assert!(
                    cache.resident_bytes() <= cap,
                    "round {round}: {} resident > cap {cap}",
                    cache.resident_bytes()
                );
            }
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "cap below total footprint must evict");
        assert_eq!(s.entries, 3, "evicted entries keep their identity");
        assert_eq!(s.spill_hits, 0, "no spill dir → evictions recompile");
        assert!(s.misses > 3, "recompiles after spill-less eviction");
    }

    #[test]
    fn spilled_artifacts_rehydrate_instead_of_recompiling() {
        let dir = scratch_dir("spill");
        let a = parameterized();
        let mut b = parameterized();
        b.h(1);
        // A budget below every artifact: nothing stays resident, so the
        // second request for `a` must deterministically come from disk
        // (the returned handles stay valid — eviction only drops the
        // cache's own reference).
        let cache = ArtifactCache::with_options(
            CacheOptions::default()
                .with_max_resident_bytes(1)
                .with_spill_dir(&dir),
        );
        let first = cache.get_or_compile(&a, &KcOptions::default());
        assert!(cache.stats().spilled_bytes > 0, "write-through spill");
        assert!(cache.resident_bytes() <= 1, "budget holds after eviction");
        cache.get_or_compile(&b, &KcOptions::default());
        let again = cache.get_or_compile(&a, &KcOptions::default());
        let s = cache.stats();
        assert_eq!(s.misses, 2, "a and b each compile exactly once");
        assert!(
            s.evictions >= 3,
            "every resolution is evicted under a 1-byte cap"
        );
        assert_eq!(s.spill_hits, 1, "the second `a` came from disk");
        // The rehydrated artifact answers bit-identically.
        let p = qkc_circuit::ParamMap::from_pairs([("a", 0.37), ("b", 1.2)]);
        let wa = first.bind(&p).unwrap().wavefunction();
        let wb = again.bind(&p).unwrap().wavefunction();
        for (x, y) in wa.iter().zip(&wb) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        cache.clear();
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "clear removes spill files"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_spill_dir_survives_process_restart() {
        // A fresh cache over a directory another cache spilled into must
        // rehydrate instead of compiling — the restart-survival half of
        // the spill tier (simulated here by a second cache instance).
        let dir = scratch_dir("restart");
        let writer = ArtifactCache::with_options(CacheOptions::default().with_spill_dir(&dir));
        let original = writer.get_or_compile(&parameterized(), &KcOptions::default());
        assert_eq!(writer.misses(), 1);
        assert!(writer.stats().spilled_bytes > 0);

        let reader = ArtifactCache::with_options(CacheOptions::default().with_spill_dir(&dir));
        let rehydrated = reader.get_or_compile(&parameterized(), &KcOptions::default());
        let s = reader.stats();
        assert_eq!(s.misses, 0, "warm start: no compile");
        assert_eq!(s.spill_hits, 1);
        assert_eq!(
            rehydrated.metrics().ac_size_bytes,
            original.metrics().ac_size_bytes
        );

        // A corrupt spill file falls back to a clean compile.
        let corrupt_dir = scratch_dir("corrupt");
        let writer =
            ArtifactCache::with_options(CacheOptions::default().with_spill_dir(&corrupt_dir));
        writer.get_or_compile(&parameterized(), &KcOptions::default());
        for f in std::fs::read_dir(&corrupt_dir).unwrap() {
            let path = f.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        }
        let reader =
            ArtifactCache::with_options(CacheOptions::default().with_spill_dir(&corrupt_dir));
        reader.get_or_compile(&parameterized(), &KcOptions::default());
        let s = reader.stats();
        assert_eq!(s.misses, 1, "corrupt file → recompile");
        assert_eq!(s.spill_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&corrupt_dir);
    }

    #[test]
    fn spill_write_retries_recover_from_transient_failures() {
        let dir = scratch_dir("retry-write");
        // The first write attempt per path always fails; the retry lands.
        let plan = FaultPlan::seeded(21).with_spill_write_fail_first(1);
        let cache = ArtifactCache::with_options(
            CacheOptions::default()
                .with_spill_dir(&dir)
                .with_fault_plan(plan),
        );
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        let s = cache.stats();
        assert!(s.spilled_bytes > 0, "the retry persisted the artifact");
        assert!(s.spill_retries >= 1, "stats record the retry");
        assert!(!s.degraded);
        // The persisted bytes are good: a fresh cache rehydrates them.
        let reader = ArtifactCache::with_options(CacheOptions::default().with_spill_dir(&dir));
        reader.get_or_compile(&parameterized(), &KcOptions::default());
        assert_eq!(reader.stats().spill_hits, 1);
        assert_eq!(reader.stats().misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_read_retries_recover_from_transient_failures() {
        let dir = scratch_dir("retry-read");
        let writer = ArtifactCache::with_options(CacheOptions::default().with_spill_dir(&dir));
        writer.get_or_compile(&parameterized(), &KcOptions::default());
        // The first read attempt per path always fails; the retry lands
        // and rehydration still beats recompilation.
        let plan = FaultPlan::seeded(23).with_spill_read_fail_first(1);
        let reader = ArtifactCache::with_options(
            CacheOptions::default()
                .with_spill_dir(&dir)
                .with_fault_plan(plan),
        );
        reader.get_or_compile(&parameterized(), &KcOptions::default());
        let s = reader.stats();
        assert_eq!(s.misses, 0, "rehydrated on retry, no recompile");
        assert_eq!(s.spill_hits, 1);
        assert!(s.spill_retries >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_spill_writes_degrade_to_in_memory_only() {
        let dir = scratch_dir("degrade");
        // Every write attempt fails: after the bounded retries the cache
        // must degrade to in-memory-only caching — queries keep
        // succeeding, the spill tier is simply gone.
        let plan = FaultPlan::seeded(22).with_spill_write_rate(1.0);
        let cache = ArtifactCache::with_options(
            CacheOptions::default()
                .with_spill_dir(&dir)
                .with_fault_plan(plan),
        );
        let artifact = cache.get_or_compile(&parameterized(), &KcOptions::default());
        let s = cache.stats();
        assert!(s.degraded, "exhausted retries flip the degraded latch");
        assert_eq!(s.spilled_bytes, 0);
        assert!(s.spill_retries >= 1);
        // Degraded is a caching mode, not an error: answers still come.
        let p = qkc_circuit::ParamMap::from_pairs([("a", 0.3), ("b", 0.7)]);
        artifact.bind(&p).unwrap();
        let mut widened = parameterized();
        widened.h(1);
        cache.get_or_compile(&widened, &KcOptions::default());
        assert_eq!(cache.stats().misses, 2);
        // Later writes short-circuit instead of burning retries again.
        let retries_so_far = cache.stats().spill_retries;
        cache.get_or_compile(&parameterized(), &KcOptions::default());
        assert_eq!(cache.stats().spill_retries, retries_so_far);
        // `clear` resets the latch (an operator fixed the disk).
        cache.clear();
        assert!(!cache.is_degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_files_are_quarantined_and_never_reread() {
        let dir = scratch_dir("quarantine");
        let writer = ArtifactCache::with_options(CacheOptions::default().with_spill_dir(&dir));
        writer.get_or_compile(&parameterized(), &KcOptions::default());
        for f in std::fs::read_dir(&dir).unwrap() {
            let path = f.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        }
        // The corrupt file costs exactly one recompile and is renamed
        // aside — it can never be decoded (and fail) a second time.
        let reader = ArtifactCache::with_options(CacheOptions::default().with_spill_dir(&dir));
        reader.get_or_compile(&parameterized(), &KcOptions::default());
        let s = reader.stats();
        assert_eq!(s.misses, 1, "corrupt file → one recompile");
        assert_eq!(s.spill_hits, 0);
        assert_eq!(s.quarantined, 1);
        let quarantined = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|f| {
                f.as_ref().unwrap().path().extension() == Some(std::ffi::OsStr::new("quarantined"))
            })
            .count();
        assert_eq!(quarantined, 1, "the bad bytes were renamed aside");
        // The recompile wrote fresh good bytes through: a third cache
        // rehydrates cleanly with nothing left to quarantine.
        let third = ArtifactCache::with_options(CacheOptions::default().with_spill_dir(&dir));
        third.get_or_compile(&parameterized(), &KcOptions::default());
        assert_eq!(third.stats().spill_hits, 1);
        assert_eq!(third.stats().quarantined, 0);
        // `clear` sweeps quarantined files out with the live ones.
        third.clear();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_prefers_cheap_large_artifacts() {
        // Cost-aware ordering: with equal recency, the entry whose
        // reacquisition is cheap relative to its size goes first. Compile
        // a small and a large structure, then insert pressure: the large
        // one (smaller cost/size density on this workload) is evicted
        // while the small survives.
        let small = parameterized();
        let mut large = parameterized();
        for q in 0..2 {
            large.h(q).t(q).h(q);
        }
        large.zz(0, 1, Param::symbol("c"));
        let (small_sz, large_sz) = {
            let probe = ArtifactCache::new();
            (
                probe
                    .get_or_compile(&small, &KcOptions::default())
                    .metrics()
                    .ac_size_bytes,
                probe
                    .get_or_compile(&large, &KcOptions::default())
                    .metrics()
                    .ac_size_bytes,
            )
        };
        assert!(large_sz > small_sz, "workload sizes must differ");
        // Budget: both fit, but adding either again after pressure from a
        // third structure forces exactly one out.
        let cache = ArtifactCache::with_options(
            CacheOptions::default().with_max_resident_bytes(small_sz + large_sz),
        );
        cache.get_or_compile(&small, &KcOptions::default());
        cache.get_or_compile(&large, &KcOptions::default());
        assert_eq!(cache.stats().evictions, 0);
        let mut third = parameterized();
        third.h(0);
        cache.get_or_compile(&third, &KcOptions::default());
        assert!(cache.stats().evictions >= 1, "pressure must evict");
        assert!(cache.resident_bytes() <= small_sz + large_sz);
    }
}
