//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] is a schedule of faults the engine injects into its own
//! *production* code paths: spill I/O errors and torn writes in the
//! artifact cache, worker panics at chosen sweep points, artificial delay
//! at compile-phase boundaries. Every decision is a pure function of the
//! plan's seed and the injection site's stable identity (a path hash, a
//! point index, a per-path attempt counter) — never of wall-clock time,
//! thread interleaving, or global occurrence order — so a plan replays
//! identically at any thread count and batch width. That is what lets the
//! chaos harness (`tests/chaos.rs`) assert the hard contract: everything
//! that succeeds under faults is byte-identical to the fault-free run.
//!
//! With no plan installed the hooks are a single `Option` check on cold
//! paths (spill I/O, compile boundaries, per-point dispatch) and cost
//! nothing measurable.

use crate::mix_seed;
use std::path::Path;

/// Injection sites, each with a stable salt (so the same seed drives
/// independent decisions per site) and a telemetry counter path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A spill-file write attempt fails outright.
    SpillWrite,
    /// A spill-file read attempt fails outright.
    SpillRead,
    /// The tmp→final rename of a spill write fails.
    SpillRename,
    /// A spill write "succeeds" but persists truncated bytes.
    SpillTorn,
    /// A sweep worker panics while evaluating a point.
    WorkerPanic,
    /// Artificial delay at a compile-phase boundary.
    CompileDelay,
}

impl FaultSite {
    fn salt(self) -> u64 {
        match self {
            Self::SpillWrite => 0x5741_5249_5445_0001,
            Self::SpillRead => 0x5245_4144_0000_0002,
            Self::SpillRename => 0x524E_414D_4500_0003,
            Self::SpillTorn => 0x544F_524E_0000_0004,
            Self::WorkerPanic => 0x5041_4E49_4300_0005,
            Self::CompileDelay => 0x4445_4C41_5900_0006,
        }
    }

    /// The `fault/injected/*` counter ticked when this site actually
    /// injects.
    pub fn telemetry_path(self) -> &'static str {
        match self {
            Self::SpillWrite => "fault/injected/spill_write",
            Self::SpillRead => "fault/injected/spill_read",
            Self::SpillRename => "fault/injected/spill_rename",
            Self::SpillTorn => "fault/injected/spill_torn",
            Self::WorkerPanic => "fault/injected/worker_panic",
            Self::CompileDelay => "fault/injected/compile_delay",
        }
    }
}

/// A seeded, serializable schedule of injectable faults.
///
/// Two kinds of knob compose:
///
/// * **Rates** (`spill_*_rate`, in `[0, 1]`): each attempt at a site fails
///   with this probability, decided by hashing `(seed, site, path key,
///   attempt number)` — seeded chaos, deterministic under replay.
/// * **Deterministic prefixes** (`spill_*_fail_first`): the first *N*
///   attempts at a path always fail before the rate is even consulted —
///   the precise control targeted tests use to script "fail once, then
///   succeed on retry".
///
/// Worker panics are scheduled by exact sweep-point index
/// ([`FaultPlan::with_panic_at`]); by default a point panics only on its
/// first attempt (so the executor's one retry succeeds), or on every
/// attempt with [`FaultPlan::with_panic_every_attempt`] (so the point
/// becomes a typed failure in the sweep report).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed for all probabilistic decisions.
    pub seed: u64,
    /// Per-attempt probability that a spill write fails.
    pub spill_write_rate: f64,
    /// Per-attempt probability that a spill read fails.
    pub spill_read_rate: f64,
    /// Per-attempt probability that a spill tmp→final rename fails.
    pub spill_rename_rate: f64,
    /// Per-attempt probability that a spill write persists torn
    /// (truncated) bytes instead of failing.
    pub spill_torn_rate: f64,
    /// First N write attempts per path always fail.
    pub spill_write_fail_first: u32,
    /// First N read attempts per path always fail.
    pub spill_read_fail_first: u32,
    /// Sweep-point indices at which evaluation panics.
    pub panic_points: Vec<u64>,
    /// Panic on every attempt at a scheduled point (default: first
    /// attempt only, so the executor's single retry recovers it).
    pub panic_every_attempt: bool,
    /// Artificial sleep injected at each compile-phase boundary.
    pub compile_delay_secs: f64,
}

impl FaultPlan {
    /// A plan that never fires (all rates zero, no panic points).
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            spill_write_rate: 0.0,
            spill_read_rate: 0.0,
            spill_rename_rate: 0.0,
            spill_torn_rate: 0.0,
            spill_write_fail_first: 0,
            spill_read_fail_first: 0,
            panic_points: Vec::new(),
            panic_every_attempt: false,
            compile_delay_secs: 0.0,
        }
    }

    /// Sets the per-attempt spill-write failure rate.
    pub fn with_spill_write_rate(mut self, rate: f64) -> Self {
        self.spill_write_rate = rate;
        self
    }

    /// Sets the per-attempt spill-read failure rate.
    pub fn with_spill_read_rate(mut self, rate: f64) -> Self {
        self.spill_read_rate = rate;
        self
    }

    /// Sets the per-attempt spill-rename failure rate.
    pub fn with_spill_rename_rate(mut self, rate: f64) -> Self {
        self.spill_rename_rate = rate;
        self
    }

    /// Sets the per-attempt torn-write rate.
    pub fn with_spill_torn_rate(mut self, rate: f64) -> Self {
        self.spill_torn_rate = rate;
        self
    }

    /// Fails the first `n` write attempts at every path deterministically.
    pub fn with_spill_write_fail_first(mut self, n: u32) -> Self {
        self.spill_write_fail_first = n;
        self
    }

    /// Fails the first `n` read attempts at every path deterministically.
    pub fn with_spill_read_fail_first(mut self, n: u32) -> Self {
        self.spill_read_fail_first = n;
        self
    }

    /// Schedules worker panics at these sweep-point indices.
    pub fn with_panic_at<I: IntoIterator<Item = u64>>(mut self, points: I) -> Self {
        self.panic_points = points.into_iter().collect();
        self.panic_points.sort_unstable();
        self.panic_points.dedup();
        self
    }

    /// Panics on every attempt at scheduled points (defeats the retry).
    pub fn with_panic_every_attempt(mut self, every: bool) -> Self {
        self.panic_every_attempt = every;
        self
    }

    /// Injects this much sleep at each compile-phase boundary.
    pub fn with_compile_delay_secs(mut self, secs: f64) -> Self {
        self.compile_delay_secs = secs;
        self
    }

    /// True when nothing in the plan can ever fire.
    pub fn is_noop(&self) -> bool {
        self.spill_write_rate == 0.0
            && self.spill_read_rate == 0.0
            && self.spill_rename_rate == 0.0
            && self.spill_torn_rate == 0.0
            && self.spill_write_fail_first == 0
            && self.spill_read_fail_first == 0
            && self.panic_points.is_empty()
            && self.compile_delay_secs == 0.0
    }

    /// The seeded coin for one `(site, key, attempt)` triple, in `[0, 1)`.
    fn coin(&self, site: FaultSite, key: u64, attempt: u32) -> f64 {
        let h = mix_seed(self.seed ^ site.salt() ^ key, attempt as u64);
        // 53 mantissa bits → exact double in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should the `attempt`-th write (0-based) to the path keyed `key`
    /// fail?
    pub fn spill_write_fails(&self, key: u64, attempt: u32) -> bool {
        attempt < self.spill_write_fail_first
            || self.coin(FaultSite::SpillWrite, key, attempt) < self.spill_write_rate
    }

    /// Should the `attempt`-th read (0-based) from the path keyed `key`
    /// fail?
    pub fn spill_read_fails(&self, key: u64, attempt: u32) -> bool {
        attempt < self.spill_read_fail_first
            || self.coin(FaultSite::SpillRead, key, attempt) < self.spill_read_rate
    }

    /// Should the `attempt`-th rename of the path keyed `key` fail?
    pub fn spill_rename_fails(&self, key: u64, attempt: u32) -> bool {
        self.coin(FaultSite::SpillRename, key, attempt) < self.spill_rename_rate
    }

    /// Should the `attempt`-th write to the path keyed `key` persist torn
    /// bytes? (Consulted only after [`Self::spill_write_fails`] said no.)
    pub fn spill_write_torn(&self, key: u64, attempt: u32) -> bool {
        self.coin(FaultSite::SpillTorn, key, attempt) < self.spill_torn_rate
    }

    /// Should the `attempt`-th evaluation (0-based) of sweep point
    /// `index` panic?
    pub fn panics_at(&self, index: u64, attempt: u32) -> bool {
        self.panic_points.binary_search(&index).is_ok()
            && (attempt == 0 || self.panic_every_attempt)
    }

    /// Serializes the plan to a compact `key=value;…` spec that
    /// [`Self::from_spec`] parses back exactly (floats round-trip through
    /// Rust's shortest-repr `Display`).
    pub fn to_spec(&self) -> String {
        let points: Vec<String> = self.panic_points.iter().map(u64::to_string).collect();
        format!(
            "seed={};spill_write_rate={};spill_read_rate={};spill_rename_rate={};\
             spill_torn_rate={};spill_write_fail_first={};spill_read_fail_first={};\
             panic_points={};panic_every_attempt={};compile_delay_secs={}",
            self.seed,
            self.spill_write_rate,
            self.spill_read_rate,
            self.spill_rename_rate,
            self.spill_torn_rate,
            self.spill_write_fail_first,
            self.spill_read_fail_first,
            points.join(","),
            self.panic_every_attempt,
            self.compile_delay_secs,
        )
    }

    /// Parses a spec produced by [`Self::to_spec`] (unknown keys are an
    /// error; missing keys keep their [`Self::seeded`] defaults).
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = Self::seeded(0);
        for field in spec.split(';').map(str::trim).filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault spec field `{field}` is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("fault spec `{key}={value}`: {e}");
            match key {
                "seed" => plan.seed = value.parse().map_err(|e| bad(&e))?,
                "spill_write_rate" => plan.spill_write_rate = value.parse().map_err(|e| bad(&e))?,
                "spill_read_rate" => plan.spill_read_rate = value.parse().map_err(|e| bad(&e))?,
                "spill_rename_rate" => {
                    plan.spill_rename_rate = value.parse().map_err(|e| bad(&e))?;
                }
                "spill_torn_rate" => plan.spill_torn_rate = value.parse().map_err(|e| bad(&e))?,
                "spill_write_fail_first" => {
                    plan.spill_write_fail_first = value.parse().map_err(|e| bad(&e))?;
                }
                "spill_read_fail_first" => {
                    plan.spill_read_fail_first = value.parse().map_err(|e| bad(&e))?;
                }
                "panic_points" => {
                    plan.panic_points = value
                        .split(',')
                        .map(str::trim)
                        .filter(|v| !v.is_empty())
                        .map(|v| v.parse().map_err(|e| bad(&e)))
                        .collect::<Result<_, _>>()?;
                    plan.panic_points.sort_unstable();
                    plan.panic_points.dedup();
                }
                "panic_every_attempt" => {
                    plan.panic_every_attempt = value.parse().map_err(|e| bad(&e))?;
                }
                "compile_delay_secs" => {
                    plan.compile_delay_secs = value.parse().map_err(|e| bad(&e))?;
                }
                _ => return Err(format!("fault spec has unknown key `{key}`")),
            }
        }
        Ok(plan)
    }
}

/// Stable, process-independent key for a spill path (FNV-1a over the file
/// name). `std`'s default hasher is randomly seeded per process, so it
/// cannot key fault decisions that must replay across runs.
pub fn path_key(path: &Path) -> u64 {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_exactly() {
        let plan = FaultPlan::seeded(0xDEAD_BEEF)
            .with_spill_write_rate(0.37)
            .with_spill_read_rate(1.0)
            .with_spill_rename_rate(0.125)
            .with_spill_torn_rate(0.05)
            .with_spill_write_fail_first(2)
            .with_spill_read_fail_first(1)
            .with_panic_at([9, 3, 3, 17])
            .with_panic_every_attempt(true)
            .with_compile_delay_secs(0.001);
        let spec = plan.to_spec();
        assert_eq!(FaultPlan::from_spec(&spec).unwrap(), plan);
        // Panic points were sorted + deduped at construction.
        assert_eq!(plan.panic_points, vec![3, 9, 17]);
    }

    #[test]
    fn from_spec_rejects_unknown_keys_and_malformed_fields() {
        assert!(FaultPlan::from_spec("bogus=1").is_err());
        assert!(FaultPlan::from_spec("seed").is_err());
        assert!(FaultPlan::from_spec("seed=xyz").is_err());
        let empty = FaultPlan::from_spec("").unwrap();
        assert!(empty.is_noop());
    }

    #[test]
    fn decisions_are_deterministic_and_site_independent() {
        let plan = FaultPlan::seeded(42)
            .with_spill_write_rate(0.5)
            .with_spill_read_rate(0.5);
        for key in 0..32u64 {
            for attempt in 0..8u32 {
                assert_eq!(
                    plan.spill_write_fails(key, attempt),
                    plan.spill_write_fails(key, attempt),
                );
            }
        }
        // The two sites use independent coins: with 32×8 samples the odds
        // of identical outcomes under rate 0.5 are ~2^-256.
        let writes: Vec<bool> = (0..256)
            .map(|i| plan.spill_write_fails(i / 8, (i % 8) as u32))
            .collect();
        let reads: Vec<bool> = (0..256)
            .map(|i| plan.spill_read_fails(i / 8, (i % 8) as u32))
            .collect();
        assert_ne!(writes, reads);
    }

    #[test]
    fn rate_extremes_are_exact() {
        let never = FaultPlan::seeded(7);
        let always = FaultPlan::seeded(7)
            .with_spill_write_rate(1.0)
            .with_spill_read_rate(1.0)
            .with_spill_rename_rate(1.0)
            .with_spill_torn_rate(1.0);
        for key in 0..64u64 {
            for attempt in 0..4u32 {
                assert!(!never.spill_write_fails(key, attempt));
                assert!(!never.spill_read_fails(key, attempt));
                assert!(!never.spill_rename_fails(key, attempt));
                assert!(!never.spill_write_torn(key, attempt));
                assert!(always.spill_write_fails(key, attempt));
                assert!(always.spill_read_fails(key, attempt));
                assert!(always.spill_rename_fails(key, attempt));
                assert!(always.spill_write_torn(key, attempt));
            }
        }
    }

    #[test]
    fn fail_first_overrides_rate_then_yields_to_it() {
        let plan = FaultPlan::seeded(11).with_spill_write_fail_first(2);
        for key in [0u64, 1, 0xFFFF] {
            assert!(plan.spill_write_fails(key, 0));
            assert!(plan.spill_write_fails(key, 1));
            assert!(!plan.spill_write_fails(key, 2), "rate is 0 past prefix");
        }
    }

    #[test]
    fn panic_schedule_honours_attempts() {
        let once = FaultPlan::seeded(1).with_panic_at([5]);
        assert!(once.panics_at(5, 0));
        assert!(!once.panics_at(5, 1));
        assert!(!once.panics_at(4, 0));
        let every = FaultPlan::seeded(1)
            .with_panic_at([5])
            .with_panic_every_attempt(true);
        assert!(every.panics_at(5, 0));
        assert!(every.panics_at(5, 1));
    }

    #[test]
    fn path_key_is_stable_and_name_sensitive() {
        let a = path_key(Path::new("/tmp/x/qkc-art-0000000000000001-0.qkcart"));
        let b = path_key(Path::new("/other/dir/qkc-art-0000000000000001-0.qkcart"));
        let c = path_key(Path::new("/tmp/x/qkc-art-0000000000000002-0.qkcart"));
        assert_eq!(a, b, "keyed by file name, not directory");
        assert_ne!(a, c);
    }
}
