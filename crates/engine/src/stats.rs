//! Circuit statistics that drive backend planning, and cache-occupancy
//! statistics that will drive size-aware eviction.

use qkc_circuit::{Circuit, Operation};
use std::collections::BTreeSet;

/// A point-in-time snapshot of the [`ArtifactCache`](crate::ArtifactCache):
/// request counters plus the exact resident footprint of the compiled
/// execution tapes it holds (the sum of each artifact's
/// `PipelineMetrics::ac_size_bytes`). Taken under one lock acquisition,
/// so every field is mutually consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a resident artifact.
    pub hits: u64,
    /// Requests that compiled a new artifact.
    pub misses: u64,
    /// Artifacts evicted to enforce the resident-byte budget.
    pub evictions: u64,
    /// Requests served by rehydrating a spilled artifact from disk
    /// (evicted earlier, or left warm by a previous process) instead of
    /// recompiling.
    pub spill_hits: u64,
    /// **Total** number of cached structures the cache has ever admitted:
    /// resident, still resolving, or evicted. Evicted entries keep their
    /// identity (circuit, options, spill path) so they can rehydrate, and
    /// therefore still count here. Compare with [`resident_entries`]
    /// (`CacheStats::resident_entries`) for how many actually hold a
    /// compiled artifact in memory right now.
    pub entries: usize,
    /// Number of entries whose compiled artifact is **resident in memory**
    /// right now — the subset of [`entries`](CacheStats::entries) that is
    /// `Ready`, excluding in-flight resolutions and evicted-but-
    /// rehydratable structures. `resident_bytes` is the byte footprint of
    /// exactly these entries.
    pub resident_entries: usize,
    /// Exact bytes of compiled execution tape resident across every
    /// *finished* artifact (in-flight compilations count 0 until done).
    pub resident_bytes: usize,
    /// Bytes of valid artifact spill files on disk.
    pub spilled_bytes: usize,
    /// Spill-I/O attempts that were retried after a failure (reads and
    /// writes; each retried attempt counts once).
    pub spill_retries: u64,
    /// Corrupt/stale spill files renamed aside (`*.quarantined`) so they
    /// are never re-read: each costs one recompile, exactly once.
    pub quarantined: u64,
    /// Whether the cache has degraded to in-memory-only caching after
    /// exhausting spill-write retries. Sticky until
    /// [`clear`](crate::ArtifactCache::clear); queries keep succeeding,
    /// evicted entries recompile instead of rehydrating.
    pub degraded: bool,
}

/// Structural statistics of a circuit, cheap to compute (no compilation),
/// used by the [`Planner`](crate::Planner) to pick a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Qubit count (state-vector cost is `2^n`, density-matrix `4^n`).
    pub num_qubits: usize,
    /// Unitary operation count.
    pub num_gates: usize,
    /// Noise-channel count.
    pub num_noise_events: usize,
    /// Measurement count (each dephases and adds a random variable).
    pub num_measurements: usize,
    /// Circuit depth under greedy moment packing.
    pub depth: usize,
    /// Largest per-qubit operation count — the paper's wide-shallow metric
    /// (QAOA/VQE circuits touch each qubit only a handful of times however
    /// many qubits they have).
    pub max_ops_per_qubit: usize,
    /// `log2` of the number of joint noise/measurement branch assignments —
    /// the cost exponent of exact density-matrix reconstruction from the
    /// compiled artifact.
    pub log2_noise_branches: f64,
    /// Greedy min-degree elimination width of the qubit interaction graph:
    /// a cheap upper-bound proxy for the treewidth quantity that governs
    /// both knowledge-compilation and tensor-contraction cost. Wide-shallow
    /// circuits (the paper's QAOA/VQE regime) score low; densely
    /// interacting circuits score high.
    pub treewidth_proxy: usize,
}

impl CircuitStats {
    /// Computes the statistics of `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut log2_noise_branches = 0.0;
        for op in circuit.operations() {
            match op {
                Operation::Noise { channel, .. } => {
                    log2_noise_branches += (channel.num_branches() as f64).log2();
                }
                Operation::Measure { .. } => log2_noise_branches += 1.0,
                _ => {}
            }
        }
        Self {
            num_qubits: circuit.num_qubits(),
            num_gates: circuit.num_gates(),
            num_noise_events: circuit.num_noise_ops(),
            num_measurements: circuit.num_measurements(),
            depth: circuit.depth(),
            max_ops_per_qubit: circuit.ops_per_qubit().into_iter().max().unwrap_or(0),
            log2_noise_branches,
            treewidth_proxy: elimination_width(circuit),
        }
    }

    /// Whether the circuit contains noise or measurement events.
    pub fn is_noisy(&self) -> bool {
        self.num_noise_events > 0 || self.num_measurements > 0
    }

    /// Whether the circuit is in the paper's wide-shallow regime: every
    /// qubit touched by only a few operations, interactions locally
    /// clustered. This is where compiled arithmetic circuits beat dense
    /// state vectors.
    pub fn is_wide_shallow(&self) -> bool {
        self.max_ops_per_qubit <= 12 && self.treewidth_proxy <= self.num_qubits.min(8)
    }
}

/// Greedy min-degree elimination width of the qubit interaction graph.
///
/// Multi-qubit operations connect their qubits; vertices are repeatedly
/// eliminated in min-degree order, connecting their remaining neighbors
/// (fill-in), and the width is the largest neighborhood eliminated. This is
/// the classic cheap upper bound for treewidth used by tensor-network
/// contraction planners.
fn elimination_width(circuit: &Circuit) -> usize {
    let n = circuit.num_qubits();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for op in circuit.operations() {
        let qs = op.qubits();
        for (i, &a) in qs.iter().enumerate() {
            for &b in &qs[i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
    }
    let mut alive: BTreeSet<usize> = (0..n).collect();
    let mut width = 0;
    while let Some(&v) = alive.iter().min_by_key(|&&v| adj[v].len()) {
        width = width.max(adj[v].len());
        let neighbors: Vec<usize> = adj[v].iter().copied().collect();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        for &u in &neighbors {
            adj[u].remove(&v);
        }
        adj[v].clear();
        alive.remove(&v);
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::Circuit;

    #[test]
    fn counts_and_noise_exponent() {
        let mut c = Circuit::new(3);
        c.h(0).depolarize(0, 0.1).cnot(0, 1).measure(2);
        let s = CircuitStats::of(&c);
        assert_eq!(s.num_qubits, 3);
        assert_eq!(s.num_gates, 2);
        assert_eq!(s.num_noise_events, 1);
        assert_eq!(s.num_measurements, 1);
        assert!(s.is_noisy());
        // Depolarizing has 4 branches (log2 = 2) plus one measurement bit.
        assert!((s.log2_noise_branches - 3.0).abs() < 1e-12);
    }

    #[test]
    fn chain_has_width_one_clique_has_width_n_minus_1() {
        let mut chain = Circuit::new(6);
        for q in 0..5 {
            chain.cnot(q, q + 1);
        }
        assert_eq!(CircuitStats::of(&chain).treewidth_proxy, 1);

        let mut clique = Circuit::new(5);
        for a in 0..5 {
            for b in a + 1..5 {
                clique.cz(a, b);
            }
        }
        assert_eq!(CircuitStats::of(&clique).treewidth_proxy, 4);
    }

    #[test]
    fn cycle_has_width_two() {
        let mut cyc = Circuit::new(8);
        for q in 0..8 {
            cyc.cz(q, (q + 1) % 8);
        }
        assert_eq!(CircuitStats::of(&cyc).treewidth_proxy, 2);
    }

    #[test]
    fn pure_circuit_is_not_noisy() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = CircuitStats::of(&c);
        assert!(!s.is_noisy());
        assert_eq!(s.log2_noise_branches, 0.0);
        assert!(s.is_wide_shallow());
    }
}
