//! Backend selection from circuit statistics.

use crate::backend::BackendKind;
use crate::stats::CircuitStats;
use qkc_circuit::Circuit;

/// What the caller intends to do with the circuit — the axis the paper's
/// evaluation splits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanHint {
    /// One-off query: compilation cost is not amortized.
    #[default]
    SingleShot,
    /// Many parameter bindings over one structure (VQE/QAOA loops): favors
    /// compile-once backends.
    ParameterSweep,
}

/// Measured figures for the knowledge-compilation candidate, lifted from
/// a cache-resident compiled artifact
/// ([`ArtifactCache::resident_metrics`](crate::ArtifactCache::resident_metrics)).
/// When present, the planner scores the KC candidate from what the
/// compiler actually produced — the exact tape footprint and the measured
/// compile wall time — instead of the treewidth proxy.
#[derive(Debug, Clone)]
pub struct KcCalibration {
    /// Exact resident size of the compiled execution tape in bytes.
    pub ac_size_bytes: usize,
    /// Measured wall-clock seconds the compilation took (all stages).
    pub compile_seconds: f64,
}

impl KcCalibration {
    /// Calibration figures from a compiled artifact's pipeline metrics.
    pub fn from_metrics(metrics: &qkc_core::PipelineMetrics) -> Self {
        Self {
            ac_size_bytes: metrics.ac_size_bytes,
            compile_seconds: metrics.compile_seconds,
        }
    }
}

/// A backend decision with its inputs and justification.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The chosen backend.
    pub backend: BackendKind,
    /// The statistics the decision was made from.
    pub stats: CircuitStats,
    /// Human-readable justification (surfaced in logs and benchmarks).
    pub reason: String,
}

/// One backend's assessment inside a [`PlanExplanation`]: whether the
/// planner considers it applicable at all, and the `log2` of its dominant
/// cost term (amplitudes for dense backends, the treewidth proxy for
/// compilation/contraction) — comparable across candidates as an order of
/// magnitude, not a calibrated runtime.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The backend being assessed.
    pub backend: BackendKind,
    /// Whether this backend can answer the query at all under the
    /// planner's thresholds.
    pub feasible: bool,
    /// `log2` of the backend's dominant memory/time term.
    pub est_log2_cost: f64,
    /// Human-readable assessment (why it is or is not viable).
    pub verdict: String,
}

/// An "explain plan" for backend dispatch: the statistics the decision was
/// made from, every candidate's score, and the chosen backend — produced
/// by [`Planner::explain`] and guaranteed to agree with [`Planner::plan`].
#[derive(Debug, Clone)]
pub struct PlanExplanation {
    /// The intent the plan was made under.
    pub hint: PlanHint,
    /// The statistics the decision was made from.
    pub stats: CircuitStats,
    /// Every candidate backend's assessment, in fixed order (KC, state
    /// vector, density matrix, tensor network).
    pub candidates: Vec<Candidate>,
    /// The backend [`Planner::plan`] picks for the same inputs.
    pub chosen: BackendKind,
    /// The plan's justification.
    pub reason: String,
}

impl PlanExplanation {
    /// Renders the explanation as an indented multi-line table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "plan explain ({:?}): {} qubits, {} gates, tw~{}, 2^{:.0} noise branches\n",
            self.hint,
            self.stats.num_qubits,
            self.stats.num_gates,
            self.stats.treewidth_proxy,
            self.stats.log2_noise_branches,
        );
        for c in &self.candidates {
            out.push_str(&format!(
                "  {} {:<22} cost~2^{:<5.1} {:<10} {}\n",
                if c.backend == self.chosen { ">" } else { " " },
                c.backend.to_string(),
                c.est_log2_cost,
                if c.feasible { "feasible" } else { "infeasible" },
                c.verdict,
            ));
        }
        out.push_str(&format!("  chosen: {} — {}\n", self.chosen, self.reason));
        out
    }
}

/// Static telemetry path for the chosen-backend counter (paths must be
/// `&'static str`, so one literal per backend).
fn chosen_path(backend: BackendKind) -> &'static str {
    match backend {
        BackendKind::KnowledgeCompilation => "planner/chosen/kc",
        BackendKind::StateVector => "planner/chosen/sv",
        BackendKind::DensityMatrix => "planner/chosen/dm",
        BackendKind::TensorNetwork => "planner/chosen/tn",
    }
}

/// Chooses a backend from [`CircuitStats`], following the cost model of the
/// paper's Figures 8 and 9:
///
/// * noisy circuits: density matrices are exact but `4^n`, so they win only
///   at small qubit counts when noise events are too many to enumerate;
///   everywhere else the compiled artifact wins (exact when the joint noise
///   assignment space is enumerable, Gibbs sampling beyond);
/// * pure circuits in the wide-shallow, low-treewidth regime: compiled
///   artifacts, whose one-time cost is amortized — decisively so for
///   [`PlanHint::ParameterSweep`];
/// * pure deep/narrow circuits: dense state vectors up to the memory wall;
/// * pure wide circuits past the state-vector wall: tensor networks when
///   the treewidth proxy stays moderate, otherwise the compiled artifact.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Densest mixed state the planner will hand to the density-matrix
    /// backend (`4^n` memory).
    pub max_density_matrix_qubits: usize,
    /// Largest pure state the planner will hand to the state-vector backend
    /// (`2^n` memory).
    pub max_state_vector_qubits: usize,
    /// `log2` joint-noise-branch budget for exact enumeration on the
    /// compiled backend; must match the [`KcBackend`](crate::KcBackend)
    /// budget.
    pub max_exact_log2_branches: f64,
    /// Treewidth proxy at or below which tensor contraction stays cheap.
    pub max_tensor_width: usize,
    /// Forces a specific backend, bypassing every rule.
    pub force: Option<BackendKind>,
}

impl Default for Planner {
    fn default() -> Self {
        Self {
            max_density_matrix_qubits: 10,
            max_state_vector_qubits: 24,
            max_exact_log2_branches: 14.0,
            max_tensor_width: 10,
            force: None,
        }
    }
}

impl Planner {
    /// A planner with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces every plan to `backend` (the user override).
    pub fn with_forced_backend(mut self, backend: BackendKind) -> Self {
        self.force = Some(backend);
        self
    }

    /// Plans a backend for `circuit` under `hint`.
    pub fn plan(&self, circuit: &Circuit, hint: PlanHint) -> Plan {
        self.plan_calibrated(circuit, hint, None)
    }

    /// Plans a backend with optional measured calibration for the KC
    /// candidate. `calibration` carries figures from an already-compiled,
    /// cache-resident artifact of this structure; when present and the
    /// decision lands on knowledge compilation, the justification cites
    /// the measured tape size and compile time instead of leaving the
    /// caller with the treewidth proxy. `None` reproduces
    /// [`Planner::plan`] exactly.
    pub fn plan_calibrated(
        &self,
        circuit: &Circuit,
        hint: PlanHint,
        calibration: Option<&KcCalibration>,
    ) -> Plan {
        let stats = CircuitStats::of(circuit);
        qkc_telemetry::count("planner/plan", 1);
        if let Some(backend) = self.force {
            qkc_telemetry::count(chosen_path(backend), 1);
            return Plan {
                backend,
                stats,
                reason: "forced by caller override".to_string(),
            };
        }
        let (backend, mut reason) = self.decide(&stats, hint);
        if backend == BackendKind::KnowledgeCompilation {
            if let Some(cal) = calibration {
                qkc_telemetry::count("planner/calibrated", 1);
                reason.push_str(&format!(
                    "; calibrated: artifact is cache-resident ({} B tape, compiled in {:.3}s \
                     — re-binds pay no compile cost)",
                    cal.ac_size_bytes, cal.compile_seconds
                ));
            }
        }
        qkc_telemetry::count(chosen_path(backend), 1);
        Plan {
            backend,
            stats,
            reason,
        }
    }

    /// An "explain plan" for backend dispatch: every candidate backend with
    /// its feasibility, estimated `log2` cost, and verdict, plus the chosen
    /// backend. The choice is made by the same rule cascade as
    /// [`Planner::plan`], so the two always agree; the per-candidate cost
    /// estimates are the raw material the planner-calibration work fits
    /// measured phase times against.
    pub fn explain(&self, circuit: &Circuit, hint: PlanHint) -> PlanExplanation {
        self.explain_calibrated(circuit, hint, None)
    }

    /// [`Planner::explain`] with optional measured calibration: when a
    /// compiled artifact of this structure is cache-resident, the KC
    /// candidate is scored from its **exact** tape footprint and measured
    /// compile seconds instead of the treewidth proxy (the other
    /// candidates keep their static estimates — nothing measured exists
    /// for backends that never ran). `None` reproduces
    /// [`Planner::explain`] exactly.
    pub fn explain_calibrated(
        &self,
        circuit: &Circuit,
        hint: PlanHint,
        calibration: Option<&KcCalibration>,
    ) -> PlanExplanation {
        let _span = qkc_telemetry::span("planner/explain");
        let plan = self.plan_calibrated(circuit, hint, calibration);
        let s = &plan.stats;
        let n = s.num_qubits as f64;
        let enumerable = s.log2_noise_branches <= self.max_exact_log2_branches;
        let branch_cost = s.log2_noise_branches.min(self.max_exact_log2_branches);

        // Feasibility mirrors the decide() thresholds; est_log2_cost is the
        // exponent of each backend's dominant memory/time term. The KC
        // candidate upgrades from the treewidth proxy to measured figures
        // when a compiled artifact is resident.
        let kc_candidate = match calibration {
            Some(cal) => Candidate {
                backend: BackendKind::KnowledgeCompilation,
                feasible: true,
                // The dominant per-query term is one traversal of the
                // resident tape (times the enumerable branch factor) — an
                // exact byte count, not a width guess.
                est_log2_cost: (cal.ac_size_bytes.max(1) as f64).log2() + branch_cost,
                verdict: if enumerable {
                    format!(
                        "measured: {} B tape resident (compiled once in {:.3}s), exact \
                         reconstruction over 2^{:.0} branches",
                        cal.ac_size_bytes, cal.compile_seconds, s.log2_noise_branches
                    )
                } else {
                    format!(
                        "measured: {} B tape resident (compiled once in {:.3}s), Gibbs \
                         sampling past the 2^{:.0} branch budget",
                        cal.ac_size_bytes, cal.compile_seconds, self.max_exact_log2_branches
                    )
                },
            },
            None => Candidate {
                backend: BackendKind::KnowledgeCompilation,
                // Always applicable: exact when branches are enumerable,
                // Gibbs sampling beyond.
                feasible: true,
                est_log2_cost: s.treewidth_proxy as f64 + branch_cost,
                verdict: if enumerable {
                    format!(
                        "compile ~2^{} (treewidth proxy), exact reconstruction over 2^{:.0} branches",
                        s.treewidth_proxy, s.log2_noise_branches
                    )
                } else {
                    format!(
                        "compile ~2^{} (treewidth proxy), Gibbs sampling past the 2^{:.0} branch budget",
                        s.treewidth_proxy, self.max_exact_log2_branches
                    )
                },
            },
        };
        let candidates = vec![
            kc_candidate,
            Candidate {
                backend: BackendKind::StateVector,
                feasible: !s.is_noisy() && s.num_qubits <= self.max_state_vector_qubits,
                est_log2_cost: n,
                verdict: if s.is_noisy() {
                    "pure states only: cannot represent the mixed state exactly".to_string()
                } else if s.num_qubits > self.max_state_vector_qubits {
                    format!(
                        "2^{} amplitudes exceed the {}-qubit memory wall",
                        s.num_qubits, self.max_state_vector_qubits
                    )
                } else {
                    format!("2^{} amplitudes fit in memory", s.num_qubits)
                },
            },
            Candidate {
                backend: BackendKind::DensityMatrix,
                feasible: s.num_qubits <= self.max_density_matrix_qubits,
                est_log2_cost: 2.0 * n,
                verdict: if s.num_qubits <= self.max_density_matrix_qubits {
                    format!(
                        "4^{} density matrix fits in memory, exact under any noise",
                        s.num_qubits
                    )
                } else {
                    format!(
                        "4^{} entries exceed the {}-qubit density-matrix wall",
                        s.num_qubits, self.max_density_matrix_qubits
                    )
                },
            },
            Candidate {
                backend: BackendKind::TensorNetwork,
                feasible: !s.is_noisy() && s.treewidth_proxy <= self.max_tensor_width,
                est_log2_cost: s.treewidth_proxy as f64,
                verdict: if s.is_noisy() {
                    "pure-state contraction only: noise channels are not unitaries".to_string()
                } else if s.treewidth_proxy > self.max_tensor_width {
                    format!(
                        "treewidth proxy {} past the contraction budget {}",
                        s.treewidth_proxy, self.max_tensor_width
                    )
                } else {
                    format!(
                        "contraction ~2^{} (treewidth proxy) stays cheap",
                        s.treewidth_proxy
                    )
                },
            },
        ];
        PlanExplanation {
            hint,
            stats: plan.stats.clone(),
            candidates,
            chosen: plan.backend,
            reason: plan.reason,
        }
    }

    fn decide(&self, s: &CircuitStats, hint: PlanHint) -> (BackendKind, String) {
        if s.is_noisy() {
            let enumerable = s.log2_noise_branches <= self.max_exact_log2_branches;
            if !enumerable && s.num_qubits <= self.max_density_matrix_qubits {
                return (
                    BackendKind::DensityMatrix,
                    format!(
                        "noisy, 2^{:.0} noise branches exceed the enumeration budget and \
                         {} qubits fit a dense density matrix",
                        s.log2_noise_branches, s.num_qubits
                    ),
                );
            }
            return (
                BackendKind::KnowledgeCompilation,
                if enumerable {
                    format!(
                        "noisy with 2^{:.0} enumerable noise branches: compiled artifact \
                         is exact and re-binds cheaply",
                        s.log2_noise_branches
                    )
                } else {
                    format!(
                        "noisy, {} qubits past the density-matrix wall: compiled artifact \
                         with Gibbs sampling",
                        s.num_qubits
                    )
                },
            );
        }

        // Pure circuits.
        let sweep = hint == PlanHint::ParameterSweep;
        if sweep && s.is_wide_shallow() {
            return (
                BackendKind::KnowledgeCompilation,
                format!(
                    "parameter sweep over a wide-shallow circuit ({} ops/qubit max, width \
                     proxy {}): compile once, re-bind per iteration",
                    s.max_ops_per_qubit, s.treewidth_proxy
                ),
            );
        }
        if s.num_qubits <= self.max_state_vector_qubits {
            return (
                BackendKind::StateVector,
                format!("pure, {} qubits fit a dense state vector", s.num_qubits),
            );
        }
        if s.treewidth_proxy <= self.max_tensor_width {
            return (
                BackendKind::TensorNetwork,
                format!(
                    "pure, {} qubits past the state-vector wall with treewidth proxy {}: \
                     contraction stays polynomial-ish",
                    s.num_qubits, s.treewidth_proxy
                ),
            );
        }
        (
            BackendKind::KnowledgeCompilation,
            format!(
                "pure, {} qubits past the state-vector wall and treewidth proxy {} too \
                 high for contraction: compiled artifact",
                s.num_qubits, s.treewidth_proxy
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::{Circuit, NoiseChannel};

    /// A QAOA-shaped circuit: ring of ZZ couplers plus a mixer layer.
    fn ring(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n {
            c.zz(q, (q + 1) % n, 0.4);
        }
        for q in 0..n {
            c.rx(q, 0.3);
        }
        c
    }

    #[test]
    fn sweep_over_wide_shallow_pure_circuit_uses_kc() {
        let plan = Planner::new().plan(&ring(30), PlanHint::ParameterSweep);
        assert_eq!(plan.backend, BackendKind::KnowledgeCompilation);
        assert!(plan.reason.contains("compile once"), "{}", plan.reason);
    }

    #[test]
    fn single_shot_small_pure_circuit_uses_state_vector() {
        let plan = Planner::new().plan(&ring(8), PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::StateVector);
    }

    #[test]
    fn huge_low_width_pure_circuit_uses_tensor_network() {
        let mut chain = Circuit::new(40);
        for q in 0..39 {
            chain.cnot(q, q + 1);
        }
        let plan = Planner::new().plan(&chain, PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::TensorNetwork);
    }

    #[test]
    fn small_heavily_noisy_circuit_uses_density_matrix() {
        // Depolarizing after every gate on a dense 4-qubit circuit: far too
        // many branches to enumerate, but 4 qubits are tiny for rho.
        let noisy = ring(4).with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
        let plan = Planner::new().plan(&noisy, PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::DensityMatrix);
    }

    #[test]
    fn lightly_noisy_circuit_uses_kc_exactly() {
        let mut c = ring(6);
        c.depolarize(0, 0.01).phase_damp(3, 0.1);
        let plan = Planner::new().plan(&c, PlanHint::ParameterSweep);
        assert_eq!(plan.backend, BackendKind::KnowledgeCompilation);
        assert!(plan.reason.contains("exact"), "{}", plan.reason);
    }

    #[test]
    fn wide_noisy_circuit_uses_kc_gibbs() {
        let noisy = ring(16).with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
        let plan = Planner::new().plan(&noisy, PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::KnowledgeCompilation);
        assert!(plan.reason.contains("Gibbs"), "{}", plan.reason);
    }

    #[test]
    fn explain_agrees_with_plan_and_scores_every_backend() {
        let planner = Planner::new();
        let circuits = [
            ring(30),
            ring(8),
            ring(4).with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005)),
            ring(16).with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005)),
        ];
        for circuit in &circuits {
            for hint in [PlanHint::SingleShot, PlanHint::ParameterSweep] {
                let plan = planner.plan(circuit, hint);
                let explain = planner.explain(circuit, hint);
                assert_eq!(explain.chosen, plan.backend);
                assert_eq!(explain.reason, plan.reason);
                assert_eq!(explain.candidates.len(), 4);
                let chosen = explain
                    .candidates
                    .iter()
                    .find(|c| c.backend == explain.chosen)
                    .expect("chosen backend among candidates");
                assert!(chosen.feasible, "plan picked an infeasible backend");
                assert!(explain.render().contains("chosen:"));
            }
        }
    }

    #[test]
    fn calibration_rescores_the_kc_candidate_from_measured_figures() {
        let planner = Planner::new();
        let circuit = ring(30);
        let cal = KcCalibration {
            ac_size_bytes: 4096,
            compile_seconds: 0.125,
        };
        let hint = PlanHint::ParameterSweep;
        let uncal = planner.explain(&circuit, hint);
        let caled = planner.explain_calibrated(&circuit, hint, Some(&cal));
        assert_eq!(caled.chosen, uncal.chosen, "calibration rescore only");
        let kc = |e: &PlanExplanation| {
            e.candidates
                .iter()
                .find(|c| c.backend == BackendKind::KnowledgeCompilation)
                .cloned()
                .expect("kc candidate")
        };
        assert!((kc(&caled).est_log2_cost - 12.0).abs() < 1e-9, "log2(4096)");
        assert!(
            kc(&caled).verdict.contains("measured"),
            "{}",
            kc(&caled).verdict
        );
        assert!(!kc(&uncal).verdict.contains("measured"));
        // The plan's justification cites the measured artifact — appended,
        // so every uncalibrated reason phrase survives.
        let plan = planner.plan_calibrated(&circuit, hint, Some(&cal));
        assert!(plan.reason.contains("compile once"), "{}", plan.reason);
        assert!(plan.reason.contains("calibrated"), "{}", plan.reason);
        // Non-KC decisions ignore the calibration entirely.
        let sv = planner.plan_calibrated(&ring(8), PlanHint::SingleShot, Some(&cal));
        assert_eq!(sv.backend, BackendKind::StateVector);
        assert!(!sv.reason.contains("calibrated"));
    }

    #[test]
    fn override_wins() {
        let planner = Planner::new().with_forced_backend(BackendKind::TensorNetwork);
        let plan = planner.plan(&ring(4), PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::TensorNetwork);
        assert!(plan.reason.contains("forced"));
    }
}
