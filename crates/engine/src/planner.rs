//! Backend selection from circuit statistics.

use crate::backend::BackendKind;
use crate::stats::CircuitStats;
use qkc_circuit::Circuit;

/// What the caller intends to do with the circuit — the axis the paper's
/// evaluation splits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanHint {
    /// One-off query: compilation cost is not amortized.
    #[default]
    SingleShot,
    /// Many parameter bindings over one structure (VQE/QAOA loops): favors
    /// compile-once backends.
    ParameterSweep,
}

/// A backend decision with its inputs and justification.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The chosen backend.
    pub backend: BackendKind,
    /// The statistics the decision was made from.
    pub stats: CircuitStats,
    /// Human-readable justification (surfaced in logs and benchmarks).
    pub reason: String,
}

/// Chooses a backend from [`CircuitStats`], following the cost model of the
/// paper's Figures 8 and 9:
///
/// * noisy circuits: density matrices are exact but `4^n`, so they win only
///   at small qubit counts when noise events are too many to enumerate;
///   everywhere else the compiled artifact wins (exact when the joint noise
///   assignment space is enumerable, Gibbs sampling beyond);
/// * pure circuits in the wide-shallow, low-treewidth regime: compiled
///   artifacts, whose one-time cost is amortized — decisively so for
///   [`PlanHint::ParameterSweep`];
/// * pure deep/narrow circuits: dense state vectors up to the memory wall;
/// * pure wide circuits past the state-vector wall: tensor networks when
///   the treewidth proxy stays moderate, otherwise the compiled artifact.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Densest mixed state the planner will hand to the density-matrix
    /// backend (`4^n` memory).
    pub max_density_matrix_qubits: usize,
    /// Largest pure state the planner will hand to the state-vector backend
    /// (`2^n` memory).
    pub max_state_vector_qubits: usize,
    /// `log2` joint-noise-branch budget for exact enumeration on the
    /// compiled backend; must match the [`KcBackend`](crate::KcBackend)
    /// budget.
    pub max_exact_log2_branches: f64,
    /// Treewidth proxy at or below which tensor contraction stays cheap.
    pub max_tensor_width: usize,
    /// Forces a specific backend, bypassing every rule.
    pub force: Option<BackendKind>,
}

impl Default for Planner {
    fn default() -> Self {
        Self {
            max_density_matrix_qubits: 10,
            max_state_vector_qubits: 24,
            max_exact_log2_branches: 14.0,
            max_tensor_width: 10,
            force: None,
        }
    }
}

impl Planner {
    /// A planner with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces every plan to `backend` (the user override).
    pub fn with_forced_backend(mut self, backend: BackendKind) -> Self {
        self.force = Some(backend);
        self
    }

    /// Plans a backend for `circuit` under `hint`.
    pub fn plan(&self, circuit: &Circuit, hint: PlanHint) -> Plan {
        let stats = CircuitStats::of(circuit);
        if let Some(backend) = self.force {
            return Plan {
                backend,
                stats,
                reason: "forced by caller override".to_string(),
            };
        }
        let (backend, reason) = self.decide(&stats, hint);
        Plan {
            backend,
            stats,
            reason,
        }
    }

    fn decide(&self, s: &CircuitStats, hint: PlanHint) -> (BackendKind, String) {
        if s.is_noisy() {
            let enumerable = s.log2_noise_branches <= self.max_exact_log2_branches;
            if !enumerable && s.num_qubits <= self.max_density_matrix_qubits {
                return (
                    BackendKind::DensityMatrix,
                    format!(
                        "noisy, 2^{:.0} noise branches exceed the enumeration budget and \
                         {} qubits fit a dense density matrix",
                        s.log2_noise_branches, s.num_qubits
                    ),
                );
            }
            return (
                BackendKind::KnowledgeCompilation,
                if enumerable {
                    format!(
                        "noisy with 2^{:.0} enumerable noise branches: compiled artifact \
                         is exact and re-binds cheaply",
                        s.log2_noise_branches
                    )
                } else {
                    format!(
                        "noisy, {} qubits past the density-matrix wall: compiled artifact \
                         with Gibbs sampling",
                        s.num_qubits
                    )
                },
            );
        }

        // Pure circuits.
        let sweep = hint == PlanHint::ParameterSweep;
        if sweep && s.is_wide_shallow() {
            return (
                BackendKind::KnowledgeCompilation,
                format!(
                    "parameter sweep over a wide-shallow circuit ({} ops/qubit max, width \
                     proxy {}): compile once, re-bind per iteration",
                    s.max_ops_per_qubit, s.treewidth_proxy
                ),
            );
        }
        if s.num_qubits <= self.max_state_vector_qubits {
            return (
                BackendKind::StateVector,
                format!("pure, {} qubits fit a dense state vector", s.num_qubits),
            );
        }
        if s.treewidth_proxy <= self.max_tensor_width {
            return (
                BackendKind::TensorNetwork,
                format!(
                    "pure, {} qubits past the state-vector wall with treewidth proxy {}: \
                     contraction stays polynomial-ish",
                    s.num_qubits, s.treewidth_proxy
                ),
            );
        }
        (
            BackendKind::KnowledgeCompilation,
            format!(
                "pure, {} qubits past the state-vector wall and treewidth proxy {} too \
                 high for contraction: compiled artifact",
                s.num_qubits, s.treewidth_proxy
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::{Circuit, NoiseChannel};

    /// A QAOA-shaped circuit: ring of ZZ couplers plus a mixer layer.
    fn ring(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n {
            c.zz(q, (q + 1) % n, 0.4);
        }
        for q in 0..n {
            c.rx(q, 0.3);
        }
        c
    }

    #[test]
    fn sweep_over_wide_shallow_pure_circuit_uses_kc() {
        let plan = Planner::new().plan(&ring(30), PlanHint::ParameterSweep);
        assert_eq!(plan.backend, BackendKind::KnowledgeCompilation);
        assert!(plan.reason.contains("compile once"), "{}", plan.reason);
    }

    #[test]
    fn single_shot_small_pure_circuit_uses_state_vector() {
        let plan = Planner::new().plan(&ring(8), PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::StateVector);
    }

    #[test]
    fn huge_low_width_pure_circuit_uses_tensor_network() {
        let mut chain = Circuit::new(40);
        for q in 0..39 {
            chain.cnot(q, q + 1);
        }
        let plan = Planner::new().plan(&chain, PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::TensorNetwork);
    }

    #[test]
    fn small_heavily_noisy_circuit_uses_density_matrix() {
        // Depolarizing after every gate on a dense 4-qubit circuit: far too
        // many branches to enumerate, but 4 qubits are tiny for rho.
        let noisy = ring(4).with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
        let plan = Planner::new().plan(&noisy, PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::DensityMatrix);
    }

    #[test]
    fn lightly_noisy_circuit_uses_kc_exactly() {
        let mut c = ring(6);
        c.depolarize(0, 0.01).phase_damp(3, 0.1);
        let plan = Planner::new().plan(&c, PlanHint::ParameterSweep);
        assert_eq!(plan.backend, BackendKind::KnowledgeCompilation);
        assert!(plan.reason.contains("exact"), "{}", plan.reason);
    }

    #[test]
    fn wide_noisy_circuit_uses_kc_gibbs() {
        let noisy = ring(16).with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
        let plan = Planner::new().plan(&noisy, PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::KnowledgeCompilation);
        assert!(plan.reason.contains("Gibbs"), "{}", plan.reason);
    }

    #[test]
    fn override_wins() {
        let planner = Planner::new().with_forced_backend(BackendKind::TensorNetwork);
        let plan = planner.plan(&ring(4), PlanHint::SingleShot);
        assert_eq!(plan.backend, BackendKind::TensorNetwork);
        assert!(plan.reason.contains("forced"));
    }
}
