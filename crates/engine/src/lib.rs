//! `qkc-engine` — the single entry point for running QKC workloads at
//! scale.
//!
//! The paper's core economic argument is *compile once, bind many*: the
//! knowledge-compilation pipeline amortizes one expensive structural
//! compilation across thousands of cheap per-iteration parameter bindings
//! in a variational loop. This crate turns that argument into
//! infrastructure:
//!
//! * [`Backend`] — one trait over all four simulator families
//!   (knowledge compilation, state vector, density matrix, tensor
//!   network), with uniform probability / sampling / expectation queries
//!   and per-backend [`Capabilities`];
//! * [`ArtifactCache`] — compiled [`KcSimulator`](qkc_core::KcSimulator)
//!   artifacts keyed by the circuit's
//!   [structural hash](qkc_circuit::Circuit::structural_hash), so a whole
//!   VQE/QAOA sweep compiles exactly once;
//! * [`SweepExecutor`] — fans a batch of [`ParamMap`](qkc_circuit::ParamMap)s
//!   out across worker threads and, within each worker, through the
//!   backend's batched evaluation path
//!   ([`Backend::probabilities_batch`] / [`Backend::expectation_batch`]):
//!   the KC backend binds lanes of `k` points at once and amortizes one
//!   arithmetic-circuit traversal over all of them. Per-point
//!   deterministic seeding and bit-for-bit batched kernels keep results
//!   identical for any thread count and any batch width;
//! * [`Planner`] — picks a backend from circuit statistics (qubit count,
//!   noise events, a treewidth proxy) with a user override;
//! * [`Engine`] — the facade tying the four together, plus a batched
//!   variational driver ([`minimize_variational`]).
//!
//! # Examples
//!
//! ```
//! use qkc_circuit::{Circuit, Param, ParamMap};
//! use qkc_engine::{Engine, SweepSpec};
//!
//! let mut c = Circuit::new(2);
//! c.rx(0, Param::symbol("theta")).cnot(0, 1);
//!
//! let engine = Engine::new();
//! let sweep: Vec<ParamMap> = [0.3, 1.1, 2.9]
//!     .iter()
//!     .map(|&t| ParamMap::from_pairs([("theta", t)]))
//!     .collect();
//! // One compile, three bindings; <obs> under P(outputs).
//! let obs = |bits: usize| bits as f64;
//! let points = engine
//!     .sweep(&c, &sweep, &SweepSpec::expectation(&obs))
//!     .unwrap();
//! assert_eq!(points.len(), 3);
//! assert_eq!(engine.cache().misses(), 1);
//! ```

#![forbid(unsafe_code)]

mod backend;
mod budget;
mod cache;
mod facade;
pub mod faults;
mod gradient;
mod planner;
mod stats;
mod sweep;
mod variational;

pub use backend::{
    Backend, BackendKind, Capabilities, DensityMatrixBackend, EngineError, KcBackend,
    StateVectorBackend, TensorNetworkBackend,
};
pub use budget::QueryBudget;
pub use cache::{ArtifactCache, CacheOptions};
pub use facade::{Engine, EngineOptions};
pub use faults::{FaultPlan, FaultSite};
pub use gradient::{GradientMethod, GradientPoint, GradientResult, GradientSpec, FD_STEP};
pub use planner::{Candidate, KcCalibration, Plan, PlanExplanation, PlanHint, Planner};
pub use qkc_core::{
    record_verify_telemetry, Finding, Severity, VerifyLevel, VerifyPass, VerifyReport,
};
pub use stats::{CacheStats, CircuitStats};
pub use sweep::{SweepExecutor, SweepFailure, SweepPoint, SweepReport, SweepSpec, DEFAULT_BATCH};
pub use variational::{
    minimize_variational, minimize_variational_gradient, minimize_variational_terms,
    GradientOptimizer, VariationalConfig, VariationalGradientConfig, VariationalResult,
    VariationalTerm,
};

/// The instrumentation subsystem ([`qkc_telemetry`]), re-exported so
/// engine users can enable/snapshot telemetry without naming the crate.
pub use qkc_telemetry as telemetry;

/// SplitMix64 — the engine's standard way to derive independent child seeds
/// from a base seed and an index. Deterministic, and used everywhere a
/// sweep point or shot stream needs its own generator, so results never
/// depend on thread count or execution order.
pub(crate) fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
