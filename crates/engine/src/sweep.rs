//! The parallel parameter-sweep executor.

use crate::backend::{Backend, EngineError};
use crate::budget::QueryCtx;
use crate::faults::{FaultPlan, FaultSite};
use crate::mix_seed;
use qkc_circuit::{Circuit, ParamMap};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What each sweep point should produce.
///
/// The observable is a diagonal function of the measured bitstring
/// (cut values, Ising energies, indicator functions, ...). When the backend
/// can produce exact probabilities the expectation is computed exactly;
/// otherwise it is estimated from `shots` samples.
pub struct SweepSpec<'a> {
    /// Samples to draw per point (also the estimator sample size when the
    /// backend cannot do exact expectations). `0` draws none.
    pub shots: usize,
    /// Diagonal observable to take the expectation of, if any.
    pub observable: Option<&'a (dyn Fn(usize) -> f64 + Sync)>,
    /// Keep the raw samples in each [`SweepPoint`] (they are dropped after
    /// estimating the expectation otherwise).
    pub keep_samples: bool,
    /// Base seed; point `i` derives its own generator from `(seed, i)`, so
    /// results are reproducible and independent of thread count.
    pub seed: u64,
}

impl<'a> SweepSpec<'a> {
    /// Expectation-only sweep (exact when the backend allows, otherwise
    /// estimated from a default 2048 shots per point).
    pub fn expectation(observable: &'a (dyn Fn(usize) -> f64 + Sync)) -> Self {
        Self {
            shots: 2048,
            observable: Some(observable),
            keep_samples: false,
            seed: 0,
        }
    }

    /// Samples-only sweep.
    pub fn samples(shots: usize) -> Self {
        Self {
            shots,
            observable: None,
            keep_samples: true,
            seed: 0,
        }
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-point shot count.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }
}

/// The result of one parameter binding in a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Position in the input parameter batch.
    pub index: usize,
    /// Expectation of the requested observable, if one was requested.
    pub expectation: Option<f64>,
    /// Whether `expectation` is exact (from the full distribution) rather
    /// than a sample estimate.
    pub exact: bool,
    /// Raw samples, when requested via [`SweepSpec::keep_samples`].
    pub samples: Vec<usize>,
}

/// One sweep point that could not be evaluated: its position in the input
/// batch and the typed error that stopped it (after the executor's single
/// retry, for panics).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure {
    /// Position in the input parameter batch.
    pub index: usize,
    /// Why the point failed.
    pub error: EngineError,
}

/// The full outcome of a sweep: every point that succeeded plus a typed
/// failure for every point that did not. Successful points are
/// byte-identical to what a fault-free run would have produced for them —
/// containment never changes a value, it only removes points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    /// Successful points, in input order.
    pub points: Vec<SweepPoint>,
    /// Failed points, in input order.
    pub failures: Vec<SweepFailure>,
}

impl SweepReport {
    /// True when every point succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Collapses the report to the all-or-nothing [`SweepExecutor::run`]
    /// contract: all points on success, otherwise the lowest-index
    /// failure's error.
    pub fn into_result(self) -> Result<Vec<SweepPoint>, EngineError> {
        match self.failures.into_iter().next() {
            None => Ok(self.points),
            Some(first) => Err(first.error),
        }
    }
}

/// Fans a batch of parameter bindings out across worker threads, and
/// within each worker through the backend's batched evaluation path.
///
/// Every worker queries the same shared [`Backend`]; on the
/// knowledge-compilation backend that means one structural compilation
/// (through the [`ArtifactCache`](crate::ArtifactCache)) and one cheap
/// re-bind per point — the paper's compile-once-bind-many economics applied
/// across both iterations *and* cores. Each worker additionally chunks its
/// slice of the point space into lanes of [`SweepExecutor::batch`] points
/// and evaluates exact expectations through
/// [`Backend::expectation_batch`], amortizing one arithmetic-circuit
/// traversal over the whole lane.
///
/// Work is partitioned by point index and every point's randomness derives
/// only from `(spec.seed, index)`; batched evaluation is bit-for-bit equal
/// to scalar evaluation. The output is therefore byte-identical for any
/// thread count *and* any batch width.
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    threads: usize,
    batch: usize,
    ctx: Option<QueryCtx>,
}

/// The default batch width: a whole number of lane blocks (so the
/// lane-blocked batch kernels sweep no dead remainder lanes), wide enough
/// to amortize per-node dispatch, small enough to keep the blocked weight
/// and value planes cache-resident.
pub const DEFAULT_BATCH: usize = 2 * qkc_knowledge::LANE_WIDTH;

impl Default for SweepExecutor {
    fn default() -> Self {
        Self::new(available_threads())
    }
}

/// The default worker count: the machine's parallelism, capped so sweeps
/// stay polite on shared hosts.
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
        .min(16)
}

impl SweepExecutor {
    /// An executor with an explicit worker-thread count and the default
    /// batch width.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            batch: DEFAULT_BATCH,
            ctx: None,
        }
    }

    /// Attaches a per-call query context (deadline clock + fault plan);
    /// the executor checks the deadline at lane boundaries and consults
    /// the plan's panic schedule per point.
    pub(crate) fn with_ctx(mut self, ctx: Option<QueryCtx>) -> Self {
        self.ctx = ctx;
        self
    }

    /// Sets the batch width: how many sweep points each worker evaluates
    /// per batched backend call. `1` disables batching; results are
    /// identical either way.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Batch width (points per batched backend call).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Runs every binding in `params` against `backend` and returns one
    /// [`SweepPoint`] per binding, in input order.
    ///
    /// # Errors
    ///
    /// The lowest-index point-level failure, if any point fails (all
    /// points run the same circuit structure, so failures are typically
    /// uniform). Use [`SweepExecutor::run_report`] instead to keep the
    /// points that did succeed.
    pub fn run(
        &self,
        backend: &dyn Backend,
        circuit: &Circuit,
        params: &[ParamMap],
        spec: &SweepSpec<'_>,
    ) -> Result<Vec<SweepPoint>, EngineError> {
        self.run_report(backend, circuit, params, spec)
            .and_then(SweepReport::into_result)
    }

    /// Runs every binding in `params` against `backend`, containing
    /// point-level failures instead of aborting: a point whose evaluation
    /// panics is retried once on a fresh call, and a point that still
    /// fails becomes a typed [`SweepFailure`] while every other point's
    /// result is kept (byte-identical to a fault-free run).
    ///
    /// # Errors
    ///
    /// Only sweep-global failures: an exceeded
    /// [`QueryBudget`](crate::QueryBudget) deadline (checked at lane
    /// boundaries) or a panic that escapes point-level containment.
    pub fn run_report(
        &self,
        backend: &dyn Backend,
        circuit: &Circuit,
        params: &[ParamMap],
        spec: &SweepSpec<'_>,
    ) -> Result<SweepReport, EngineError> {
        if params.is_empty() {
            return Ok(SweepReport::default());
        }
        // No warm-up pass is needed before fanning out: concurrent first
        // touches of a compile-once backend serialize on the artifact
        // cache's per-key cell, so exactly one worker compiles and the rest
        // block until the artifact is shared.
        let batch = self.batch;
        let ctx = self.ctx.as_ref();
        // Per-worker accounting exists only while telemetry is on; the
        // disabled path runs the exact uninstrumented closure.
        let run_start = qkc_telemetry::enabled().then(std::time::Instant::now);
        let busy_secs: std::sync::Mutex<Vec<f64>> = std::sync::Mutex::new(Vec::new());
        let outcomes = fan_out_chunks(self.threads, params, |lo, slice| {
            if let Some(start) = run_start {
                // Queue wait: spawn-to-start latency of this worker.
                qkc_telemetry::record_span_secs(
                    "sweep/worker/queue_wait",
                    start.elapsed().as_secs_f64(),
                );
                let busy_start = std::time::Instant::now();
                let r = run_slice(backend, circuit, lo, slice, spec, batch, ctx);
                let busy = busy_start.elapsed().as_secs_f64();
                qkc_telemetry::record_span_secs("sweep/worker/busy", busy);
                busy_secs.lock().expect("busy log poisoned").push(busy);
                r
            } else {
                run_slice(backend, circuit, lo, slice, spec, batch, ctx)
            }
        });
        if let Some(start) = run_start {
            let wall = start.elapsed().as_secs_f64();
            qkc_telemetry::record_span_secs("sweep/run", wall);
            qkc_telemetry::count("sweep/points", params.len() as u64);
            // Idle = this sweep's wall time minus the worker's busy time:
            // time the worker spent waiting on spawn, skew, or joins.
            for &busy in busy_secs.lock().expect("busy log poisoned").iter() {
                qkc_telemetry::record_span_secs("sweep/worker/idle", (wall - busy).max(0.0));
            }
        }
        let mut report = SweepReport::default();
        for outcome in outcomes? {
            match outcome {
                PointOutcome::Done(point) => report.points.push(point),
                PointOutcome::Failed(failure) => report.failures.push(failure),
            }
        }
        Ok(report)
    }
}

/// One point's contained outcome inside a worker slice: the slice keeps
/// going either way, and the report partitions these afterwards.
enum PointOutcome {
    Done(SweepPoint),
    Failed(SweepFailure),
}

/// Fans `items` out across up to `threads` scoped workers in contiguous
/// chunks and concatenates the per-chunk results in input order; the
/// first failing chunk's error (itself the chunk's first item-level
/// error) wins, preserving input-order error semantics. Shared by the
/// sweep executor and the engine's gradient sweeps.
///
/// A panicking worker does **not** take the process down: its panic is
/// caught at join, converted into [`EngineError::WorkerPanicked`] for the
/// affected chunk of points, and every other worker still runs to
/// completion (their results are simply superseded by the input-order
/// error). The single-threaded path behaves identically by catching
/// unwinds around the direct call.
pub(crate) fn fan_out_chunks<I, T, F>(
    threads: usize,
    items: &[I],
    f: F,
) -> Result<Vec<T>, EngineError>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &[I]) -> Result<Vec<T>, EngineError> + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0, items)))
            .unwrap_or_else(|payload| Err(worker_panic_error(payload)));
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Result<Vec<T>, EngineError>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for (t, slice) in items.chunks(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move |_| f(t * chunk, slice)));
        }
        for h in handles {
            out.push(h.join().unwrap_or_else(|payload| {
                // The worker panicked: report its chunk of points as an
                // engine error instead of propagating the unwind into the
                // caller's thread (and killing the remaining results).
                Err(worker_panic_error(payload))
            }));
        }
    })
    .expect("scope panicked");
    let mut results = Vec::with_capacity(items.len());
    for chunk_result in out {
        results.extend(chunk_result?);
    }
    Ok(results)
}

/// Converts a caught panic payload into [`EngineError::WorkerPanicked`],
/// preserving string payloads (the overwhelmingly common `panic!`/
/// `assert!` case).
fn worker_panic_error(payload: Box<dyn std::any::Any + Send>) -> EngineError {
    let detail = payload
        .downcast_ref::<&str>()
        .map(std::string::ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    EngineError::WorkerPanicked { detail }
}

/// Evaluates one worker's contiguous slice of the point space, in lanes of
/// `batch` points. Each lane tries one batched exact-expectation call;
/// when the backend cannot answer exactly (`Unsupported`) — or the
/// batched call panics or errors, so the blast radius must shrink to the
/// actually-faulty point — every point of the lane falls back to the
/// scalar [`run_point`] path, which resolves sampling and error semantics
/// per point. Point-level failures are contained into [`PointOutcome`]s;
/// only a deadline expiry (checked once per lane) aborts the slice.
fn run_slice(
    backend: &dyn Backend,
    circuit: &Circuit,
    lo: usize,
    slice: &[ParamMap],
    spec: &SweepSpec<'_>,
    batch: usize,
    ctx: Option<&QueryCtx>,
) -> Result<Vec<PointOutcome>, EngineError> {
    let plan = ctx.and_then(QueryCtx::faults).filter(|p| !p.is_noop());
    let mut out = Vec::with_capacity(slice.len());
    for (lane_index, lane) in slice.chunks(batch.max(1)).enumerate() {
        if let Some(c) = ctx {
            // Cooperative cancellation boundary: one clock read per lane.
            c.check_deadline()?;
        }
        // One relaxed load when telemetry is off; a lane-latency histogram
        // sample when on.
        let _lane_span = qkc_telemetry::span("sweep/worker/chunk");
        let base = lo + lane_index * batch.max(1);
        let lane_has_panic_point =
            plan.is_some_and(|p| (0..lane.len()).any(|j| p.panics_at((base + j) as u64, 0)));
        let batched: Option<Vec<f64>> = match spec.observable {
            // A lane containing a scheduled panic point skips the batched
            // call entirely: its fault must fire inside the per-point
            // containment, not tear the whole lane's evaluation.
            Some(obs) if lane.len() > 1 && !lane_has_panic_point => {
                match catch_unwind(AssertUnwindSafe(|| {
                    backend.expectation_batch(circuit, lane, obs)
                })) {
                    Ok(Ok(values)) => Some(values),
                    // Exact batched evaluation is unsupported: the scalar
                    // path repeats the (cheap) discovery per point and
                    // applies the shots/sampling fallback rules there.
                    Ok(Err(EngineError::Unsupported { .. })) => None,
                    // The deadline expired inside the backend: that is a
                    // sweep-global stop, not a per-point fault.
                    Ok(Err(e @ EngineError::DeadlineExceeded { .. })) => return Err(e),
                    // Any other batched error (or panic): retry the lane
                    // point by point, so healthy points still succeed —
                    // bit-identically, by the batched-kernel contract —
                    // and only the faulty ones are reported failed.
                    Ok(Err(_)) | Err(_) => None,
                }
            }
            _ => None,
        };
        for (j, p) in lane.iter().enumerate() {
            let index = base + j;
            let batched_value = batched.as_ref().map(|values| values[j]);
            out.push(eval_point(
                backend,
                circuit,
                index,
                p,
                spec,
                batched_value,
                plan,
            )?);
        }
    }
    Ok(out)
}

/// Evaluates one sweep point with failure containment: a panic (injected
/// via the [`FaultPlan`] panic schedule or genuine) is caught, the point
/// is retried once on a fresh scalar evaluation, and a second failure
/// becomes a typed [`SweepFailure`]. Typed backend errors fail the point
/// immediately (retrying a deterministic error cannot help). Only a
/// deadline expiry escapes as `Err` and stops the sweep.
fn eval_point(
    backend: &dyn Backend,
    circuit: &Circuit,
    index: usize,
    params: &ParamMap,
    spec: &SweepSpec<'_>,
    batched_value: Option<f64>,
    plan: Option<&FaultPlan>,
) -> Result<PointOutcome, EngineError> {
    for attempt in 0u32..=1 {
        // The retry always re-derives the point through the scalar path —
        // a fresh evaluation that owes nothing to the lane state the
        // first attempt died in. Bit-identical either way: batched
        // kernels and the scalar path agree to the last ulp by contract.
        let from_lane = batched_value.filter(|_| attempt == 0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = plan {
                if plan.panics_at(index as u64, attempt) {
                    qkc_telemetry::count(FaultSite::WorkerPanic.telemetry_path(), 1);
                    panic!(
                        "fault injection: worker panic at sweep point {index} (attempt {attempt})"
                    );
                }
            }
            match from_lane {
                Some(expectation) => {
                    let samples = if spec.keep_samples {
                        backend.sample(
                            circuit,
                            params,
                            spec.shots,
                            mix_seed(spec.seed, index as u64),
                        )?
                    } else {
                        Vec::new()
                    };
                    Ok(SweepPoint {
                        index,
                        expectation: Some(expectation),
                        exact: true,
                        samples,
                    })
                }
                None => run_point(backend, circuit, index, params, spec),
            }
        }));
        match result {
            Ok(Ok(point)) => return Ok(PointOutcome::Done(point)),
            Ok(Err(e @ EngineError::DeadlineExceeded { .. })) => return Err(e),
            Ok(Err(error)) => return Ok(PointOutcome::Failed(SweepFailure { index, error })),
            Err(payload) => {
                if attempt == 0 {
                    qkc_telemetry::count("sweep/point_retry", 1);
                    continue;
                }
                return Ok(PointOutcome::Failed(SweepFailure {
                    index,
                    error: worker_panic_error(payload),
                }));
            }
        }
    }
    unreachable!("the attempt loop always returns")
}

/// Evaluates one sweep point: exact expectation when the backend can,
/// sampled estimate (and/or raw samples) otherwise.
fn run_point(
    backend: &dyn Backend,
    circuit: &Circuit,
    index: usize,
    params: &ParamMap,
    spec: &SweepSpec<'_>,
) -> Result<SweepPoint, EngineError> {
    let point_seed = mix_seed(spec.seed, index as u64);
    let mut samples = Vec::new();
    let mut expectation = None;
    let mut exact = false;

    if let Some(obs) = spec.observable {
        match backend.probabilities(circuit, params) {
            Ok(probs) => {
                expectation = Some(
                    probs
                        .iter()
                        .enumerate()
                        .map(|(bits, &p)| p * obs(bits))
                        .sum(),
                );
                exact = true;
            }
            // Exact is unsupported here: fall through to a sampled
            // estimate — unless sampling was disabled (shots = 0), where
            // swallowing the error would leave the expectation silently
            // absent.
            Err(e @ EngineError::Unsupported { .. }) => {
                if spec.shots == 0 {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }

    let need_samples_for_expectation =
        spec.observable.is_some() && expectation.is_none() && spec.shots > 0;
    if spec.keep_samples || need_samples_for_expectation {
        samples = backend.sample(circuit, params, spec.shots, point_seed)?;
        if need_samples_for_expectation {
            // An empty draw has no estimate: erroring beats the old
            // `len().max(1)` division, which silently reported `Some(0.0)`.
            if samples.is_empty() {
                return Err(EngineError::NoSamples {
                    backend: backend.kind(),
                });
            }
            let obs = spec.observable.expect("checked above");
            expectation = Some(samples.iter().map(|&s| obs(s)).sum::<f64>() / samples.len() as f64);
        }
        if !spec.keep_samples {
            samples = Vec::new();
        }
    }

    Ok(SweepPoint {
        index,
        expectation,
        exact,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{KcBackend, StateVectorBackend};
    use crate::ArtifactCache;
    use qkc_circuit::{Circuit, Param};
    use qkc_core::KcOptions;
    use std::sync::Arc;

    fn rx_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("t")).cnot(0, 1);
        c
    }

    fn sweep_params(n: usize) -> Vec<ParamMap> {
        (0..n)
            .map(|i| ParamMap::from_pairs([("t", 0.2 + 0.1 * i as f64)]))
            .collect()
    }

    #[test]
    fn exact_expectations_match_the_closed_form() {
        let cache = Arc::new(ArtifactCache::new());
        let backend = KcBackend::new(cache.clone(), KcOptions::default());
        // P(|11>) = sin^2(t/2); observable = indicator of |11>.
        let obs = |bits: usize| if bits == 0b11 { 1.0 } else { 0.0 };
        let points = SweepExecutor::new(4)
            .run(
                &backend,
                &rx_circuit(),
                &sweep_params(9),
                &SweepSpec::expectation(&obs),
            )
            .unwrap();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
            assert!(p.exact);
            let t = 0.2 + 0.1 * i as f64;
            let want = (t / 2.0).sin().powi(2);
            assert!((p.expectation.unwrap() - want).abs() < 1e-9);
        }
        assert_eq!(cache.misses(), 1, "whole sweep compiles once");
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let obs = |bits: usize| bits as f64;
        let mut noisy = rx_circuit();
        noisy.depolarize(0, 0.02);
        for backend in [true, false] {
            let cache = Arc::new(ArtifactCache::new());
            let kc;
            let sv;
            let b: &dyn Backend = if backend {
                kc = KcBackend::new(cache, KcOptions::default());
                &kc
            } else {
                sv = StateVectorBackend::new(1);
                &sv
            };
            let spec = SweepSpec {
                shots: 256,
                observable: Some(&obs),
                keep_samples: true,
                seed: 77,
            };
            let base = SweepExecutor::new(1)
                .run(b, &noisy, &sweep_params(7), &spec)
                .unwrap();
            for threads in [2, 3, 8] {
                let got = SweepExecutor::new(threads)
                    .run(b, &noisy, &sweep_params(7), &spec)
                    .unwrap();
                assert_eq!(base, got, "thread count must not change results");
            }
        }
    }

    #[test]
    fn results_are_identical_across_batch_widths() {
        // The acceptance contract of the batched kernel: chunking the
        // point space into lanes of k must not change a single bit of the
        // output, for any k and thread count, exact or sampled, pure or
        // noisy.
        let obs = |bits: usize| bits as f64 - 0.25;
        let pure = rx_circuit();
        let mut noisy = rx_circuit();
        noisy.depolarize(0, 0.02);
        for circuit in [&pure, &noisy] {
            let cache = Arc::new(ArtifactCache::new());
            let backend = KcBackend::new(cache, KcOptions::default());
            let spec = SweepSpec {
                shots: 64,
                observable: Some(&obs),
                keep_samples: true,
                seed: 5,
            };
            let base = SweepExecutor::new(1)
                .with_batch(1)
                .run(&backend, circuit, &sweep_params(10), &spec)
                .unwrap();
            assert!(base.iter().all(|p| p.exact));
            for threads in [1usize, 2, 3] {
                for batch in [1usize, 3, 8] {
                    let got = SweepExecutor::new(threads)
                        .with_batch(batch)
                        .run(&backend, circuit, &sweep_params(10), &spec)
                        .unwrap();
                    assert_eq!(
                        base, got,
                        "threads={threads} batch={batch} changed the sweep"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_fallback_matches_scalar_on_sampling_backends() {
        // State-vector cannot answer exact noisy expectations: the batched
        // lane falls back to per-point sampling, which must stay identical
        // across batch widths because seeds derive from (seed, index).
        let mut noisy = rx_circuit();
        noisy.depolarize(0, 0.03);
        let obs = |bits: usize| bits as f64;
        let spec = SweepSpec {
            shots: 128,
            observable: Some(&obs),
            keep_samples: true,
            seed: 11,
        };
        let backend = StateVectorBackend::new(1);
        let base = SweepExecutor::new(1)
            .with_batch(1)
            .run(&backend, &noisy, &sweep_params(7), &spec)
            .unwrap();
        assert!(base.iter().all(|p| !p.exact));
        for batch in [3usize, 8] {
            let got = SweepExecutor::new(2)
                .with_batch(batch)
                .run(&backend, &noisy, &sweep_params(7), &spec)
                .unwrap();
            assert_eq!(base, got, "batch={batch} changed the sampled sweep");
        }
    }

    /// A deliberately misbehaving backend for the failure-containment
    /// tests: panics on bindings whose `"t"` value matches `panic_on`, and
    /// optionally returns zero samples regardless of the shot count.
    struct FaultyBackend {
        panic_on: Option<f64>,
        empty_samples: bool,
    }

    impl Backend for FaultyBackend {
        fn kind(&self) -> crate::BackendKind {
            crate::BackendKind::StateVector
        }

        fn capabilities(&self) -> crate::Capabilities {
            crate::Capabilities {
                exact_pure: false,
                exact_noisy: false,
                sample_noisy: true,
                compile_once: false,
            }
        }

        fn probabilities(
            &self,
            _circuit: &Circuit,
            params: &ParamMap,
        ) -> Result<Vec<f64>, EngineError> {
            if let Some(bad) = self.panic_on {
                if params.get("t") == Some(bad) {
                    panic!("injected backend panic at t={bad}");
                }
            }
            Err(EngineError::Unsupported {
                backend: self.kind(),
                query: "exact probabilities".into(),
            })
        }

        fn sample(
            &self,
            _circuit: &Circuit,
            params: &ParamMap,
            shots: usize,
            _seed: u64,
        ) -> Result<Vec<usize>, EngineError> {
            if let Some(bad) = self.panic_on {
                if params.get("t") == Some(bad) {
                    panic!("injected backend panic at t={bad}");
                }
            }
            if self.empty_samples {
                return Ok(Vec::new());
            }
            Ok(vec![0; shots])
        }
    }

    #[test]
    fn worker_panic_becomes_an_engine_error_not_a_process_abort() {
        // Regression: a panicking sweep worker used to unwind through
        // `join().expect(...)` and take the whole process down. It must
        // instead surface as `WorkerPanicked` for the affected points
        // while the other workers' chunks still run to completion.
        let backend = FaultyBackend {
            // The exact float of params index 3 of sweep_params(8).
            panic_on: Some(0.2 + 0.1 * 3.0),
            empty_samples: false,
        };
        let obs = |bits: usize| bits as f64;
        let spec = SweepSpec {
            shots: 16,
            observable: Some(&obs),
            keep_samples: false,
            seed: 1,
        };
        for threads in [1usize, 4] {
            let result = SweepExecutor::new(threads).with_batch(1).run(
                &backend,
                &rx_circuit(),
                &sweep_params(8),
                &spec,
            );
            match result {
                Err(EngineError::WorkerPanicked { detail }) => {
                    assert!(
                        detail.contains("injected backend panic"),
                        "panic payload preserved: {detail}"
                    );
                }
                other => panic!("threads={threads}: expected WorkerPanicked, got {other:?}"),
            }
        }
        // Healthy points on the same backend still sweep fine.
        let healthy = SweepExecutor::new(4)
            .run(&backend, &rx_circuit(), &sweep_params(3), &spec)
            .expect("panic-free points succeed");
        assert_eq!(healthy.len(), 3);
    }

    #[test]
    fn run_report_keeps_healthy_points_and_types_the_failures() {
        // Per-point containment: the panicking point becomes a typed
        // failure, every other point's result survives.
        let backend = FaultyBackend {
            panic_on: Some(0.2 + 0.1 * 3.0),
            empty_samples: false,
        };
        let obs = |bits: usize| bits as f64;
        let spec = SweepSpec {
            shots: 16,
            observable: Some(&obs),
            keep_samples: false,
            seed: 1,
        };
        for threads in [1usize, 4] {
            let report = SweepExecutor::new(threads)
                .with_batch(1)
                .run_report(&backend, &rx_circuit(), &sweep_params(8), &spec)
                .unwrap();
            assert_eq!(report.failures.len(), 1, "threads={threads}");
            assert_eq!(report.failures[0].index, 3);
            assert!(matches!(
                report.failures[0].error,
                EngineError::WorkerPanicked { .. }
            ));
            let indices: Vec<usize> = report.points.iter().map(|p| p.index).collect();
            assert_eq!(indices, vec![0, 1, 2, 4, 5, 6, 7]);
            assert!(!report.is_complete());
        }
    }

    #[test]
    fn injected_panic_is_recovered_by_the_single_retry() {
        use crate::budget::QueryCtx;
        use crate::faults::FaultPlan;
        use crate::QueryBudget;

        let cache = Arc::new(ArtifactCache::new());
        let backend = KcBackend::new(cache, KcOptions::default());
        let obs = |bits: usize| if bits == 0b11 { 1.0 } else { 0.0 };
        let spec = SweepSpec::expectation(&obs);
        let clean = SweepExecutor::new(2)
            .run_report(&backend, &rx_circuit(), &sweep_params(6), &spec)
            .unwrap();
        assert!(clean.is_complete());

        // Default schedule panics on the first attempt only: the retry
        // recovers every point, byte-identically.
        let plan = FaultPlan::seeded(3).with_panic_at([1, 4]);
        let recovered = SweepExecutor::new(2)
            .with_ctx(Some(QueryCtx::new(QueryBudget::unlimited(), Some(plan))))
            .run_report(&backend, &rx_circuit(), &sweep_params(6), &spec)
            .unwrap();
        assert_eq!(clean, recovered, "retry must reproduce fault-free bytes");

        // Panicking on every attempt defeats the retry: those two points
        // become typed failures, the rest still match the clean run.
        let plan = FaultPlan::seeded(3)
            .with_panic_at([1, 4])
            .with_panic_every_attempt(true);
        let partial = SweepExecutor::new(2)
            .with_ctx(Some(QueryCtx::new(QueryBudget::unlimited(), Some(plan))))
            .run_report(&backend, &rx_circuit(), &sweep_params(6), &spec)
            .unwrap();
        let failed: Vec<usize> = partial.failures.iter().map(|f| f.index).collect();
        assert_eq!(failed, vec![1, 4]);
        for point in &partial.points {
            assert_eq!(
                Some(point),
                clean.points.iter().find(|p| p.index == point.index),
                "contained faults must not perturb surviving points"
            );
        }
    }

    #[test]
    fn expired_deadline_stops_the_sweep_with_a_typed_error() {
        use crate::budget::QueryCtx;
        use crate::QueryBudget;
        use std::time::Duration;

        let cache = Arc::new(ArtifactCache::new());
        let backend = KcBackend::new(cache, KcOptions::default());
        let obs = |bits: usize| bits as f64;
        let spec = SweepSpec::expectation(&obs);
        let ctx = QueryCtx::new(QueryBudget::unlimited().with_deadline(Duration::ZERO), None);
        std::thread::sleep(Duration::from_millis(1));
        let result = SweepExecutor::new(2).with_ctx(Some(ctx)).run_report(
            &backend,
            &rx_circuit(),
            &sweep_params(5),
            &spec,
        );
        assert!(
            matches!(result, Err(EngineError::DeadlineExceeded { .. })),
            "got {result:?}"
        );
    }

    #[test]
    fn zero_samples_is_an_error_not_a_zero_expectation() {
        // Regression: the sampled-estimate path divided by
        // `samples.len().max(1)`, silently reporting `Some(0.0)` when a
        // backend produced no samples.
        let backend = FaultyBackend {
            panic_on: None,
            empty_samples: true,
        };
        let obs = |bits: usize| bits as f64 + 1.0;
        let spec = SweepSpec {
            shots: 64,
            observable: Some(&obs),
            keep_samples: false,
            seed: 2,
        };
        let result = SweepExecutor::new(1).run(&backend, &rx_circuit(), &sweep_params(2), &spec);
        assert!(
            matches!(result, Err(EngineError::NoSamples { .. })),
            "got {result:?}"
        );
    }

    #[test]
    fn zero_shot_sweeps_error_when_exact_is_unsupported() {
        // shots = 0 with an observable on a sampling-only backend has no
        // way to produce an expectation: the error must surface instead of
        // a silently absent (or zero) value.
        let mut noisy = rx_circuit();
        noisy.depolarize(0, 0.02);
        let obs = |bits: usize| bits as f64;
        let spec = SweepSpec {
            shots: 0,
            observable: Some(&obs),
            keep_samples: false,
            seed: 3,
        };
        let backend = StateVectorBackend::new(1);
        let result = SweepExecutor::new(2).run(&backend, &noisy, &sweep_params(4), &spec);
        assert!(
            matches!(result, Err(EngineError::Unsupported { .. })),
            "got {result:?}"
        );
    }

    #[test]
    fn empty_sweep_is_empty() {
        let backend = StateVectorBackend::new(1);
        let points = SweepExecutor::new(4)
            .run(&backend, &rx_circuit(), &[], &SweepSpec::samples(16))
            .unwrap();
        assert!(points.is_empty());
    }

    #[test]
    fn sampled_estimates_are_used_when_exact_is_unsupported() {
        // State-vector backend cannot do exact noisy probabilities; the
        // executor falls back to trajectory sampling.
        let mut noisy = rx_circuit();
        noisy.depolarize(0, 0.01);
        let obs = |bits: usize| if bits == 0b11 { 1.0 } else { 0.0 };
        let spec = SweepSpec {
            shots: 4000,
            observable: Some(&obs),
            keep_samples: false,
            seed: 3,
        };
        let backend = StateVectorBackend::new(1);
        let points = SweepExecutor::new(2)
            .run(&backend, &noisy, &sweep_params(3), &spec)
            .unwrap();
        for (i, p) in points.iter().enumerate() {
            assert!(!p.exact);
            let t = 0.2 + 0.1 * i as f64;
            let want = (t / 2.0).sin().powi(2);
            assert!(
                (p.expectation.unwrap() - want).abs() < 0.05,
                "point {i}: {} vs {want}",
                p.expectation.unwrap()
            );
        }
    }
}
