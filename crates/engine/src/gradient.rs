//! Engine-level gradient queries: exact parameter-shift on the compiled
//! artifact, finite differences everywhere else.
//!
//! A variational objective `E(θ) = ⟨obs⟩_{circuit(θ)}` restricted to one
//! rotation-like gate parameter is a low-degree trigonometric polynomial,
//! so its derivative is an *exact* linear combination of shifted objective
//! values — no step-size error, no cancellation (the parameter-shift rule).
//! When a symbol appears in `m` gates the polynomial degree grows to `m`
//! and the classic `θ ± π/2` two-point rule generalizes to `2m` shifted
//! evaluations (the general parameter-shift rule); this module computes
//! those shift offsets and coefficients per symbol by scanning the circuit,
//! so shared symbols — QAOA's one `gamma` across every edge, VQE's one
//! entangler angle per layer — still get exact gradients.
//!
//! On the knowledge-compilation backend every shifted binding is a lane of
//! **one batched bind** against the cached artifact: the whole gradient is
//! one compile (amortized across the optimization run by the artifact
//! cache), one batched bind, and one Gray-ordered basis sweep whose
//! delta-aware batch kernel decodes each dirty tape slot once for all
//! lanes. Backends without a shift structure fall back to central finite
//! differences behind the same API, flagged [`GradientResult::exact`] `=
//! false`.

use qkc_circuit::{Circuit, Gate, Operation, ParamMap};

/// Step used by the central-finite-difference fallback (non-shiftable
/// symbols and non-compiled backends). Small enough that the `O(h²)`
/// truncation error sits well below optimizer tolerances, large enough
/// that exact-expectation differences do not cancel catastrophically.
pub const FD_STEP: f64 = 1e-6;

/// How a gradient query was evaluated — the primary mechanism behind the
/// whole result (individual components of a [`ParameterShift`]
/// (GradientMethod::ParameterShift) query may still be finite differences;
/// [`GradientResult::exact`] records that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GradientMethod {
    /// One-pass analytic differentiation through the compiled tape:
    /// symbolic weight tangents are chain-ruled against the AC's
    /// per-literal partials, so every parameter's derivative comes from a
    /// single differentials pass per evidence assignment — O(1) tape
    /// evaluations regardless of parameter count. Always exact.
    Analytic,
    /// The parameter-shift rule: shifted bindings evaluated as lanes of one
    /// batched bind. Exact for gate symbols; noise-symbol components fall
    /// back to finite differences within the same query.
    ParameterShift,
    /// Central finite differences throughout (non-compiled backends).
    FiniteDifference,
}

impl GradientMethod {
    /// The static telemetry counter path of this method.
    pub(crate) fn counter_path(self) -> &'static str {
        match self {
            GradientMethod::Analytic => "gradient/method/analytic",
            GradientMethod::ParameterShift => "gradient/method/shift",
            GradientMethod::FiniteDifference => "gradient/method/fd",
        }
    }
}

impl std::fmt::Display for GradientMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GradientMethod::Analytic => "analytic",
            GradientMethod::ParameterShift => "shift",
            GradientMethod::FiniteDifference => "fd",
        })
    }
}

/// The value and gradient of one expectation query.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientResult {
    /// The objective value at the unshifted binding.
    pub value: f64,
    /// `∂⟨obs⟩/∂symbol` per differentiation target, in `wrt` order.
    pub gradient: Vec<f64>,
    /// Whether every component is exact: analytic differentiation, or the
    /// exact parameter-shift rule over exact expectations (`false` when
    /// any component used the finite-difference fallback).
    pub exact: bool,
    /// Expectation evaluations consumed: 1 for the analytic path
    /// (independent of parameter count), the unshifted value plus every
    /// shifted lane otherwise.
    pub evaluations: usize,
    /// The mechanism that produced this result.
    pub method: GradientMethod,
}

/// What a gradient sweep should compute for every parameter point.
pub struct GradientSpec<'a> {
    /// Diagonal observable whose expectation is differentiated.
    pub observable: &'a (dyn Fn(usize) -> f64 + Sync),
    /// Differentiation targets; `None` differentiates with respect to
    /// every symbol in the circuit, in sorted order.
    pub wrt: Option<Vec<String>>,
}

impl<'a> GradientSpec<'a> {
    /// A spec differentiating with respect to every circuit symbol.
    pub fn new(observable: &'a (dyn Fn(usize) -> f64 + Sync)) -> Self {
        Self {
            observable,
            wrt: None,
        }
    }

    /// Restricts differentiation to the given symbols.
    pub fn with_wrt(mut self, wrt: impl IntoIterator<Item = String>) -> Self {
        self.wrt = Some(wrt.into_iter().collect());
        self
    }
}

/// One point of a gradient sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientPoint {
    /// Position in the input parameter batch.
    pub index: usize,
    /// The objective value at this binding.
    pub value: f64,
    /// The gradient at this binding (spec `wrt` order).
    pub gradient: Vec<f64>,
    /// Whether value and gradient are exact (see [`GradientResult::exact`]).
    pub exact: bool,
    /// The mechanism that produced this point (see
    /// [`GradientResult::method`]).
    pub method: GradientMethod,
}

/// How one symbol's gradient component is evaluated.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SymbolRule {
    /// Exact parameter shift: evaluate `E(θ ± offset)` for every
    /// `(offset, coeff)` term and accumulate
    /// `Σ coeff · (E(θ+offset) − E(θ−offset))`.
    Shift(Vec<(f64, f64)>),
    /// Central finite difference with [`FD_STEP`] over an unbounded
    /// domain (rotation angles on non-compiled backends).
    CentralDiff,
    /// Central finite difference over the `[0, 1]` probability domain
    /// (symbols that parameterize noise channels, where the dependence is
    /// not trigonometric): probe points are clamped into the domain so a
    /// boundary binding (`p = 0` or `p = 1`) degrades to a one-sided
    /// difference instead of evaluating an invalid probability.
    CentralDiffProbability,
    /// The symbol does not appear in the circuit: the component is 0.
    Absent,
}

/// The contraction recipe of one gradient component, built alongside its
/// lanes: `pair_coeffs[j]` multiplies the difference of the `j`-th
/// `(plus, minus)` lane pair. Empty for absent symbols (component 0).
#[derive(Debug)]
pub(crate) struct ComponentPlan {
    pair_coeffs: Vec<f64>,
    exact: bool,
}

/// The exact shift rule for a trigonometric polynomial with integer
/// frequencies `≤ order`, as symmetric `±` pairs:
/// `E'(θ) = Σ_μ c_μ · (E(θ + x_μ) − E(θ − x_μ))` with
/// `x_μ = (2μ−1)π/(2·order)` and
/// `c_μ = (−1)^{μ+1} / (4·order·sin²(x_μ/2))` (the general parameter-shift
/// rule; for `order = 1` this is the classic
/// `[E(θ+π/2) − E(θ−π/2)] / 2`).
pub(crate) fn shift_rule(order: usize) -> Vec<(f64, f64)> {
    let r = order as f64;
    (1..=order)
        .map(|mu| {
            let x = (2 * mu - 1) as f64 * std::f64::consts::PI / (2.0 * r);
            let sign = if mu % 2 == 1 { 1.0 } else { -1.0 };
            let c = sign / (4.0 * r * (x / 2.0).sin().powi(2));
            (x, c)
        })
        .collect()
}

/// The shift rule for half-integer frequency steps (controlled rotations):
/// an integer-frequency polynomial of degree `≤ 2·order` in `u = θ/2`, so
/// the `u`-space rule applies with doubled offsets and halved
/// coefficients.
pub(crate) fn shift_rule_half_frequencies(order: usize) -> Vec<(f64, f64)> {
    shift_rule(2 * order)
        .into_iter()
        .map(|(x, c)| (2.0 * x, 0.5 * c))
        .collect()
}

/// The circuit-level classification of one differentiation target — the
/// cheap scan shared by the exact and finite-difference paths (the latter
/// needs only this, not the shift-rule coefficients).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SymbolClass {
    /// Not mentioned by the circuit.
    Absent,
    /// Parameterizes at least one noise channel (probability domain, not
    /// trigonometric).
    Noise,
    /// Mentioned only by gates: `occurrences` rotation-like gates, with
    /// `half_frequencies` when any is a controlled rotation.
    Gates {
        /// Gate occurrences (one unit of trigonometric degree each).
        occurrences: usize,
        /// Whether a `CRz` occurrence introduces half-integer frequencies.
        half_frequencies: bool,
    },
}

/// Classifies every `wrt` symbol with one scan of the circuit.
pub(crate) fn symbol_classes(circuit: &Circuit, wrt: &[String]) -> Vec<SymbolClass> {
    wrt.iter()
        .map(|symbol| {
            let mut occurrences = 0usize;
            let mut half_frequencies = false;
            let mut in_noise = false;
            for op in circuit.operations() {
                match op {
                    Operation::Gate { gate, .. } if gate.symbols().contains(&symbol.as_str()) => {
                        occurrences += 1;
                        if matches!(gate, Gate::CRz(_)) {
                            half_frequencies = true;
                        }
                    }
                    Operation::Noise { channel, .. }
                        if channel.symbols().contains(&symbol.as_str()) =>
                    {
                        in_noise = true;
                    }
                    _ => {}
                }
            }
            if in_noise {
                SymbolClass::Noise
            } else if occurrences == 0 {
                SymbolClass::Absent
            } else {
                SymbolClass::Gates {
                    occurrences,
                    half_frequencies,
                }
            }
        })
        .collect()
}

/// Builds the per-symbol evaluation rule: exact shift rules for gate
/// symbols (order = occurrence count; the doubled-offset rule when
/// controlled rotations introduce half-integer frequencies), the
/// probability-domain finite-difference fallback for noise symbols (noise
/// weights are polynomial — often `√p` — in the symbol, not
/// trigonometric, so no finite shift rule exists).
#[cfg(test)]
pub(crate) fn symbol_rules(circuit: &Circuit, wrt: &[String]) -> Vec<SymbolRule> {
    rules_from_classes(&symbol_classes(circuit, wrt))
}

/// The rule-building half of [`symbol_rules`], split out so callers that
/// cache the classification (the KC backend keys it by circuit structural
/// hash across sweep points) can skip the circuit scan.
pub(crate) fn rules_from_classes(classes: &[SymbolClass]) -> Vec<SymbolRule> {
    classes
        .iter()
        .map(|class| match class {
            SymbolClass::Noise => SymbolRule::CentralDiffProbability,
            SymbolClass::Absent => SymbolRule::Absent,
            SymbolClass::Gates {
                occurrences,
                half_frequencies: true,
            } => SymbolRule::Shift(shift_rule_half_frequencies(*occurrences)),
            SymbolClass::Gates { occurrences, .. } => SymbolRule::Shift(shift_rule(*occurrences)),
        })
        .collect()
}

/// The differentiation targets a `None` spec resolves to: every circuit
/// symbol, sorted.
pub(crate) fn default_wrt(circuit: &Circuit) -> Vec<String> {
    circuit.symbols().into_iter().collect()
}

/// Builds the shifted bindings of a gradient query and the matching
/// per-symbol contraction plans: lane 0 is `params` unshifted, followed
/// per symbol by its `(plus, minus)` lane pairs (parameter-shift offsets,
/// or the [`FD_STEP`] probe — clamped into `[0, 1]` for noise-probability
/// symbols, with the plan's coefficient carrying the actual probe
/// spread). Returns the name of the first `wrt` symbol the circuit
/// mentions that `params` leaves unbound.
pub(crate) fn shifted_bindings(
    params: &ParamMap,
    wrt: &[String],
    rules: &[SymbolRule],
) -> Result<(Vec<ParamMap>, Vec<ComponentPlan>), String> {
    let mut lanes = vec![params.clone()];
    let mut plans = Vec::with_capacity(rules.len());
    for (symbol, rule) in wrt.iter().zip(rules) {
        if matches!(rule, SymbolRule::Absent) {
            plans.push(ComponentPlan {
                pair_coeffs: Vec::new(),
                exact: true,
            });
            continue;
        }
        let base = params.get(symbol).ok_or_else(|| symbol.clone())?;
        let mut push_pair = |hi: f64, lo: f64| {
            for v in [hi, lo] {
                let mut shifted = params.clone();
                shifted.bind(symbol, v);
                lanes.push(shifted);
            }
        };
        let plan = match rule {
            SymbolRule::Shift(terms) => {
                for &(x, _) in terms {
                    push_pair(base + x, base - x);
                }
                ComponentPlan {
                    pair_coeffs: terms.iter().map(|&(_, c)| c).collect(),
                    exact: true,
                }
            }
            SymbolRule::CentralDiff => {
                let (hi, lo) = (base + FD_STEP, base - FD_STEP);
                push_pair(hi, lo);
                ComponentPlan {
                    pair_coeffs: vec![1.0 / (hi - lo)],
                    exact: false,
                }
            }
            SymbolRule::CentralDiffProbability => {
                // Clamp the probes into the probability domain: at a
                // boundary binding this becomes a one-sided difference
                // over the actual (smaller) spread.
                let hi = (base + FD_STEP).min(1.0);
                let lo = (base - FD_STEP).max(0.0);
                push_pair(hi, lo);
                ComponentPlan {
                    pair_coeffs: vec![if hi > lo { 1.0 / (hi - lo) } else { 0.0 }],
                    exact: false,
                }
            }
            SymbolRule::Absent => unreachable!("handled above"),
        };
        plans.push(plan);
    }
    Ok((lanes, plans))
}

/// Contracts the shifted lane values back into a gradient: lane 0 is the
/// unshifted value; each symbol consumes its plan's `(plus, minus)` pairs
/// in order.
pub(crate) fn contract_gradient(values: &[f64], plans: &[ComponentPlan]) -> (f64, Vec<f64>, bool) {
    let value = values[0];
    let mut cursor = 1usize;
    let mut exact = true;
    let gradient = plans
        .iter()
        .map(|plan| {
            exact &= plan.exact;
            let mut g = 0.0;
            for &c in &plan.pair_coeffs {
                g += c * (values[cursor] - values[cursor + 1]);
                cursor += 2;
            }
            g
        })
        .collect();
    (value, gradient, exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::Param;

    /// Evaluates a synthetic trig polynomial and its analytic derivative.
    fn trig_poly(theta: f64, coeffs: &[(f64, f64)]) -> (f64, f64) {
        let mut v = 0.7;
        let mut d = 0.0;
        for (k, &(a, b)) in coeffs.iter().enumerate() {
            let f = (k + 1) as f64;
            v += a * (f * theta).cos() + b * (f * theta).sin();
            d += -a * f * (f * theta).sin() + b * f * (f * theta).cos();
        }
        (v, d)
    }

    #[test]
    fn shift_rule_is_exact_on_trig_polynomials() {
        // The order-m rule must reproduce the analytic derivative of any
        // integer-frequency polynomial of degree ≤ m, at machine precision.
        let coeffs = [(0.8, -0.3), (-0.45, 0.2), (0.1, 0.55), (-0.2, -0.15)];
        for order in 1..=coeffs.len() {
            let rule = shift_rule(order);
            assert_eq!(rule.len(), order);
            for &theta in &[0.0, 0.3, -1.2, 2.9] {
                let (_, want) = trig_poly(theta, &coeffs[..order]);
                let got: f64 = rule
                    .iter()
                    .map(|&(x, c)| {
                        c * (trig_poly(theta + x, &coeffs[..order]).0
                            - trig_poly(theta - x, &coeffs[..order]).0)
                    })
                    .sum();
                assert!(
                    (got - want).abs() < 1e-10,
                    "order {order} theta {theta}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn order_one_rule_is_the_classic_half_shift() {
        let rule = shift_rule(1);
        assert_eq!(rule.len(), 1);
        let (x, c) = rule[0];
        assert!((x - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((c - 0.5).abs() < 1e-15);
    }

    #[test]
    fn half_frequency_rule_is_exact_on_half_integer_polynomials() {
        // Frequencies {1/2, 1}: the controlled-rotation spectrum.
        let f = |theta: f64| 0.2 + 0.6 * (theta / 2.0).cos() - 0.3 * theta.sin();
        let fd = |theta: f64| -0.3 * (theta / 2.0).sin() - 0.3 * theta.cos();
        let rule = shift_rule_half_frequencies(1);
        assert_eq!(rule.len(), 2);
        for &theta in &[0.0, 0.7, -2.1] {
            let got: f64 = rule
                .iter()
                .map(|&(x, c)| c * (f(theta + x) - f(theta - x)))
                .sum();
            assert!((got - fd(theta)).abs() < 1e-10, "theta {theta}");
        }
    }

    #[test]
    fn symbol_rules_count_occurrences_and_detect_noise() {
        let mut c = Circuit::new(3);
        c.rx(0, Param::symbol("a"))
            .zz(0, 1, Param::symbol("g"))
            .zz(1, 2, Param::symbol("g"))
            .crz(0, 1, Param::symbol("h"))
            .noise(
                qkc_circuit::NoiseChannel::BitFlip {
                    p: Param::symbol("p"),
                },
                2,
            );
        let wrt: Vec<String> = ["a", "g", "h", "p", "zz"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let rules = symbol_rules(&c, &wrt);
        assert_eq!(rules[0], SymbolRule::Shift(shift_rule(1)));
        assert_eq!(rules[1], SymbolRule::Shift(shift_rule(2)), "g occurs twice");
        assert_eq!(rules[2], SymbolRule::Shift(shift_rule_half_frequencies(1)));
        assert_eq!(rules[3], SymbolRule::CentralDiffProbability);
        assert_eq!(rules[4], SymbolRule::Absent);
    }

    #[test]
    fn shifted_bindings_and_contraction_round_trip() {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("a")).zz(0, 1, Param::symbol("b"));
        let wrt = vec!["a".to_string(), "b".to_string()];
        let rules = symbol_rules(&c, &wrt);
        let params = ParamMap::from_pairs([("a", 0.3), ("b", 1.1)]);
        let (lanes, plans) = shifted_bindings(&params, &wrt, &rules).unwrap();
        assert_eq!(lanes.len(), 5, "base + 2 per single-occurrence symbol");
        assert_eq!(lanes[0].get("a"), Some(0.3));
        assert!((lanes[1].get("a").unwrap() - (0.3 + std::f64::consts::FRAC_PI_2)).abs() < 1e-15);
        assert!((lanes[2].get("a").unwrap() - (0.3 - std::f64::consts::FRAC_PI_2)).abs() < 1e-15);
        assert_eq!(lanes[1].get("b"), Some(1.1), "other symbols unshifted");
        // Contract a synthetic value vector: value 2.0, dE/da from lanes
        // 1-2, dE/db from lanes 3-4.
        let (value, gradient, exact) = contract_gradient(&[2.0, 1.5, 0.5, 3.0, 1.0], &plans);
        assert_eq!(value, 2.0);
        assert!((gradient[0] - 0.5).abs() < 1e-15);
        assert!((gradient[1] - 1.0).abs() < 1e-15);
        assert!(exact);
    }

    #[test]
    fn probability_probes_are_clamped_at_the_boundary() {
        // A noise symbol bound at p = 0 (valid "no noise") must probe
        // [0, FD_STEP], not a negative probability; same at p = 1.
        let mut c = Circuit::new(1);
        c.h(0).noise(
            qkc_circuit::NoiseChannel::BitFlip {
                p: Param::symbol("p"),
            },
            0,
        );
        let wrt = vec!["p".to_string()];
        let rules = symbol_rules(&c, &wrt);
        assert_eq!(rules[0], SymbolRule::CentralDiffProbability);
        for (base, hi, lo) in [
            (0.0, FD_STEP, 0.0),
            (1.0, 1.0, 1.0 - FD_STEP),
            (0.5, 0.5 + FD_STEP, 0.5 - FD_STEP),
        ] {
            let params = ParamMap::from_pairs([("p", base)]);
            let (lanes, plans) = shifted_bindings(&params, &wrt, &rules).unwrap();
            assert_eq!(lanes.len(), 3);
            assert!(
                (lanes[1].get("p").unwrap() - hi).abs() < 1e-18,
                "base {base}"
            );
            assert!(
                (lanes[2].get("p").unwrap() - lo).abs() < 1e-18,
                "base {base}"
            );
            // The coefficient carries the actual (possibly one-sided)
            // spread: contraction of a linear function recovers slope 1.
            let (_, gradient, exact) = contract_gradient(&[base, hi, lo], &plans);
            assert!((gradient[0] - 1.0).abs() < 1e-9, "base {base}");
            assert!(!exact);
        }
    }

    #[test]
    fn unbound_wrt_symbol_is_reported() {
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("a"));
        let wrt = vec!["a".to_string()];
        let rules = symbol_rules(&c, &wrt);
        let err = shifted_bindings(&ParamMap::new(), &wrt, &rules).unwrap_err();
        assert_eq!(err, "a");
    }
}
