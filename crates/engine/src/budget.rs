//! Per-call wall-time budgets and the per-query context that threads them
//! (plus the installed [`FaultPlan`]) through cache, compile, and sweep.
//!
//! Cancellation is *cooperative*: the engine checks the budget at natural
//! boundaries — between compile phases (the `PhaseSeconds` boundaries),
//! between sweep lanes, and while waiting on a cache resolve — so a
//! deadline fires within one checkpoint interval and never tears a
//! partially built artifact. Exceeding a budget is a typed
//! [`EngineError::DeadlineExceeded`], not a panic or a hang.

use crate::faults::FaultPlan;
use crate::EngineError;
use std::time::{Duration, Instant};

/// Wall-time limits for one engine call. `Default` is unlimited.
///
/// * `deadline` bounds the whole query (compile + cache waits + sweep),
///   measured from the moment the engine call enters.
/// * `compile_timeout` bounds each single artifact compilation, measured
///   from the start of that resolution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Total wall-time limit for the engine call.
    pub deadline: Option<Duration>,
    /// Wall-time limit for one artifact compilation within the call.
    pub compile_timeout: Option<Duration>,
}

impl QueryBudget {
    /// No limits (same as `Default`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the whole-call deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-compile timeout.
    pub fn with_compile_timeout(mut self, timeout: Duration) -> Self {
        self.compile_timeout = Some(timeout);
        self
    }

    /// True when no limit is set (the checkpoints short-circuit).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.compile_timeout.is_none()
    }
}

/// Builds the typed deadline error and ticks its counter — every budget
/// expiry funnels through here so `budget/deadline_exceeded` counts them
/// all, whichever checkpoint noticed first.
pub(crate) fn deadline_exceeded(budget: &'static str, limit: Duration) -> EngineError {
    qkc_telemetry::count("budget/deadline_exceeded", 1);
    EngineError::DeadlineExceeded {
        budget,
        limit_secs: limit.as_secs_f64(),
    }
}

/// Per-call context: the budget's start-anchored clock plus the installed
/// fault plan. Created once at each `Engine` entry point and passed by
/// reference into the cache, the compile checkpoints, and the sweep
/// workers (it is read-only and `Sync`).
#[derive(Debug, Clone)]
pub(crate) struct QueryCtx {
    started: Instant,
    budget: QueryBudget,
    faults: Option<FaultPlan>,
}

impl QueryCtx {
    pub(crate) fn new(budget: QueryBudget, faults: Option<FaultPlan>) -> Self {
        Self {
            started: Instant::now(),
            budget,
            faults,
        }
    }

    pub(crate) fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    pub(crate) fn compile_timeout(&self) -> Option<Duration> {
        self.budget.compile_timeout
    }

    /// Errors if the whole-call deadline has passed. Cheap enough for
    /// per-lane checkpoints: one `Instant::now()` when a deadline is set,
    /// one `Option` test when not.
    pub(crate) fn check_deadline(&self) -> Result<(), EngineError> {
        match self.budget.deadline {
            Some(limit) if self.started.elapsed() > limit => {
                Err(deadline_exceeded("deadline", limit))
            }
            _ => Ok(()),
        }
    }

    /// Time left until the whole-call deadline: `None` when unlimited,
    /// `Some(ZERO)` once exceeded. Feeds condvar `wait_timeout` so a
    /// thread blocked on another's compile still honours its own budget.
    pub(crate) fn remaining(&self) -> Option<Duration> {
        self.budget
            .deadline
            .map(|limit| limit.saturating_sub(self.started.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_expires() {
        let ctx = QueryCtx::new(QueryBudget::unlimited(), None);
        assert!(ctx.check_deadline().is_ok());
        assert_eq!(ctx.remaining(), None);
        assert_eq!(ctx.compile_timeout(), None);
    }

    #[test]
    fn zero_deadline_expires_with_typed_error() {
        let budget = QueryBudget::unlimited().with_deadline(Duration::ZERO);
        let ctx = QueryCtx::new(budget, None);
        std::thread::sleep(Duration::from_millis(1));
        match ctx.check_deadline() {
            Err(EngineError::DeadlineExceeded { budget, limit_secs }) => {
                assert_eq!(budget, "deadline");
                assert_eq!(limit_secs, 0.0);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn builders_compose() {
        let b = QueryBudget::unlimited()
            .with_deadline(Duration::from_secs(5))
            .with_compile_timeout(Duration::from_millis(100));
        assert!(!b.is_unlimited());
        assert_eq!(b.deadline, Some(Duration::from_secs(5)));
        assert_eq!(b.compile_timeout, Some(Duration::from_millis(100)));
        assert!(QueryBudget::default().is_unlimited());
    }
}
