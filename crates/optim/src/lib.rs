//! Classical optimizers for variational quantum loops.
//!
//! Hybrid algorithms like QAOA and VQE use a classical optimizer to choose
//! the next circuit parameters from simulated objective values; the paper's
//! benchmarks drive their simulators from Nelder–Mead optimization runs
//! (§4.1). Three optimizers share one [`OptimResult`] and one batched
//! objective shape, so the engine can fan every candidate batch out as one
//! parameter sweep:
//!
//! * [`NelderMead`] — derivative-free downhill simplex (reflection,
//!   expansion, contraction, shrink);
//! * [`Spsa`] — simultaneous-perturbation stochastic approximation: two
//!   objective evaluations per iteration estimate the gradient along a
//!   random ±1 direction; robust to sampled (noisy) objectives;
//! * [`Adam`] — first-order moment-adaptive gradient descent over a
//!   *value-and-gradient* objective; pairs with the engine's exact
//!   parameter-shift gradient queries.
//!
//! # NaN contract
//!
//! Every optimizer maps a NaN objective value to `+∞` on ingestion: NaN
//! compares false against everything, so a single NaN point would otherwise
//! poison best-point tracking and keep convergence tests from ever firing.
//! With the mapping, NaN regions are simply treated as the worst possible
//! values and the optimizers still terminate with the best *finite* point
//! they saw (if any).
//!
//! # Abort contract
//!
//! The `*_try` variants take objectives returning `Option`: `None` aborts
//! the run immediately — the optimizer performs no further objective calls
//! and returns the best point seen so far, and the aborted batch is not
//! counted in [`OptimResult::evaluations`]. Engine-driven loops use this to
//! stop burning iteration budget the moment a sweep fails.
//!
//! # Examples
//!
//! ```
//! use qkc_optim::NelderMead;
//!
//! // Minimize a shifted quadratic.
//! let result = NelderMead::new()
//!     .with_max_iterations(500)
//!     .minimize(|x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2), &[0.0, 0.0]);
//! assert!((result.x[0] - 3.0).abs() < 1e-4);
//! assert!((result.x[1] + 1.0).abs() < 1e-4);
//! ```

#![forbid(unsafe_code)]

/// A value-and-gradient objective sample: `(f(x), ∇f(x))`.
pub type ValueAndGrad = (f64, Vec<f64>);

/// Maps NaN to `+∞` (the module-level NaN contract).
#[inline]
fn sanitize(v: f64) -> f64 {
    if v.is_nan() {
        f64::INFINITY
    } else {
        v
    }
}

/// The Nelder–Mead downhill-simplex optimizer.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Reflection coefficient (α > 0).
    alpha: f64,
    /// Expansion coefficient (γ > 1).
    gamma: f64,
    /// Contraction coefficient (0 < ρ ≤ 0.5).
    rho: f64,
    /// Shrink coefficient (0 < σ < 1).
    sigma: f64,
    /// Initial simplex step per coordinate.
    initial_step: f64,
    max_iterations: usize,
    /// Convergence threshold on the simplex's value spread.
    tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self::new()
    }
}

impl NelderMead {
    /// Creates an optimizer with the standard coefficients
    /// (α=1, γ=2, ρ=0.5, σ=0.5).
    pub fn new() -> Self {
        Self {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            initial_step: 0.25,
            max_iterations: 200,
            tolerance: 1e-8,
        }
    }

    /// Sets the iteration budget.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the convergence tolerance on the simplex value spread.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Sets the initial simplex step.
    pub fn with_initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize(&self, mut f: impl FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult {
        self.minimize_batch(|points| points.iter().map(|x| f(x)).collect(), x0)
    }

    /// Minimizes with a *batched* objective: `f` receives every candidate
    /// point the current step needs (the `n + 1` initial-simplex points, a
    /// shrink step's `n` points, single reflect/expand/contract probes) and
    /// returns their values in order.
    ///
    /// Variational quantum loops evaluate objectives by simulation, so a
    /// batch maps naturally onto a parallel parameter sweep — the
    /// `qkc-engine` crate's executor fans each batch out across worker
    /// threads while the simplex logic here stays strictly deterministic.
    ///
    /// NaN values are mapped to `+∞` on ingestion (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or `f` returns the wrong number of values.
    pub fn minimize_batch(
        &self,
        mut f: impl FnMut(&[Vec<f64>]) -> Vec<f64>,
        x0: &[f64],
    ) -> OptimResult {
        self.minimize_batch_try(|points| Some(f(points)), x0)
    }

    /// [`minimize_batch`](NelderMead::minimize_batch) with an abortable
    /// objective: returning `None` stops the run immediately with the best
    /// point found so far (the aborted batch is not counted in
    /// [`OptimResult::evaluations`]). If the initial-simplex batch aborts,
    /// the result reports `x0` with value `+∞` and zero evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or `f` returns the wrong number of values.
    pub fn minimize_batch_try(
        &self,
        mut f: impl FnMut(&[Vec<f64>]) -> Option<Vec<f64>>,
        x0: &[f64],
    ) -> OptimResult {
        let n = x0.len();
        assert!(n > 0, "need at least one parameter");
        let mut evaluations = 0usize;
        let mut eval_batch = |points: &[Vec<f64>], evals: &mut usize| -> Option<Vec<f64>> {
            let values = f(points)?;
            assert_eq!(
                values.len(),
                points.len(),
                "batched objective must return one value per point"
            );
            *evals += points.len();
            Some(values.into_iter().map(sanitize).collect())
        };
        // Initial simplex: x0 plus a step along each axis, as one batch.
        let mut initial: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        initial.push(x0.to_vec());
        for i in 0..n {
            let mut x = x0.to_vec();
            x[i] += if x[i].abs() > 1e-12 {
                self.initial_step * x[i].abs()
            } else {
                self.initial_step
            };
            initial.push(x);
        }
        let Some(initial_values) = eval_batch(&initial, &mut evaluations) else {
            return OptimResult {
                x: x0.to_vec(),
                value: f64::INFINITY,
                iterations: 0,
                evaluations: 0,
            };
        };
        let mut simplex: Vec<(Vec<f64>, f64)> = initial.into_iter().zip(initial_values).collect();

        let mut iterations = 0usize;
        'outer: while iterations < self.max_iterations {
            iterations += 1;
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                break;
            }
            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (x, _) in &simplex[..n] {
                for (c, xi) in centroid.iter_mut().zip(x) {
                    *c += xi / n as f64;
                }
            }
            let worst = simplex[n].clone();
            let reflect: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + self.alpha * (c - w))
                .collect();
            let Some(frv) = eval_batch(std::slice::from_ref(&reflect), &mut evaluations) else {
                break 'outer;
            };
            let fr = frv[0];
            if fr < simplex[0].1 {
                // Try expanding further.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(&reflect)
                    .map(|(c, r)| c + self.gamma * (r - c))
                    .collect();
                let Some(fev) = eval_batch(std::slice::from_ref(&expand), &mut evaluations) else {
                    // Keep the improving reflected point before stopping.
                    simplex[n] = (reflect, fr);
                    break 'outer;
                };
                let fe = fev[0];
                simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
            } else if fr < simplex[n - 1].1 {
                simplex[n] = (reflect, fr);
            } else {
                // Contract toward the better of worst/reflected.
                let (base, fb) = if fr < worst.1 {
                    (&reflect, fr)
                } else {
                    (&worst.0, worst.1)
                };
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(base)
                    .map(|(c, b)| c + self.rho * (b - c))
                    .collect();
                let Some(fcv) = eval_batch(std::slice::from_ref(&contract), &mut evaluations)
                else {
                    break 'outer;
                };
                let fc = fcv[0];
                if fc < fb {
                    simplex[n] = (contract, fc);
                } else {
                    // Shrink everything toward the best point, as one batch.
                    let best = simplex[0].0.clone();
                    let shrunk: Vec<Vec<f64>> = simplex[1..]
                        .iter()
                        .map(|(x, _)| {
                            best.iter()
                                .zip(x)
                                .map(|(b, xi)| b + self.sigma * (xi - b))
                                .collect()
                        })
                        .collect();
                    let Some(values) = eval_batch(&shrunk, &mut evaluations) else {
                        break 'outer;
                    };
                    for (entry, point) in
                        simplex[1..].iter_mut().zip(shrunk.into_iter().zip(values))
                    {
                        *entry = (point.0, point.1);
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        OptimResult {
            x: simplex[0].0.clone(),
            value: simplex[0].1,
            iterations,
            evaluations,
        }
    }
}

/// Simultaneous-perturbation stochastic approximation (Spall 1992): each
/// iteration draws one random ±1 direction `Δ`, evaluates the objective at
/// `x ± c_k·Δ` plus the current iterate `x` (as one three-point batch —
/// the perturbed pair drives the gradient estimate
/// `ĝ_i = (f⁺ − f⁻) / (2·c_k·Δ_i)`, the iterate value drives best-point
/// tracking), and steps with a decaying step size. Three evaluations per
/// iteration *independent of dimension*, and no gradient queries — the
/// optimizer of choice for sampled (shot-noise) objectives.
///
/// Fully deterministic in its seed: the perturbation stream comes from a
/// seeded generator, never from global state.
///
/// # Examples
///
/// ```
/// use qkc_optim::Spsa;
///
/// let r = Spsa::new()
///     .with_max_iterations(400)
///     .minimize(|x| (x[0] - 1.0).powi(2) + x[1] * x[1], &[0.0, 0.5]);
/// assert!(r.value < 0.05, "value {}", r.value);
/// ```
#[derive(Debug, Clone)]
pub struct Spsa {
    /// Step-size numerator (`a` in `a_k = a / (A + k + 1)^α`).
    a: f64,
    /// Perturbation-size numerator (`c` in `c_k = c / (k + 1)^γ`).
    c: f64,
    /// Step-size decay exponent (Spall's asymptotically optimal 0.602).
    alpha: f64,
    /// Perturbation decay exponent (Spall's 0.101).
    gamma: f64,
    /// Stability constant `A` (delays the step-size decay).
    stability: f64,
    max_iterations: usize,
    seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Self::new()
    }
}

impl Spsa {
    /// Standard coefficients: `a = 0.5`, `c = 0.2`, `α = 0.602`,
    /// `γ = 0.101`, `A = 10` — tuned for objectives over rotation angles
    /// (O(1) curvature, 2π periodicity): the first step moves
    /// `≈ 0.12·|ĝ|` radians and the decay keeps the summed step length
    /// well past the angle scale over a few hundred iterations.
    pub fn new() -> Self {
        Self {
            a: 0.5,
            c: 0.2,
            alpha: 0.602,
            gamma: 0.101,
            stability: 10.0,
            max_iterations: 200,
            seed: 0,
        }
    }

    /// Sets the iteration budget (each iteration costs three evaluations:
    /// the two perturbed probes and the current iterate).
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the perturbation-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The perturbation-stream seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the step-size numerator `a`.
    pub fn with_step(mut self, a: f64) -> Self {
        self.a = a;
        self
    }

    /// Sets the perturbation size `c` (match the objective's noise scale).
    pub fn with_perturbation(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize(&self, mut f: impl FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult {
        self.minimize_batch(|points| points.iter().map(|x| f(x)).collect(), x0)
    }

    /// Minimizes with a *batched* objective, mirroring
    /// [`NelderMead::minimize_batch`]: each iteration submits its two
    /// perturbed candidates *plus the current iterate* as one batch (one
    /// parameter sweep through the engine) — the perturbed values drive
    /// the gradient estimate, the iterate value drives best-point
    /// tracking, which would otherwise be limited by the perturbation
    /// radius. NaN values are mapped to `+∞` on ingestion.
    ///
    /// The best evaluated point (not the final iterate) is returned: SPSA
    /// iterates wander under noise, but every evaluation is recorded.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or `f` returns the wrong number of values.
    pub fn minimize_batch(
        &self,
        mut f: impl FnMut(&[Vec<f64>]) -> Vec<f64>,
        x0: &[f64],
    ) -> OptimResult {
        self.minimize_batch_try(|points| Some(f(points)), x0)
    }

    /// [`minimize_batch`](Spsa::minimize_batch) with an abortable
    /// objective: `None` stops the run immediately with the best point
    /// seen so far, not counting the aborted batch.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or `f` returns the wrong number of values.
    pub fn minimize_batch_try(
        &self,
        mut f: impl FnMut(&[Vec<f64>]) -> Option<Vec<f64>>,
        x0: &[f64],
    ) -> OptimResult {
        let n = x0.len();
        assert!(n > 0, "need at least one parameter");
        let mut rng = SplitMix64::new(self.seed);
        let mut x = x0.to_vec();
        let mut best_x = x0.to_vec();
        let mut best_value = f64::INFINITY;
        let mut evaluations = 0usize;
        let mut iterations = 0usize;
        let mut delta = vec![0.0f64; n];
        for k in 0..self.max_iterations {
            let ck = self.c / ((k + 1) as f64).powf(self.gamma);
            let ak = self.a / (self.stability + (k + 1) as f64).powf(self.alpha);
            for d in delta.iter_mut() {
                *d = if rng.next_bool() { 1.0 } else { -1.0 };
            }
            let plus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
            let minus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
            let batch = [plus, minus, x.clone()];
            let Some(values) = f(&batch) else {
                break;
            };
            assert_eq!(values.len(), 3, "batched objective must return 3 values");
            iterations += 1;
            evaluations += 3;
            let fp = sanitize(values[0]);
            let fm = sanitize(values[1]);
            let fx = sanitize(values[2]);
            let [plus, minus, here] = batch;
            if fp < best_value {
                best_value = fp;
                best_x.copy_from_slice(&plus);
            }
            if fm < best_value {
                best_value = fm;
                best_x.copy_from_slice(&minus);
            }
            if fx < best_value {
                best_value = fx;
                best_x.copy_from_slice(&here);
            }
            if !fp.is_finite() || !fm.is_finite() {
                // No usable gradient information in an infinite difference;
                // skip the step rather than teleporting the iterate.
                continue;
            }
            let scale = (fp - fm) / (2.0 * ck);
            for (xi, d) in x.iter_mut().zip(&delta) {
                // 1/Δ_i = Δ_i for Rademacher perturbations.
                *xi -= ak * scale * d;
            }
        }
        OptimResult {
            x: best_x,
            value: best_value,
            iterations,
            evaluations,
        }
    }
}

/// Adam (Kingma & Ba 2015): gradient descent with per-coordinate
/// first/second-moment adaptation, over a *value-and-gradient* objective.
/// Pairs with the engine's exact parameter-shift gradient queries
/// (`Engine::gradient`): one batched gradient evaluation per iteration.
///
/// # Examples
///
/// ```
/// use qkc_optim::Adam;
///
/// // Minimize a quadratic with its analytic gradient.
/// let r = Adam::new().with_max_iterations(300).minimize(
///     |x| {
///         let v = (x[0] - 2.0).powi(2);
///         (v, vec![2.0 * (x[0] - 2.0)])
///     },
///     &[0.0],
/// );
/// assert!((r.x[0] - 2.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    max_iterations: usize,
    /// Early-stop threshold on the gradient 2-norm.
    tolerance: f64,
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Adam {
    /// Standard coefficients: `lr = 0.1` (rotation-angle scale), `β₁ =
    /// 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new() -> Self {
        Self {
            learning_rate: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            max_iterations: 200,
            tolerance: 1e-8,
        }
    }

    /// Sets the iteration budget (one value-and-gradient evaluation each).
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the early-stop threshold on the gradient 2-norm.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Minimizes `f` (returning `(value, gradient)`) starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or a gradient has the wrong arity.
    pub fn minimize(&self, mut f: impl FnMut(&[f64]) -> ValueAndGrad, x0: &[f64]) -> OptimResult {
        self.minimize_batch(|points| points.iter().map(|x| f(x)).collect(), x0)
    }

    /// Minimizes with a *batched* value-and-gradient objective, mirroring
    /// [`NelderMead::minimize_batch`]: `f` receives every candidate point
    /// the current step needs (one per Adam iteration today) and returns
    /// `(value, gradient)` per point, so engine-driven loops route each
    /// batch through one gradient sweep. NaN values are mapped to `+∞` on
    /// ingestion; a non-finite gradient component stops the run (no
    /// trustworthy direction), returning the best point seen.
    ///
    /// The best evaluated point (not the final iterate) is returned.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or a gradient has the wrong arity.
    pub fn minimize_batch(
        &self,
        mut f: impl FnMut(&[Vec<f64>]) -> Vec<ValueAndGrad>,
        x0: &[f64],
    ) -> OptimResult {
        self.minimize_batch_try(|points| Some(f(points)), x0)
    }

    /// [`minimize_batch`](Adam::minimize_batch) with an abortable
    /// objective: `None` stops the run immediately with the best point
    /// seen so far, not counting the aborted batch.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or a gradient has the wrong arity.
    pub fn minimize_batch_try(
        &self,
        mut f: impl FnMut(&[Vec<f64>]) -> Option<Vec<ValueAndGrad>>,
        x0: &[f64],
    ) -> OptimResult {
        let n = x0.len();
        assert!(n > 0, "need at least one parameter");
        let mut x = x0.to_vec();
        let mut m = vec![0.0f64; n];
        let mut v = vec![0.0f64; n];
        let mut best_x = x0.to_vec();
        let mut best_value = f64::INFINITY;
        let mut evaluations = 0usize;
        let mut iterations = 0usize;
        for t in 1..=self.max_iterations {
            let Some(results) = f(std::slice::from_ref(&x)) else {
                break;
            };
            assert_eq!(results.len(), 1, "batched objective must return 1 result");
            let (value, grad) = results.into_iter().next().expect("checked length");
            assert_eq!(grad.len(), n, "gradient arity mismatch");
            iterations += 1;
            evaluations += 1;
            let value = sanitize(value);
            if value < best_value {
                best_value = value;
                best_x.copy_from_slice(&x);
            }
            if grad.iter().any(|g| !g.is_finite()) {
                break;
            }
            let norm_sq: f64 = grad.iter().map(|g| g * g).sum();
            if norm_sq.sqrt() < self.tolerance {
                break;
            }
            let b1t = 1.0 - self.beta1.powi(t as i32);
            let b2t = 1.0 - self.beta2.powi(t as i32);
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let m_hat = m[i] / b1t;
                let v_hat = v[i] / b2t;
                x[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
        OptimResult {
            x: best_x,
            value: best_value,
            iterations,
            evaluations,
        }
    }
}

/// SplitMix64 — a tiny self-contained generator for the SPSA perturbation
/// stream (deterministic, seed-addressed, no external state).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// The outcome of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Objective evaluations performed (aborted batches excluded).
    pub evaluations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = NelderMead::new()
            .with_max_iterations(400)
            .minimize(|x| x.iter().map(|v| v * v).sum(), &[1.0, -2.0, 0.5]);
        assert!(r.value < 1e-8, "value {}", r.value);
        assert!(r.x.iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn minimizes_rosenbrock() {
        let r = NelderMead::new()
            .with_max_iterations(4000)
            .with_tolerance(1e-12)
            .minimize(
                |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
                &[-1.2, 1.0],
            );
        assert!((r.x[0] - 1.0).abs() < 1e-3, "x = {:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn handles_periodic_objectives() {
        // Variational objectives are periodic in the angles.
        let r = NelderMead::new()
            .with_max_iterations(500)
            .minimize(|x| x[0].cos() + 1.0, &[1.0]);
        assert!((r.value).abs() < 1e-5, "min of cos+1 is 0, got {}", r.value);
    }

    #[test]
    fn respects_iteration_budget() {
        let r = NelderMead::new()
            .with_max_iterations(3)
            .minimize(|x| x[0] * x[0], &[5.0]);
        assert!(r.iterations <= 3);
        assert!(r.evaluations >= 4);
    }

    #[test]
    fn reports_monotone_improvement() {
        let start = [4.0, 4.0];
        let f = |x: &[f64]| x[0].powi(2) + x[1].powi(2);
        let r = NelderMead::new()
            .with_max_iterations(100)
            .minimize(f, &start);
        assert!(r.value <= f(&start));
    }

    #[test]
    fn nan_objective_still_terminates_with_finite_best() {
        // NaN outside the unit box (the documented contract maps it to
        // +∞); the simplex must still terminate with a finite best point
        // instead of stalling on poisoned comparisons.
        let f = |x: &[f64]| {
            if x.iter().any(|v| v.abs() > 1.0) {
                f64::NAN
            } else {
                x.iter().map(|v| v * v).sum()
            }
        };
        let r = NelderMead::new()
            .with_max_iterations(200)
            .minimize(f, &[0.8, -0.8]);
        assert!(r.value.is_finite(), "best value must be finite");
        assert!(r.x.iter().all(|v| v.abs() <= 1.0));
        assert!(r.value < 0.8f64.powi(2) * 2.0 + 1e-9);
        // Even an everywhere-NaN objective terminates (with +∞).
        let r = NelderMead::new()
            .with_max_iterations(50)
            .minimize(|_| f64::NAN, &[1.0]);
        assert!(r.iterations <= 50);
        assert!(r.value.is_infinite());
    }

    #[test]
    fn aborting_objective_stops_promptly() {
        // The objective fails after the 2nd batch: the optimizer must stop
        // immediately instead of iterating to the budget, and must not
        // count the aborted batch.
        let mut batches = 0usize;
        let mut evals_seen = 0usize;
        let r = NelderMead::new()
            .with_max_iterations(1000)
            .minimize_batch_try(
                |points| {
                    batches += 1;
                    if batches > 2 {
                        return None;
                    }
                    evals_seen += points.len();
                    Some(points.iter().map(|x| x[0] * x[0] + 1.0).collect())
                },
                &[3.0, 4.0],
            );
        assert_eq!(batches, 3, "exactly one failing batch after two good ones");
        assert_eq!(r.evaluations, evals_seen, "aborted batch not counted");
        assert!(r.iterations < 1000, "must not burn the whole budget");
        assert!(r.value.is_finite());
    }

    #[test]
    fn abort_on_initial_batch_reports_start_point() {
        let r = NelderMead::new().minimize_batch_try(|_| None, &[1.5, -2.0]);
        assert_eq!(r.x, vec![1.5, -2.0]);
        assert!(r.value.is_infinite());
        assert_eq!(r.evaluations, 0);
    }

    #[test]
    fn spsa_minimizes_smooth_quadratic() {
        let r = Spsa::new()
            .with_max_iterations(600)
            .minimize(|x| (x[0] - 1.0).powi(2) + (x[1] + 0.5).powi(2), &[0.0, 0.0]);
        assert!(r.value < 0.05, "value {}", r.value);
        assert_eq!(r.evaluations, 3 * r.iterations);
    }

    #[test]
    fn spsa_is_seed_deterministic() {
        let f = |x: &[f64]| x[0].cos() + 0.3 * x[1] * x[1];
        let run = |seed| {
            Spsa::new()
                .with_seed(seed)
                .with_max_iterations(100)
                .minimize(f, &[1.0, 1.0])
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.x, b.x);
        assert_eq!(a.value, b.value);
        let c = run(8);
        assert!(a.x != c.x || a.value != c.value, "seed must matter");
    }

    #[test]
    fn spsa_handles_noisy_objectives() {
        // Deterministic pseudo-noise on top of a bowl: SPSA still finds a
        // near-optimal point (tracked over all evaluations).
        let mut calls = 0u64;
        let r = Spsa::new().with_max_iterations(800).minimize(
            |x| {
                calls += 1;
                let noise = ((calls as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
                x[0] * x[0] + x[1] * x[1] + 0.02 * noise
            },
            &[1.5, -1.0],
        );
        assert!(r.value < 0.1, "value {}", r.value);
    }

    #[test]
    fn spsa_aborts_and_keeps_best() {
        let mut batches = 0usize;
        let r = Spsa::new().with_max_iterations(500).minimize_batch_try(
            |points| {
                batches += 1;
                if batches > 3 {
                    return None;
                }
                Some(points.iter().map(|x| x[0] * x[0]).collect())
            },
            &[2.0],
        );
        assert_eq!(r.iterations, 3);
        assert_eq!(r.evaluations, 9);
        assert!(r.value.is_finite());
    }

    #[test]
    fn adam_minimizes_quadratic_with_gradient() {
        let r = Adam::new().with_max_iterations(400).minimize(
            |x| {
                let v = (x[0] - 2.0).powi(2) + 3.0 * (x[1] + 1.0).powi(2);
                (v, vec![2.0 * (x[0] - 2.0), 6.0 * (x[1] + 1.0)])
            },
            &[0.0, 0.0],
        );
        assert!((r.x[0] - 2.0).abs() < 5e-2, "x = {:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 5e-2);
        assert_eq!(r.evaluations, r.iterations);
    }

    #[test]
    fn adam_minimizes_periodic_objective() {
        // cos(θ) + 1 with analytic gradient: the variational shape.
        let r = Adam::new()
            .with_max_iterations(300)
            .minimize(|x| (x[0].cos() + 1.0, vec![-x[0].sin()]), &[1.0]);
        assert!(r.value < 1e-3, "value {}", r.value);
    }

    #[test]
    fn adam_stops_on_small_gradient() {
        let r = Adam::new().with_max_iterations(10_000).minimize(
            |x| ((x[0] - 1.0).powi(2), vec![2.0 * (x[0] - 1.0)]),
            &[1.0 + 1e-12],
        );
        assert!(r.iterations < 10_000, "tolerance must fire early");
    }

    #[test]
    fn adam_stops_on_non_finite_gradient() {
        let mut calls = 0usize;
        let r = Adam::new().with_max_iterations(100).minimize(
            |x| {
                calls += 1;
                if calls > 5 {
                    (x[0] * x[0], vec![f64::NAN])
                } else {
                    (x[0] * x[0], vec![2.0 * x[0]])
                }
            },
            &[1.0],
        );
        assert_eq!(r.iterations, 6, "stops on the NaN gradient");
        assert!(r.value.is_finite());
    }

    #[test]
    fn adam_aborts_and_keeps_best() {
        let mut batches = 0usize;
        let r = Adam::new().with_max_iterations(500).minimize_batch_try(
            |points| {
                batches += 1;
                if batches > 4 {
                    return None;
                }
                Some(
                    points
                        .iter()
                        .map(|x| (x[0] * x[0], vec![2.0 * x[0]]))
                        .collect(),
                )
            },
            &[2.0],
        );
        assert_eq!(r.iterations, 4);
        assert_eq!(r.evaluations, 4);
        assert!(r.value.is_finite());
    }
}
