//! Derivative-free classical optimizers for variational quantum loops.
//!
//! Hybrid algorithms like QAOA and VQE use a classical optimizer to choose
//! the next circuit parameters from sampled objective values; the paper's
//! benchmarks drive their simulators from Nelder–Mead optimization runs
//! (§4.1). [`NelderMead`] implements the standard simplex method with
//! reflection, expansion, contraction, and shrink steps.
//!
//! # Examples
//!
//! ```
//! use qkc_optim::NelderMead;
//!
//! // Minimize a shifted quadratic.
//! let result = NelderMead::new()
//!     .with_max_iterations(500)
//!     .minimize(|x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2), &[0.0, 0.0]);
//! assert!((result.x[0] - 3.0).abs() < 1e-4);
//! assert!((result.x[1] + 1.0).abs() < 1e-4);
//! ```

/// The Nelder–Mead downhill-simplex optimizer.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Reflection coefficient (α > 0).
    alpha: f64,
    /// Expansion coefficient (γ > 1).
    gamma: f64,
    /// Contraction coefficient (0 < ρ ≤ 0.5).
    rho: f64,
    /// Shrink coefficient (0 < σ < 1).
    sigma: f64,
    /// Initial simplex step per coordinate.
    initial_step: f64,
    max_iterations: usize,
    /// Convergence threshold on the simplex's value spread.
    tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self::new()
    }
}

impl NelderMead {
    /// Creates an optimizer with the standard coefficients
    /// (α=1, γ=2, ρ=0.5, σ=0.5).
    pub fn new() -> Self {
        Self {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            initial_step: 0.25,
            max_iterations: 200,
            tolerance: 1e-8,
        }
    }

    /// Sets the iteration budget.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the convergence tolerance on the simplex value spread.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Sets the initial simplex step.
    pub fn with_initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize(&self, mut f: impl FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult {
        self.minimize_batch(|points| points.iter().map(|x| f(x)).collect(), x0)
    }

    /// Minimizes with a *batched* objective: `f` receives every candidate
    /// point the current step needs (the `n + 1` initial-simplex points, a
    /// shrink step's `n` points, single reflect/expand/contract probes) and
    /// returns their values in order.
    ///
    /// Variational quantum loops evaluate objectives by simulation, so a
    /// batch maps naturally onto a parallel parameter sweep — the
    /// `qkc-engine` crate's executor fans each batch out across worker
    /// threads while the simplex logic here stays strictly deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or `f` returns the wrong number of values.
    pub fn minimize_batch(
        &self,
        mut f: impl FnMut(&[Vec<f64>]) -> Vec<f64>,
        x0: &[f64],
    ) -> OptimResult {
        let n = x0.len();
        assert!(n > 0, "need at least one parameter");
        let mut evaluations = 0usize;
        let mut eval_batch = |points: &[Vec<f64>], evals: &mut usize| -> Vec<f64> {
            *evals += points.len();
            let values = f(points);
            assert_eq!(
                values.len(),
                points.len(),
                "batched objective must return one value per point"
            );
            values
        };
        // Initial simplex: x0 plus a step along each axis, as one batch.
        let mut initial: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        initial.push(x0.to_vec());
        for i in 0..n {
            let mut x = x0.to_vec();
            x[i] += if x[i].abs() > 1e-12 {
                self.initial_step * x[i].abs()
            } else {
                self.initial_step
            };
            initial.push(x);
        }
        let initial_values = eval_batch(&initial, &mut evaluations);
        let mut simplex: Vec<(Vec<f64>, f64)> = initial.into_iter().zip(initial_values).collect();

        let mut iterations = 0usize;
        while iterations < self.max_iterations {
            iterations += 1;
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                break;
            }
            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (x, _) in &simplex[..n] {
                for (c, xi) in centroid.iter_mut().zip(x) {
                    *c += xi / n as f64;
                }
            }
            let worst = simplex[n].clone();
            let reflect: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + self.alpha * (c - w))
                .collect();
            let fr = eval_batch(std::slice::from_ref(&reflect), &mut evaluations)[0];
            if fr < simplex[0].1 {
                // Try expanding further.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(&reflect)
                    .map(|(c, r)| c + self.gamma * (r - c))
                    .collect();
                let fe = eval_batch(std::slice::from_ref(&expand), &mut evaluations)[0];
                simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
            } else if fr < simplex[n - 1].1 {
                simplex[n] = (reflect, fr);
            } else {
                // Contract toward the better of worst/reflected.
                let (base, fb) = if fr < worst.1 {
                    (&reflect, fr)
                } else {
                    (&worst.0, worst.1)
                };
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(base)
                    .map(|(c, b)| c + self.rho * (b - c))
                    .collect();
                let fc = eval_batch(std::slice::from_ref(&contract), &mut evaluations)[0];
                if fc < fb {
                    simplex[n] = (contract, fc);
                } else {
                    // Shrink everything toward the best point, as one batch.
                    let best = simplex[0].0.clone();
                    let shrunk: Vec<Vec<f64>> = simplex[1..]
                        .iter()
                        .map(|(x, _)| {
                            best.iter()
                                .zip(x)
                                .map(|(b, xi)| b + self.sigma * (xi - b))
                                .collect()
                        })
                        .collect();
                    let values = eval_batch(&shrunk, &mut evaluations);
                    for (entry, point) in
                        simplex[1..].iter_mut().zip(shrunk.into_iter().zip(values))
                    {
                        *entry = (point.0, point.1);
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        OptimResult {
            x: simplex[0].0.clone(),
            value: simplex[0].1,
            iterations,
            evaluations,
        }
    }
}

/// The outcome of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Objective evaluations performed.
    pub evaluations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = NelderMead::new()
            .with_max_iterations(400)
            .minimize(|x| x.iter().map(|v| v * v).sum(), &[1.0, -2.0, 0.5]);
        assert!(r.value < 1e-8, "value {}", r.value);
        assert!(r.x.iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn minimizes_rosenbrock() {
        let r = NelderMead::new()
            .with_max_iterations(4000)
            .with_tolerance(1e-12)
            .minimize(
                |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
                &[-1.2, 1.0],
            );
        assert!((r.x[0] - 1.0).abs() < 1e-3, "x = {:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn handles_periodic_objectives() {
        // Variational objectives are periodic in the angles.
        let r = NelderMead::new()
            .with_max_iterations(500)
            .minimize(|x| x[0].cos() + 1.0, &[1.0]);
        assert!((r.value).abs() < 1e-5, "min of cos+1 is 0, got {}", r.value);
    }

    #[test]
    fn respects_iteration_budget() {
        let r = NelderMead::new()
            .with_max_iterations(3)
            .minimize(|x| x[0] * x[0], &[5.0]);
        assert!(r.iterations <= 3);
        assert!(r.evaluations >= 4);
    }

    #[test]
    fn reports_monotone_improvement() {
        let start = [4.0, 4.0];
        let f = |x: &[f64]| x[0].powi(2) + x[1].powi(2);
        let r = NelderMead::new()
            .with_max_iterations(100)
            .minimize(f, &start);
        assert!(r.value <= f(&start));
    }
}
