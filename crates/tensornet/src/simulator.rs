//! Sampling driver over tensor networks.

use crate::network::TensorNetwork;
use qkc_circuit::{Circuit, CircuitError, ParamMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A tensor-network circuit sampler in the style of qTorch (the paper's
/// Figure 8 baseline).
///
/// Samples are drawn qubit-by-qubit from conditional marginals; each
/// conditional requires contracting the doubled (bra–ket) network, so the
/// per-sample cost is `O(n · contraction)` — the structural reason the paper
/// reports a 66× sampling-cost advantage for compiled arithmetic circuits,
/// which pay compilation once and then evaluate linearly per sample.
///
/// # Examples
///
/// ```
/// use qkc_circuit::{Circuit, ParamMap};
/// use qkc_tensornet::TensorNetworkSimulator;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// let sim = TensorNetworkSimulator::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = sim.sample(&c, &ParamMap::new(), 20, &mut rng).unwrap();
/// assert!(s.iter().all(|&x| x == 0 || x == 3));
/// ```
#[derive(Debug, Clone)]
pub struct TensorNetworkSimulator {
    threads: usize,
}

impl Default for TensorNetworkSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl TensorNetworkSimulator {
    /// Creates a single-threaded sampler.
    pub fn new() -> Self {
        Self { threads: 1 }
    }

    /// Sets the number of worker threads; shots are partitioned across
    /// threads (the qTorch baseline is likewise run with 1 and 16 threads).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Draws one sample from an already-built network.
    pub fn sample_once<R: Rng + ?Sized>(&self, tn: &TensorNetwork, rng: &mut R) -> usize {
        let n = tn.num_qubits();
        let mut fixed: Vec<(usize, usize)> = Vec::with_capacity(n);
        let mut out = 0usize;
        for q in 0..n {
            let w = tn.conditional_marginal(q, &fixed);
            let total = w[0] + w[1];
            let p1 = if total > 0.0 { w[1] / total } else { 0.5 };
            let bit = usize::from(rng.gen::<f64>() < p1);
            fixed.push((q, bit));
            out = (out << 1) | bit;
        }
        out
    }

    /// Draws `shots` measurement outcomes from a noise-free circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotUnitary`] for noisy circuits or an
    /// unbound-parameter error.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<usize>, CircuitError> {
        let tn = TensorNetwork::from_circuit(circuit, params)?;
        if self.threads <= 1 {
            return Ok((0..shots).map(|_| self.sample_once(&tn, rng)).collect());
        }
        // Partition shots across threads, each with an independent RNG
        // stream seeded from the caller's RNG.
        let chunk = shots.div_ceil(self.threads);
        let seeds: Vec<u64> = (0..self.threads).map(|_| rng.gen()).collect();
        let mut all = Vec::with_capacity(shots);
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for (t, &seed) in seeds.iter().enumerate() {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(shots);
                if lo >= hi {
                    break;
                }
                let tn_ref = &tn;
                let this = &*self;
                handles.push(scope.spawn(move |_| {
                    let mut local_rng = StdRng::seed_from_u64(seed);
                    (lo..hi)
                        .map(|_| this.sample_once(tn_ref, &mut local_rng))
                        .collect::<Vec<usize>>()
                }));
            }
            for h in handles {
                all.extend(h.join().expect("sampler thread panicked"));
            }
        })
        .expect("scoped thread panicked");
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::reference;
    use qkc_math::EmpiricalDistribution;

    #[test]
    fn sampled_distribution_matches_reference() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rx(2, 1.1).cz(1, 2);
        let params = ParamMap::new();
        let probs = reference::pure_probabilities(&reference::run_pure(&c, &params).unwrap());
        let sim = TensorNetworkSimulator::new();
        let mut rng = StdRng::seed_from_u64(23);
        let shots = 20_000;
        let mut emp = EmpiricalDistribution::new(8);
        for s in sim.sample(&c, &params, shots, &mut rng).unwrap() {
            emp.record(s);
        }
        for (b, &p) in probs.iter().enumerate() {
            assert!(
                (emp.probability(b) - p).abs() < 0.015,
                "outcome {b}: {} vs {p}",
                emp.probability(b)
            );
        }
    }

    #[test]
    fn threaded_sampling_returns_all_shots() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let sim = TensorNetworkSimulator::new().with_threads(4);
        let mut rng = StdRng::seed_from_u64(5);
        let s = sim.sample(&c, &ParamMap::new(), 101, &mut rng).unwrap();
        assert_eq!(s.len(), 101);
        assert!(s.iter().all(|&x| x == 0 || x == 3));
    }
}
