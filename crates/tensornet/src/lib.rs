//! Tensor-network contraction quantum circuit simulator — the workspace's
//! analogue of qTorch, the tensor-network baseline in the paper's Figure 8.
//!
//! Circuits become networks of gate tensors threaded by qubit-wire indices;
//! amplitude and marginal queries contract the network with a greedy
//! minimum-size heuristic. Sampling proceeds qubit-by-qubit from conditional
//! marginals on the doubled (bra–ket) network, so *every sample re-pays
//! contraction cost* — the asymmetry against compiled arithmetic circuits
//! that the paper's Figure 8 quantifies.
//!
//! # Examples
//!
//! ```
//! use qkc_circuit::{Circuit, ParamMap};
//! use qkc_tensornet::TensorNetwork;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cnot(0, 1);
//! let tn = TensorNetwork::from_circuit(&c, &ParamMap::new()).unwrap();
//! assert!((tn.amplitude(0b00).norm_sqr() - 0.5).abs() < 1e-12);
//! assert!(tn.amplitude(0b01).norm_sqr() < 1e-12);
//! ```

#![forbid(unsafe_code)]

mod network;
mod simulator;
mod tensor;

pub use network::TensorNetwork;
pub use simulator::TensorNetworkSimulator;
pub use tensor::{IndexId, Tensor};
