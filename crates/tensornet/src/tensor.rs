//! Dense tensors with named indices and pairwise contraction.

use qkc_math::{Complex, C_ZERO};

/// A globally unique tensor index label. All indices in this crate have
/// dimension 2 (qubit wires).
pub type IndexId = usize;

/// A dense tensor over binary indices.
///
/// Data is row-major with `indices[0]` slowest-varying. A rank-0 tensor is a
/// scalar with one data element.
///
/// # Examples
///
/// ```
/// use qkc_tensornet::Tensor;
/// use qkc_math::{Complex, C_ONE, C_ZERO};
///
/// // A qubit wire in state |0> and a cap testing for <1| contract to 0.
/// let ket = Tensor::new(vec![7], vec![C_ONE, C_ZERO]);
/// let bra = Tensor::new(vec![7], vec![C_ZERO, C_ONE]);
/// let s = ket.contract(&bra);
/// assert_eq!(s.rank(), 0);
/// assert!(s.scalar().approx_zero(1e-15));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    indices: Vec<IndexId>,
    data: Vec<Complex>,
}

impl Tensor {
    /// Creates a tensor from its index labels and row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 2^indices.len()` or an index repeats.
    pub fn new(indices: Vec<IndexId>, data: Vec<Complex>) -> Self {
        assert_eq!(
            data.len(),
            1usize << indices.len(),
            "tensor data length must be 2^rank"
        );
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), indices.len(), "tensor indices must be unique");
        Self { indices, data }
    }

    /// A scalar tensor.
    pub fn scalar_tensor(value: Complex) -> Self {
        Self {
            indices: Vec::new(),
            data: vec![value],
        }
    }

    /// A rank-1 basis vector `e_bit` on `index`.
    pub fn basis_vector(index: IndexId, bit: usize) -> Self {
        let mut data = vec![C_ZERO; 2];
        data[bit] = qkc_math::C_ONE;
        Self {
            indices: vec![index],
            data,
        }
    }

    /// The tensor's rank (number of indices).
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// The index labels.
    pub fn indices(&self) -> &[IndexId] {
        &self.indices
    }

    /// Number of stored elements (`2^rank`).
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// The scalar value of a rank-0 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank > 0.
    pub fn scalar(&self) -> Complex {
        assert!(self.indices.is_empty(), "tensor is not a scalar");
        self.data[0]
    }

    /// Reads the element at the given per-index bit assignment (aligned with
    /// `indices()` order).
    pub fn get(&self, bits: &[usize]) -> Complex {
        self.data[self.flat_index(bits)]
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            indices: self.indices.clone(),
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Returns a copy with indices renamed through `rename`.
    pub fn relabel(&self, rename: impl Fn(IndexId) -> IndexId) -> Self {
        Self {
            indices: self.indices.iter().map(|&i| rename(i)).collect(),
            data: self.data.clone(),
        }
    }

    fn flat_index(&self, bits: &[usize]) -> usize {
        debug_assert_eq!(bits.len(), self.indices.len());
        bits.iter().fold(0, |acc, &b| (acc << 1) | (b & 1))
    }

    /// Number of indices shared with `other`.
    pub fn shared_count(&self, other: &Tensor) -> usize {
        self.indices
            .iter()
            .filter(|i| other.indices.contains(i))
            .count()
    }

    /// Contracts `self` with `other` over all shared indices.
    ///
    /// If no indices are shared this is an outer product. The result's
    /// indices are `self`'s free indices followed by `other`'s.
    pub fn contract(&self, other: &Tensor) -> Tensor {
        let shared: Vec<IndexId> = self
            .indices
            .iter()
            .copied()
            .filter(|i| other.indices.contains(i))
            .collect();
        let free_a: Vec<IndexId> = self
            .indices
            .iter()
            .copied()
            .filter(|i| !shared.contains(i))
            .collect();
        let free_b: Vec<IndexId> = other
            .indices
            .iter()
            .copied()
            .filter(|i| !shared.contains(i))
            .collect();

        // Position lookup: for each of a's indices, where its bit comes from
        // in the (free_a, free_b, shared) assignment, and likewise for b.
        let pos_in = |list: &[IndexId], id: IndexId| list.iter().position(|&x| x == id);
        let a_src: Vec<(usize, bool)> = self
            .indices
            .iter()
            .map(|&id| match pos_in(&free_a, id) {
                Some(p) => (p, false),
                None => (pos_in(&shared, id).expect("index classified"), true),
            })
            .collect();
        let b_src: Vec<(usize, bool)> = other
            .indices
            .iter()
            .map(|&id| match pos_in(&free_b, id) {
                Some(p) => (p, false),
                None => (pos_in(&shared, id).expect("index classified"), true),
            })
            .collect();

        let na = free_a.len();
        let nb = free_b.len();
        let ns = shared.len();
        let mut out_indices = free_a;
        out_indices.extend(free_b.iter().copied());
        let mut out = vec![C_ZERO; 1usize << (na + nb)];

        let bit_of = |word: usize, width: usize, pos: usize| (word >> (width - 1 - pos)) & 1;
        for fa in 0..1usize << na {
            for fb in 0..1usize << nb {
                let mut acc = C_ZERO;
                for s in 0..1usize << ns {
                    let mut ai = 0usize;
                    for &(p, is_shared) in &a_src {
                        let bit = if is_shared {
                            bit_of(s, ns, p)
                        } else {
                            bit_of(fa, na, p)
                        };
                        ai = (ai << 1) | bit;
                    }
                    let mut bi = 0usize;
                    for &(p, is_shared) in &b_src {
                        let bit = if is_shared {
                            bit_of(s, ns, p)
                        } else {
                            bit_of(fb, nb, p)
                        };
                        bi = (bi << 1) | bit;
                    }
                    acc += self.data[ai] * other.data[bi];
                }
                out[(fa << nb) | fb] = acc;
            }
        }
        Tensor {
            indices: out_indices,
            data: out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_math::{C_I, C_ONE};

    #[test]
    fn scalar_round_trip() {
        let s = Tensor::scalar_tensor(C_I);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.scalar(), C_I);
    }

    #[test]
    fn matrix_vector_contraction() {
        // Hadamard as tensor (out=0, in=1) against |0> on index 1.
        let h = qkc_math::CMatrix::hadamard();
        let ht = Tensor::new(vec![0, 1], h.as_slice().to_vec());
        let v = Tensor::basis_vector(1, 0);
        let r = ht.contract(&v);
        assert_eq!(r.indices(), &[0]);
        assert!(r
            .get(&[0])
            .approx_eq(Complex::real(std::f64::consts::FRAC_1_SQRT_2), 1e-12));
        assert!(r
            .get(&[1])
            .approx_eq(Complex::real(std::f64::consts::FRAC_1_SQRT_2), 1e-12));
    }

    #[test]
    fn matrix_matrix_contraction_is_product() {
        // H·H = I via contraction over the shared middle index.
        let h = qkc_math::CMatrix::hadamard();
        let a = Tensor::new(vec![0, 1], h.as_slice().to_vec()); // rows=0, cols=1
        let b = Tensor::new(vec![1, 2], h.as_slice().to_vec()); // rows=1, cols=2
        let r = a.contract(&b);
        assert_eq!(r.indices(), &[0, 2]);
        assert!(r.get(&[0, 0]).approx_eq(C_ONE, 1e-12));
        assert!(r.get(&[0, 1]).approx_zero(1e-12));
        assert!(r.get(&[1, 1]).approx_eq(C_ONE, 1e-12));
    }

    #[test]
    fn outer_product_when_disjoint() {
        let a = Tensor::basis_vector(0, 1);
        let b = Tensor::basis_vector(1, 0);
        let r = a.contract(&b);
        assert_eq!(r.rank(), 2);
        assert_eq!(r.get(&[1, 0]), C_ONE);
        assert_eq!(r.get(&[0, 0]), C_ZERO);
    }

    #[test]
    fn full_trace_contraction() {
        // Tr(Z) = 0 by contracting Z's two indices against the identity
        // "cup" tensor.
        let z = Tensor::new(vec![0, 1], vec![C_ONE, C_ZERO, C_ZERO, -C_ONE]);
        let cup = Tensor::new(vec![0, 1], vec![C_ONE, C_ZERO, C_ZERO, C_ONE]);
        let r = z.contract(&cup);
        assert!(r.scalar().approx_zero(1e-15));
    }

    #[test]
    fn relabel_and_conj() {
        let t = Tensor::new(vec![3, 5], vec![C_I, C_ZERO, C_ZERO, C_I]);
        let r = t.relabel(|i| i + 100);
        assert_eq!(r.indices(), &[103, 105]);
        assert_eq!(r.conj().get(&[0, 0]), -C_I);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_indices_rejected() {
        Tensor::new(vec![1, 1], vec![C_ZERO; 4]);
    }
}
