//! Tensor networks built from circuits, with greedy contraction.

use crate::tensor::{IndexId, Tensor};
use qkc_circuit::{Circuit, CircuitError, Gate, GateLayout, Operation, ParamMap};
use qkc_math::{Complex, C_ONE, C_ZERO};

/// A tensor network representing a noise-free circuit applied to
/// `|0...0⟩`, with one open index per qubit (the output wire).
///
/// This mirrors qTorch's model: each gate is a tensor, qubit wires thread
/// indices between consecutive gates, and amplitude/marginal queries close
/// the open wires and contract. Contraction order is chosen greedily by
/// minimum resulting tensor size — the same family of heuristic qTorch uses.
///
/// # Examples
///
/// ```
/// use qkc_circuit::{Circuit, ParamMap};
/// use qkc_tensornet::TensorNetwork;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// let tn = TensorNetwork::from_circuit(&c, &ParamMap::new()).unwrap();
/// let amp = tn.amplitude(0b11);
/// assert!((amp.norm_sqr() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TensorNetwork {
    tensors: Vec<Tensor>,
    /// Open output index of each qubit wire.
    open: Vec<IndexId>,
    num_qubits: usize,
    next_index: IndexId,
}

impl TensorNetwork {
    /// Builds the network for a noise-free circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotUnitary`] if the circuit contains noise or
    /// measurements (tensor-network baselines in the paper handle ideal
    /// circuits only), or an unbound-parameter error.
    pub fn from_circuit(circuit: &Circuit, params: &ParamMap) -> Result<Self, CircuitError> {
        if circuit.is_noisy() {
            return Err(CircuitError::NotUnitary);
        }
        let n = circuit.num_qubits();
        let mut next_index: IndexId = 0;
        let mut fresh = || {
            let i = next_index;
            next_index += 1;
            i
        };
        // Initial |0> cap per qubit.
        let mut wire: Vec<IndexId> = Vec::with_capacity(n);
        let mut tensors: Vec<Tensor> = Vec::new();
        for _ in 0..n {
            let idx = fresh();
            tensors.push(Tensor::new(idx_vec(&[idx]), vec![C_ONE, C_ZERO]));
            wire.push(idx);
        }
        for op in circuit.operations() {
            match op {
                Operation::Gate { gate, qubits } => {
                    let u = match gate.layout() {
                        GateLayout::Permutation => perm_unitary(gate),
                        _ => gate.unitary(params).map_err(CircuitError::Unbound)?,
                    };
                    push_gate_tensor(&mut tensors, &mut wire, &u, qubits, &mut fresh);
                }
                Operation::Permutation { perm, qubits } => {
                    let dim = 1usize << perm.num_qubits();
                    let mut u = qkc_math::CMatrix::zeros(dim, dim);
                    for x in 0..dim {
                        u[(perm.apply(x), x)] = C_ONE;
                    }
                    push_gate_tensor(&mut tensors, &mut wire, &u, qubits, &mut fresh);
                }
                Operation::Diagonal { diag, qubits } => {
                    let u = qkc_circuit::reference::diagonal_unitary(diag);
                    push_gate_tensor(&mut tensors, &mut wire, &u, qubits, &mut fresh);
                }
                _ => unreachable!("noisy circuits rejected above"),
            }
        }
        Ok(Self {
            tensors,
            open: wire,
            num_qubits: n,
            next_index,
        })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of tensors in the network.
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// The amplitude `⟨bits|C|0...0⟩` (big-endian bitstring index).
    ///
    /// Each call contracts the network from scratch — the cost model the
    /// paper contrasts against compiled arithmetic circuits.
    pub fn amplitude(&self, bits: usize) -> Complex {
        let mut ts = self.tensors.clone();
        for (q, &idx) in self.open.iter().enumerate() {
            let bit = (bits >> (self.num_qubits - 1 - q)) & 1;
            ts.push(Tensor::basis_vector(idx, bit));
        }
        contract_greedy(ts).scalar()
    }

    /// The marginal distribution of `qubit` conditioned on fixed values for
    /// `fixed` (a list of `(qubit, bit)` pairs), computed on the doubled
    /// (bra–ket) network with unfixed qubits traced out.
    ///
    /// Returns unnormalized `[w0, w1]`.
    pub fn conditional_marginal(&self, qubit: usize, fixed: &[(usize, usize)]) -> [f64; 2] {
        let shift = self.next_index; // relabel offset for the bra copy
        let mut ts: Vec<Tensor> = Vec::with_capacity(self.tensors.len() * 2 + 2 * self.num_qubits);
        // Ket copy as-is; bra copy conjugated with internal indices shifted.
        // Open indices of traced qubits are shared between the copies (which
        // implements the trace); fixed and queried qubits keep separate
        // open indices on each copy.
        let keep_separate: Vec<IndexId> = self
            .open
            .iter()
            .enumerate()
            .filter(|(q, _)| *q == qubit || fixed.iter().any(|&(fq, _)| fq == *q))
            .map(|(_, &i)| i)
            .collect();
        ts.extend(self.tensors.iter().cloned());
        for t in &self.tensors {
            ts.push(t.conj().relabel(|i| {
                let traced_open = self.open.contains(&i) && !keep_separate.contains(&i);
                if traced_open {
                    i // shared with the ket copy: implements the trace
                } else {
                    i + shift
                }
            }));
        }
        // Caps on fixed qubits, both copies.
        for &(fq, bit) in fixed {
            let idx = self.open[fq];
            ts.push(Tensor::basis_vector(idx, bit));
            ts.push(Tensor::basis_vector(idx + shift, bit));
        }
        // Queried qubit: leave open on both copies, read the diagonal.
        let result = contract_greedy(ts);
        let qi = self.open[qubit];
        let pos_ket = result
            .indices()
            .iter()
            .position(|&i| i == qi)
            .expect("queried ket index open");
        let pos_bra = result
            .indices()
            .iter()
            .position(|&i| i == qi + shift)
            .expect("queried bra index open");
        let mut out = [0.0; 2];
        for (b, slot) in out.iter_mut().enumerate() {
            let mut bits = vec![0usize; result.rank()];
            bits[pos_ket] = b;
            bits[pos_bra] = b;
            *slot = result.get(&bits).re.max(0.0);
        }
        out
    }
}

fn idx_vec(ids: &[IndexId]) -> Vec<IndexId> {
    ids.to_vec()
}

fn perm_unitary(gate: &Gate) -> qkc_math::CMatrix {
    let table = gate.permutation();
    let dim = table.len();
    let mut u = qkc_math::CMatrix::zeros(dim, dim);
    for (x, &y) in table.iter().enumerate() {
        u[(y, x)] = C_ONE;
    }
    u
}

/// Appends a gate tensor, rewiring the involved qubits' open indices.
fn push_gate_tensor(
    tensors: &mut Vec<Tensor>,
    wire: &mut [IndexId],
    u: &qkc_math::CMatrix,
    qubits: &[usize],
    fresh: &mut impl FnMut() -> IndexId,
) {
    let k = qubits.len();
    let ins: Vec<IndexId> = qubits.iter().map(|&q| wire[q]).collect();
    let outs: Vec<IndexId> = (0..k).map(|_| fresh()).collect();
    // Tensor indices: (out_0..out_{k-1}, in_0..in_{k-1}); data = U row-major,
    // since U's row index is the output basis state.
    let mut indices = outs.clone();
    indices.extend(ins);
    tensors.push(Tensor::new(indices, u.as_slice().to_vec()));
    for (i, &q) in qubits.iter().enumerate() {
        wire[q] = outs[i];
    }
}

/// Contracts a set of tensors to one, greedily picking the pair whose
/// contraction yields the smallest result; falls back to outer products when
/// the network is disconnected.
pub(crate) fn contract_greedy(mut tensors: Vec<Tensor>) -> Tensor {
    assert!(!tensors.is_empty(), "cannot contract an empty network");
    while tensors.len() > 1 {
        let mut best: Option<(usize, usize, usize)> = None; // (i, j, result_rank)
        for i in 0..tensors.len() {
            for j in (i + 1)..tensors.len() {
                let shared = tensors[i].shared_count(&tensors[j]);
                if shared == 0 {
                    continue;
                }
                let rank = tensors[i].rank() + tensors[j].rank() - 2 * shared;
                if best.is_none_or(|(_, _, r)| rank < r) {
                    best = Some((i, j, rank));
                }
            }
        }
        let (i, j) = match best {
            Some((i, j, _)) => (i, j),
            None => {
                // Disconnected: outer-product the two smallest tensors.
                let mut order: Vec<usize> = (0..tensors.len()).collect();
                order.sort_by_key(|&t| tensors[t].rank());
                (order[0].min(order[1]), order[0].max(order[1]))
            }
        };
        // i < j always, so removing j first leaves i pointing at the same
        // tensor (swap_remove only disturbs positions >= j).
        let b = tensors.swap_remove(j);
        let a = tensors.swap_remove(i);
        tensors.push(a.contract(&b));
    }
    tensors.pop().expect("one tensor remains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::reference;

    #[test]
    fn amplitudes_match_reference_for_ghz() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2);
        let tn = TensorNetwork::from_circuit(&c, &ParamMap::new()).unwrap();
        let want = reference::run_pure(&c, &ParamMap::new()).unwrap();
        for (b, &w) in want.iter().enumerate() {
            assert!(
                tn.amplitude(b).approx_eq(w, 1e-12),
                "amplitude {b}: {} vs {w}",
                tn.amplitude(b)
            );
        }
    }

    #[test]
    fn amplitudes_match_reference_for_random_mix() {
        let mut c = Circuit::new(4);
        c.h(0)
            .h(1)
            .h(2)
            .h(3)
            .t(0)
            .cz(0, 2)
            .zz(1, 3, 0.43)
            .cnot(2, 3)
            .rx(1, 0.9)
            .swap(0, 3)
            .ry(2, -0.31);
        let tn = TensorNetwork::from_circuit(&c, &ParamMap::new()).unwrap();
        let want = reference::run_pure(&c, &ParamMap::new()).unwrap();
        for (b, &w) in want.iter().enumerate() {
            assert!(tn.amplitude(b).approx_eq(w, 1e-10), "amplitude {b}");
        }
    }

    #[test]
    fn rejects_noisy_circuits() {
        let mut c = Circuit::new(1);
        c.h(0).depolarize(0, 0.01);
        assert!(matches!(
            TensorNetwork::from_circuit(&c, &ParamMap::new()),
            Err(CircuitError::NotUnitary)
        ));
    }

    #[test]
    fn conditional_marginals_match_reference() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rx(2, 0.77).cz(1, 2);
        let tn = TensorNetwork::from_circuit(&c, &ParamMap::new()).unwrap();
        let probs =
            reference::pure_probabilities(&reference::run_pure(&c, &ParamMap::new()).unwrap());
        // Marginal of qubit 0.
        let m0 = tn.conditional_marginal(0, &[]);
        let want0: f64 = probs.iter().skip(4).sum(); // qubit 0 = 1 ⇒ indices 4..8
        assert!((m0[1] - want0).abs() < 1e-10);
        // Conditional of qubit 1 given qubit 0 = 0.
        let m1 = tn.conditional_marginal(1, &[(0, 0)]);
        let w10: f64 = probs[0] + probs[1];
        let w11: f64 = probs[2] + probs[3];
        assert!((m1[0] - w10).abs() < 1e-10);
        assert!((m1[1] - w11).abs() < 1e-10);
    }

    #[test]
    fn network_size_tracks_gate_count() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).z(1);
        let tn = TensorNetwork::from_circuit(&c, &ParamMap::new()).unwrap();
        // 2 initial caps + 3 gates.
        assert_eq!(tn.num_tensors(), 5);
    }
}
