//! Circuit-level driver over the state-vector kernels.

use crate::state::StateVector;
use qkc_circuit::{Circuit, CircuitError, GateLayout, Operation, ParamMap};
use qkc_math::AliasTable;
use rand::Rng;
use std::fmt;

/// A state-vector circuit simulator in the style of Google qsim: the
/// baseline the paper benchmarks against in Figure 8.
///
/// Noise-free circuits run as a single pass; noisy circuits run as quantum
/// trajectories (one stochastic pure-state evolution per shot), which is the
/// classic state-vector treatment of noise mixtures and channels.
///
/// # Examples
///
/// ```
/// use qkc_circuit::{Circuit, ParamMap};
/// use qkc_statevector::StateVectorSimulator;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// let sim = StateVectorSimulator::new();
/// let psi = sim.run_pure(&c, &ParamMap::new()).unwrap();
/// assert!((psi.probabilities()[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StateVectorSimulator {
    threads: usize,
}

impl Default for StateVectorSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl StateVectorSimulator {
    /// Creates a single-threaded simulator.
    pub fn new() -> Self {
        Self { threads: 1 }
    }

    /// Sets the number of worker threads used by the gate kernels
    /// (the paper reports qsim with 1 and 16 threads).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a noise-free circuit and returns the final state.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotUnitary`] for circuits with noise or
    /// measurements, or an unbound-parameter error.
    pub fn run_pure(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
    ) -> Result<StateVector, CircuitError> {
        if circuit.is_noisy() {
            return Err(CircuitError::NotUnitary);
        }
        let mut state = StateVector::zero_state(circuit.num_qubits());
        for op in circuit.operations() {
            self.apply_unitary_op(&mut state, op, params)?;
        }
        Ok(state)
    }

    /// Runs one stochastic trajectory of a (possibly noisy) circuit,
    /// recording which branch each noise / measurement event took.
    ///
    /// # Errors
    ///
    /// Returns an unbound-parameter error if a symbol is missing.
    pub fn run_trajectory<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        rng: &mut R,
    ) -> Result<Trajectory, CircuitError> {
        let mut state = StateVector::zero_state(circuit.num_qubits());
        let mut branches = Vec::new();
        for op in circuit.operations() {
            match op {
                Operation::Noise { channel, qubit } => {
                    let kraus = channel.kraus(params).map_err(CircuitError::Unbound)?;
                    // General quantum-trajectory step: candidate states
                    // E_k|ψ⟩ with weights ‖E_k|ψ⟩‖².
                    let mut candidates = Vec::with_capacity(kraus.len());
                    let mut weights = Vec::with_capacity(kraus.len());
                    for e in &kraus {
                        let mut cand = state.clone();
                        cand.apply_gate_threaded(e, &[*qubit], 1);
                        let w = cand.norm().powi(2);
                        weights.push(w);
                        candidates.push(cand);
                    }
                    let k = qkc_math::sample_cdf(&weights, rng);
                    state = candidates.swap_remove(k);
                    state.normalize();
                    branches.push(k);
                }
                Operation::Measure { qubit } => {
                    let p1 = state.prob_one(*qubit);
                    let outcome = usize::from(rng.gen::<f64>() < p1);
                    state.collapse(*qubit, outcome);
                    branches.push(outcome);
                }
                unitary => self.apply_unitary_op(&mut state, unitary, params)?,
            }
        }
        Ok(Trajectory { state, branches })
    }

    /// Draws `shots` measurement outcomes (basis-state indices).
    ///
    /// Noise-free circuits are simulated once and sampled from the final
    /// distribution; noisy circuits run one trajectory per shot.
    ///
    /// # Errors
    ///
    /// Returns an unbound-parameter error if a symbol is missing.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<usize>, CircuitError> {
        if !circuit.is_noisy() {
            let state = self.run_pure(circuit, params)?;
            let table = AliasTable::new(&state.probabilities()).expect("final state has unit norm");
            return Ok((0..shots).map(|_| table.sample(rng)).collect());
        }
        let mut outcomes = Vec::with_capacity(shots);
        for _ in 0..shots {
            let traj = self.run_trajectory(circuit, params, rng)?;
            let table = AliasTable::new(&traj.state.probabilities())
                .expect("trajectory state has unit norm");
            outcomes.push(table.sample(rng));
        }
        Ok(outcomes)
    }

    /// The exact measurement distribution of a noise-free circuit.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run_pure`].
    pub fn probabilities(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
    ) -> Result<Vec<f64>, CircuitError> {
        Ok(self.run_pure(circuit, params)?.probabilities())
    }

    fn apply_unitary_op(
        &self,
        state: &mut StateVector,
        op: &Operation,
        params: &ParamMap,
    ) -> Result<(), CircuitError> {
        match op {
            Operation::Gate { gate, qubits } => {
                // Diagonal and permutation gates get cheaper kernels.
                match gate.layout() {
                    GateLayout::Diagonal => {
                        let diag = gate.diagonal(params).map_err(CircuitError::Unbound)?;
                        state.apply_diagonal(&diag, qubits);
                    }
                    GateLayout::Permutation => {
                        state.apply_permutation(&gate.permutation(), qubits);
                    }
                    _ => {
                        let u = gate.unitary(params).map_err(CircuitError::Unbound)?;
                        state.apply_gate_threaded(&u, qubits, self.threads);
                    }
                }
                Ok(())
            }
            Operation::Permutation { perm, qubits } => {
                state.apply_permutation(perm.table(), qubits);
                Ok(())
            }
            Operation::Diagonal { diag, qubits } => {
                let entries: Vec<qkc_math::Complex> =
                    (0..1usize << qubits.len()).map(|x| diag.phase(x)).collect();
                state.apply_diagonal(&entries, qubits);
                Ok(())
            }
            Operation::Noise { .. } | Operation::Measure { .. } => Err(CircuitError::NotUnitary),
        }
    }
}

/// The result of one stochastic trajectory: the final pure state plus the
/// branch index taken at each noise/measurement event, in circuit order.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Final (normalized) pure state of this trajectory.
    pub state: StateVector,
    /// Branch chosen at each noise or measurement operation.
    pub branches: Vec<usize>,
}

impl fmt::Display for Trajectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trajectory({} qubits, branches {:?})",
            self.state.num_qubits(),
            self.branches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_states_match(a: &[qkc_math::Complex], b: &[qkc_math::Complex]) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert!(
                a[i].approx_eq(b[i], 1e-10),
                "amplitude {i}: {} vs {}",
                a[i],
                b[i]
            );
        }
    }

    #[test]
    fn matches_reference_on_mixed_gate_suite() {
        let mut c = Circuit::new(4);
        c.h(0)
            .h(1)
            .h(2)
            .h(3)
            .t(1)
            .cnot(0, 2)
            .cz(1, 3)
            .zz(0, 3, 0.61)
            .ccx(0, 1, 2)
            .rx(3, 0.4)
            .ry(2, -0.9)
            .swap(1, 2)
            .cphase(0, 3, 1.1);
        let sim = StateVectorSimulator::new();
        let got = sim.run_pure(&c, &ParamMap::new()).unwrap();
        let want = reference::run_pure(&c, &ParamMap::new()).unwrap();
        assert_states_match(got.amplitudes(), &want);
    }

    #[test]
    fn trajectory_average_matches_density_matrix() {
        // Average many bit-flip trajectories; diagonal should approach the
        // density-matrix diagonal.
        let mut c = Circuit::new(2);
        c.h(0).bit_flip(0, 0.3).cnot(0, 1);
        let params = ParamMap::new();
        let rho = reference::run_density(&c, &params).unwrap();
        let want = reference::density_probabilities(&rho);

        let sim = StateVectorSimulator::new();
        let mut rng = StdRng::seed_from_u64(11);
        let shots = 40_000;
        let mut acc = [0.0; 4];
        for _ in 0..shots {
            let t = sim.run_trajectory(&c, &params, &mut rng).unwrap();
            for (i, p) in t.state.probabilities().iter().enumerate() {
                acc[i] += p / shots as f64;
            }
        }
        for i in 0..4 {
            assert!(
                (acc[i] - want[i]).abs() < 0.01,
                "diag {i}: {} vs {}",
                acc[i],
                want[i]
            );
        }
    }

    #[test]
    fn trajectory_records_noise_branches() {
        let mut c = Circuit::new(1);
        c.h(0).amplitude_damp(0, 0.5).measure(0);
        let sim = StateVectorSimulator::new();
        let mut rng = StdRng::seed_from_u64(3);
        let t = sim.run_trajectory(&c, &ParamMap::new(), &mut rng).unwrap();
        assert_eq!(t.branches.len(), 2); // one noise event + one measurement
        assert!(t.branches.iter().all(|&b| b < 2));
    }

    #[test]
    fn sampling_pure_circuit_matches_distribution() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let sim = StateVectorSimulator::new();
        let mut rng = StdRng::seed_from_u64(5);
        let samples = sim.sample(&c, &ParamMap::new(), 20_000, &mut rng).unwrap();
        let zeros = samples.iter().filter(|&&s| s == 0).count() as f64;
        let threes = samples.iter().filter(|&&s| s == 3).count() as f64;
        assert!((zeros / 20_000.0 - 0.5).abs() < 0.02);
        assert!((threes / 20_000.0 - 0.5).abs() < 0.02);
        assert_eq!(zeros + threes, 20_000.0);
    }

    #[test]
    fn threaded_simulator_agrees_with_serial() {
        let mut c = Circuit::new(8);
        for q in 0..8 {
            c.h(q);
        }
        for q in 0..7 {
            c.cnot(q, q + 1);
        }
        for q in 0..8 {
            c.rz(q, 0.1 * q as f64);
        }
        let s1 = StateVectorSimulator::new()
            .run_pure(&c, &ParamMap::new())
            .unwrap();
        let s16 = StateVectorSimulator::new()
            .with_threads(16)
            .run_pure(&c, &ParamMap::new())
            .unwrap();
        assert_states_match(s1.amplitudes(), s16.amplitudes());
    }

    #[test]
    fn pure_run_rejects_noise() {
        let mut c = Circuit::new(1);
        c.h(0).depolarize(0, 0.01);
        let err = StateVectorSimulator::new()
            .run_pure(&c, &ParamMap::new())
            .unwrap_err();
        assert_eq!(err, CircuitError::NotUnitary);
    }
}
