//! State-vector quantum circuit simulator — the workspace's analogue of
//! Google qsim, the ideal-circuit baseline in the paper's Figure 8.
//!
//! The simulator multiplies gate unitaries into a dense vector of `2^n`
//! amplitudes with bit-twiddling kernels (serial or thread-parallel), runs
//! noisy circuits as quantum trajectories, and samples measurement outcomes
//! from final states.
//!
//! # Examples
//!
//! ```
//! use qkc_circuit::{Circuit, ParamMap};
//! use qkc_statevector::StateVectorSimulator;
//! use rand::SeedableRng;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).cnot(0, 1).cnot(1, 2);
//! let sim = StateVectorSimulator::new().with_threads(4);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let shots = sim.sample(&c, &ParamMap::new(), 100, &mut rng).unwrap();
//! assert!(shots.iter().all(|&s| s == 0 || s == 7)); // GHZ outcomes
//! ```

mod simulator;
mod state;

pub use simulator::{StateVectorSimulator, Trajectory};
pub use state::StateVector;
