//! The state-vector representation and its gate-application kernels.

use qkc_math::{CMatrix, Complex, C_ONE, C_ZERO};

/// A pure `n`-qubit quantum state: `2^n` complex amplitudes, big-endian
/// (qubit 0 is the most significant index bit, matching `qkc-circuit`).
///
/// # Examples
///
/// ```
/// use qkc_statevector::StateVector;
/// use qkc_math::CMatrix;
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(&CMatrix::hadamard(), &[0]);
/// let p = psi.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12 && (p[2] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0...0⟩`.
    pub fn zero_state(num_qubits: usize) -> Self {
        Self::basis_state(num_qubits, 0)
    }

    /// The computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, index: usize) -> Self {
        let dim = 1usize << num_qubits;
        assert!(index < dim, "basis index {index} out of range");
        let mut amps = vec![C_ZERO; dim];
        amps[index] = C_ONE;
        Self { num_qubits, amps }
    }

    /// Wraps raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        assert!(
            amps.len().is_power_of_two() && !amps.is_empty(),
            "amplitude count must be a nonzero power of two"
        );
        Self {
            num_qubits: amps.len().trailing_zeros() as usize,
            amps,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amps[index]
    }

    /// All amplitudes, basis-ordered.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Born-rule probabilities of every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The 2-norm of the state (1 for a normalized state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is (numerically) zero.
    pub fn normalize(&mut self) {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalize a zero state");
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn inner(&self, other: &StateVector) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits);
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// The bit position (shift) of `qubit` inside a basis index.
    #[inline]
    fn bit_pos(&self, qubit: usize) -> usize {
        self.num_qubits - 1 - qubit
    }

    /// Applies a dense `2^k × 2^k` unitary to `qubits` (first listed qubit
    /// most significant), serially.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match `qubits.len()` or a
    /// qubit repeats / is out of range.
    pub fn apply_gate(&mut self, u: &CMatrix, qubits: &[usize]) {
        self.apply_gate_threaded(u, qubits, 1);
    }

    /// Applies a dense unitary using up to `threads` worker threads.
    ///
    /// Work is split over disjoint amplitude groups, so no synchronization
    /// is needed beyond the final join. A `threads` of 0 or 1 runs serially.
    pub fn apply_gate_threaded(&mut self, u: &CMatrix, qubits: &[usize], threads: usize) {
        let k = qubits.len();
        assert_eq!(u.rows(), 1 << k, "gate dimension mismatch");
        assert!(
            qubits.iter().all(|&q| q < self.num_qubits),
            "qubit out of range"
        );
        if k == 1 {
            self.apply_single(u, qubits[0], threads);
        } else {
            self.apply_multi(u, qubits, threads);
        }
    }

    /// Specialized single-qubit kernel: iterate amplitude pairs.
    // Audited exception to the workspace `unsafe_code` deny: scoped
    // workers write disjoint amplitude groups (see SAFETY below).
    #[allow(unsafe_code)]
    fn apply_single(&mut self, u: &CMatrix, qubit: usize, threads: usize) {
        let p = self.bit_pos(qubit);
        let stride = 1usize << p;
        let dim = self.amps.len();
        let groups = dim >> (p + 1);
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        let work = |amps: &mut [Complex], g0: usize, g1: usize| {
            for g in g0..g1 {
                let start = g << (p + 1);
                for off in 0..stride {
                    let i0 = start + off;
                    let i1 = i0 + stride;
                    let a0 = amps[i0];
                    let a1 = amps[i1];
                    amps[i0] = u00 * a0 + u01 * a1;
                    amps[i1] = u10 * a0 + u11 * a1;
                }
            }
        };
        // groups = 2^(n-1-p) >= 1 always, so the serial path covers all
        // cases. Thread spawning costs ~10-100µs; only parallelize when each
        // worker gets a large block (like qsim, threads pay off at ~18+
        // qubits).
        if threads <= 1 || groups < threads * (1 << 13) {
            work(&mut self.amps, 0, groups);
            return;
        }
        let chunk = groups.div_ceil(threads);
        let amps_ptr = SendPtr(self.amps.as_mut_ptr());
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let g0 = t * chunk;
                let g1 = ((t + 1) * chunk).min(groups);
                if g0 >= g1 {
                    break;
                }
                let ptr = amps_ptr;
                scope.spawn(move |_| {
                    // SAFETY: each group `g` touches only indices in
                    // [g << (p+1), (g+1) << (p+1)), and group ranges are
                    // disjoint across threads.
                    let amps = unsafe { std::slice::from_raw_parts_mut(ptr.get(), dim) };
                    work(amps, g0, g1);
                });
            }
        })
        .expect("state-vector worker thread panicked");
    }

    /// General k-qubit kernel: gather 2^k amplitudes, multiply, scatter.
    // Audited exception to the workspace `unsafe_code` deny: scoped
    // workers write disjoint amplitude groups (see SAFETY below).
    #[allow(unsafe_code)]
    fn apply_multi(&mut self, u: &CMatrix, qubits: &[usize], threads: usize) {
        let k = qubits.len();
        let dim = self.amps.len();
        let positions: Vec<usize> = qubits.iter().map(|&q| self.bit_pos(q)).collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        {
            let mut dedup = sorted.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), k, "repeated qubit in gate application");
        }
        let sub_dim = 1usize << k;
        let outer = dim >> k;
        let expand = |c: usize| -> usize {
            let mut idx = c;
            for &p in &sorted {
                idx = ((idx >> p) << (p + 1)) | (idx & ((1 << p) - 1));
            }
            idx
        };
        let offsets: Vec<usize> = (0..sub_dim)
            .map(|y| {
                let mut off = 0usize;
                for (i, &p) in positions.iter().enumerate() {
                    if (y >> (k - 1 - i)) & 1 == 1 {
                        off |= 1 << p;
                    }
                }
                off
            })
            .collect();
        let work = |amps: &mut [Complex], c0: usize, c1: usize| {
            let mut gathered = vec![C_ZERO; sub_dim];
            for c in c0..c1 {
                let base = expand(c);
                for (y, &off) in offsets.iter().enumerate() {
                    gathered[y] = amps[base | off];
                }
                for (row, &off) in offsets.iter().enumerate() {
                    let mut acc = C_ZERO;
                    for (col, &g) in gathered.iter().enumerate() {
                        acc += u[(row, col)] * g;
                    }
                    amps[base | off] = acc;
                }
            }
        };
        if threads <= 1 || outer < threads * (1 << 13) {
            work(&mut self.amps, 0, outer);
            return;
        }
        let chunk = outer.div_ceil(threads);
        let amps_ptr = SendPtr(self.amps.as_mut_ptr());
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let c0 = t * chunk;
                let c1 = ((t + 1) * chunk).min(outer);
                if c0 >= c1 {
                    break;
                }
                let ptr = amps_ptr;
                scope.spawn(move |_| {
                    // SAFETY: distinct compressed indices expand to disjoint
                    // amplitude groups.
                    let amps = unsafe { std::slice::from_raw_parts_mut(ptr.get(), dim) };
                    work(amps, c0, c1);
                });
            }
        })
        .expect("state-vector worker thread panicked");
    }

    /// Applies a diagonal operator given by its `2^k` diagonal entries.
    pub fn apply_diagonal(&mut self, diag: &[Complex], qubits: &[usize]) {
        let k = qubits.len();
        assert_eq!(diag.len(), 1 << k, "diagonal length mismatch");
        let positions: Vec<usize> = qubits.iter().map(|&q| self.bit_pos(q)).collect();
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            let mut x = 0usize;
            for &p in &positions {
                x = (x << 1) | ((idx >> p) & 1);
            }
            *amp *= diag[x];
        }
    }

    /// Applies a classical permutation of sub-basis states on `qubits`.
    pub fn apply_permutation(&mut self, table: &[usize], qubits: &[usize]) {
        let k = qubits.len();
        assert_eq!(table.len(), 1 << k, "permutation length mismatch");
        let positions: Vec<usize> = qubits.iter().map(|&q| self.bit_pos(q)).collect();
        let mut next = vec![C_ZERO; self.amps.len()];
        for (idx, &amp) in self.amps.iter().enumerate() {
            let mut x = 0usize;
            for &p in &positions {
                x = (x << 1) | ((idx >> p) & 1);
            }
            let y = table[x];
            let mut out = idx;
            for (i, &p) in positions.iter().enumerate() {
                let bit = (y >> (k - 1 - i)) & 1;
                out = (out & !(1 << p)) | (bit << p);
            }
            next[out] = amp;
        }
        self.amps = next;
    }

    /// The probability that `qubit` measures to 1.
    pub fn prob_one(&self, qubit: usize) -> f64 {
        let p = self.bit_pos(qubit);
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| (i >> p) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projects `qubit` onto `outcome` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has (numerically) zero probability.
    pub fn collapse(&mut self, qubit: usize, outcome: usize) {
        let p = self.bit_pos(qubit);
        for (i, a) in self.amps.iter_mut().enumerate() {
            if (i >> p) & 1 != outcome {
                *a = C_ZERO;
            }
        }
        self.normalize();
    }
}

/// A raw pointer wrapper that is `Send`, used to share the amplitude buffer
/// with scoped worker threads that write disjoint regions.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex);
// SAFETY (and the audited exception to the workspace `unsafe_code`
// deny): the pointer is only dereferenced inside `crossbeam::scope`,
// where the buffer outlives every worker and workers write disjoint
// index ranges.
#[allow(unsafe_code)]
const _: () = {
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}
};

impl SendPtr {
    /// Accessor method so closures capture the whole wrapper (which is
    /// `Send`) instead of the raw-pointer field (which is not).
    fn get(self) -> *mut Complex {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qkc_circuit::{Gate, ParamMap};

    fn gate(g: Gate) -> CMatrix {
        g.unitary(&ParamMap::new()).unwrap()
    }

    #[test]
    fn zero_state_has_unit_amplitude_at_origin() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.amplitude(0), C_ONE);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_qubit_gate_on_each_wire() {
        for q in 0..3 {
            let mut s = StateVector::zero_state(3);
            s.apply_gate(&gate(Gate::X), &[q]);
            let expect = 1usize << (2 - q);
            assert_eq!(s.amplitude(expect), C_ONE, "X on qubit {q}");
        }
    }

    #[test]
    fn bell_state_probabilities() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&gate(Gate::H), &[0]);
        s.apply_gate(&gate(Gate::Cnot), &[0, 1]);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multi_qubit_kernel_matches_reference_embedding() {
        use qkc_circuit::reference;
        let u = gate(Gate::Cnot);
        for (a, b) in [(0, 2), (2, 0), (1, 3), (3, 1)] {
            let mut s = StateVector::zero_state(4);
            // Prepare a non-trivial state first.
            for q in 0..4 {
                s.apply_gate(&gate(Gate::H), &[q]);
                s.apply_gate(&gate(Gate::T), &[q]);
            }
            let mut expect_state: Vec<Complex> = s.amplitudes().to_vec();
            let full = reference::embed_unitary(&u, &[a, b], 4);
            expect_state = full.mul_vec(&expect_state);
            s.apply_gate(&u, &[a, b]);
            for (i, &want) in expect_state.iter().enumerate() {
                assert!(
                    s.amplitude(i).approx_eq(want, 1e-10),
                    "mismatch at {i} for CNOT({a},{b})"
                );
            }
        }
    }

    #[test]
    fn diagonal_kernel_matches_dense() {
        let theta = 0.93;
        let zz = Gate::Zz(theta.into());
        let dense = zz.unitary(&ParamMap::new()).unwrap();
        let diag = zz.diagonal(&ParamMap::new()).unwrap();
        let mut a = StateVector::zero_state(3);
        let mut b = StateVector::zero_state(3);
        for q in 0..3 {
            a.apply_gate(&gate(Gate::H), &[q]);
            b.apply_gate(&gate(Gate::H), &[q]);
        }
        a.apply_gate(&dense, &[2, 0]);
        b.apply_diagonal(&diag, &[2, 0]);
        for i in 0..8 {
            assert!(a.amplitude(i).approx_eq(b.amplitude(i), 1e-12));
        }
    }

    #[test]
    fn permutation_kernel_swaps() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&gate(Gate::X), &[1]); // |01>
        s.apply_permutation(&[0, 2, 1, 3], &[0, 1]); // SWAP
        assert_eq!(s.amplitude(2), C_ONE); // |10>
    }

    #[test]
    fn threaded_matches_serial() {
        let mut serial = StateVector::zero_state(6);
        let mut par = StateVector::zero_state(6);
        let ops: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::H, vec![3]),
            (Gate::Cnot, vec![0, 4]),
            (Gate::T, vec![4]),
            (Gate::Cz, vec![3, 5]),
            (Gate::Ccx, vec![0, 3, 1]),
            (Gate::Rx(0.7.into()), vec![2]),
        ];
        for (g, qs) in &ops {
            let u = g.unitary(&ParamMap::new()).unwrap();
            serial.apply_gate(&u, qs);
            par.apply_gate_threaded(&u, qs, 8);
        }
        for i in 0..64 {
            assert!(serial.amplitude(i).approx_eq(par.amplitude(i), 1e-12));
        }
    }

    #[test]
    fn collapse_and_prob_one() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&gate(Gate::H), &[0]);
        s.apply_gate(&gate(Gate::Cnot), &[0, 1]);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
        s.collapse(0, 1);
        assert_eq!(s.amplitude(3), C_ONE);
        assert!((s.prob_one(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_of_orthogonal_states() {
        let a = StateVector::basis_state(2, 1);
        let b = StateVector::basis_state(2, 2);
        assert!(a.inner(&b).approx_zero(1e-15));
        assert!(a.inner(&a).approx_eq(C_ONE, 1e-15));
    }

    proptest! {
        #[test]
        fn gates_preserve_norm(
            seed_gates in proptest::collection::vec(0usize..6, 1..20),
            n in 2usize..6,
        ) {
            let mut s = StateVector::zero_state(n);
            for (i, &g) in seed_gates.iter().enumerate() {
                let q = i % n;
                let q2 = (i + 1) % n;
                match g {
                    0 => s.apply_gate(&gate(Gate::H), &[q]),
                    1 => s.apply_gate(&gate(Gate::T), &[q]),
                    2 => s.apply_gate(&gate(Gate::X), &[q]),
                    3 => s.apply_gate(&gate(Gate::Cnot), &[q, q2]),
                    4 => s.apply_gate(&gate(Gate::Cz), &[q, q2]),
                    _ => s.apply_gate(&gate(Gate::Rx(0.37.into())), &[q]),
                }
            }
            prop_assert!((s.norm() - 1.0).abs() < 1e-9);
        }
    }
}
