//! Symbolic gate parameters.
//!
//! Variational algorithms re-run the *same* circuit with different rotation
//! angles and noise strengths on every optimizer iteration (§2.3 trait 2).
//! Gates therefore carry a [`Param`] — either a constant or a named symbol —
//! and numeric values are supplied at simulation time through a [`ParamMap`].
//! The knowledge-compilation pipeline exploits this split: circuit structure
//! is compiled once, and only parameter values are re-bound across runs.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A gate parameter: a fixed constant or a named symbol resolved later.
///
/// # Examples
///
/// ```
/// use qkc_circuit::{Param, ParamMap};
///
/// let theta = Param::symbol("theta");
/// let mut params = ParamMap::new();
/// params.bind("theta", 0.25);
/// assert_eq!(theta.resolve(&params).unwrap(), 0.25);
/// assert_eq!(Param::from(1.5).resolve(&params).unwrap(), 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Param {
    /// A fixed numeric value.
    Const(f64),
    /// A named symbol whose value is provided by a [`ParamMap`].
    Sym(Arc<str>),
}

impl Param {
    /// Creates a symbolic parameter with the given name.
    pub fn symbol(name: impl AsRef<str>) -> Self {
        Param::Sym(Arc::from(name.as_ref()))
    }

    /// Returns the symbol name, if symbolic.
    pub fn symbol_name(&self) -> Option<&str> {
        match self {
            Param::Sym(s) => Some(s),
            Param::Const(_) => None,
        }
    }

    /// Returns `true` if this parameter is symbolic.
    pub fn is_symbolic(&self) -> bool {
        matches!(self, Param::Sym(_))
    }

    /// Resolves the parameter against `params`.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundParam`] if the parameter is a symbol missing from
    /// `params`.
    pub fn resolve(&self, params: &ParamMap) -> Result<f64, UnboundParam> {
        match self {
            Param::Const(v) => Ok(*v),
            Param::Sym(name) => params
                .get(name)
                .ok_or_else(|| UnboundParam { name: name.clone() }),
        }
    }
}

impl From<f64> for Param {
    fn from(v: f64) -> Self {
        Param::Const(v)
    }
}

impl From<&str> for Param {
    fn from(name: &str) -> Self {
        Param::symbol(name)
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Param::Const(v) => write!(f, "{v}"),
            Param::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// Error returned when resolving a symbol that has no bound value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundParam {
    name: Arc<str>,
}

impl UnboundParam {
    /// An unbound-symbol error for `name` (for callers that detect the
    /// missing binding themselves, e.g. gradient queries resolving their
    /// differentiation targets before evaluating).
    pub fn new(name: impl AsRef<str>) -> Self {
        Self {
            name: Arc::from(name.as_ref()),
        }
    }

    /// The name of the unbound symbol.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for UnboundParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parameter `{}` has no bound value", self.name)
    }
}

impl std::error::Error for UnboundParam {}

/// A binding of symbol names to numeric values.
///
/// Ordered (BTreeMap) so iteration — and therefore everything derived from a
/// binding, such as probe evaluations — is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamMap {
    values: BTreeMap<Arc<str>, f64>,
}

impl ParamMap {
    /// Creates an empty binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a binding from `(name, value)` pairs.
    ///
    /// ```
    /// use qkc_circuit::ParamMap;
    /// let p = ParamMap::from_pairs([("gamma", 0.3), ("beta", 0.7)]);
    /// assert_eq!(p.get("beta"), Some(0.7));
    /// ```
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, f64)>) -> Self {
        let mut m = Self::new();
        for (k, v) in pairs {
            m.bind(k, v);
        }
        m
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn bind(&mut self, name: impl AsRef<str>, value: f64) -> &mut Self {
        self.values.insert(Arc::from(name.as_ref()), value);
        self
    }

    /// Looks up a symbol's value.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Number of bound symbols.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no symbols are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    /// Builds a binding that maps every name in `symbols` to a fixed
    /// "generic" probe value derived from `seed`. Probe bindings are used to
    /// discover the zero/one/equality *structure* of parameter-dependent
    /// amplitude tables without committing to concrete parameter values.
    ///
    /// Probe values land in `(0.05, 0.30)` so they are simultaneously valid
    /// noise probabilities (even three summed stay below 1) and generic
    /// rotation angles (far from the multiples of π/2 where entries vanish).
    pub fn probe<'a>(symbols: impl IntoIterator<Item = &'a str>, seed: u64) -> Self {
        let mut m = Self::new();
        for (i, s) in symbols.into_iter().enumerate() {
            let raw = 0.577_215_664_901_532_9 * (i as f64 + 1.0)
                + 0.319_218_606_183_790_7 * (seed as f64 + 1.0) * 1.391;
            let v = 0.05 + 0.25 * raw.fract();
            m.bind(s, v);
        }
        m
    }
}

impl<'a> FromIterator<(&'a str, f64)> for ParamMap {
    fn from_iter<T: IntoIterator<Item = (&'a str, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_param_resolves_to_itself() {
        let p = Param::from(2.5);
        assert_eq!(p.resolve(&ParamMap::new()).unwrap(), 2.5);
        assert!(!p.is_symbolic());
    }

    #[test]
    fn symbol_resolution_and_error() {
        let p = Param::symbol("gamma");
        assert!(p.is_symbolic());
        assert_eq!(p.symbol_name(), Some("gamma"));
        let err = p.resolve(&ParamMap::new()).unwrap_err();
        assert_eq!(err.name(), "gamma");
        assert!(err.to_string().contains("gamma"));

        let mut m = ParamMap::new();
        m.bind("gamma", -0.5);
        assert_eq!(p.resolve(&m).unwrap(), -0.5);
    }

    #[test]
    fn param_map_rebinding_overwrites() {
        let mut m = ParamMap::new();
        m.bind("x", 1.0).bind("x", 2.0);
        assert_eq!(m.get("x"), Some(2.0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn probe_values_are_deterministic_and_distinct() {
        let a = ParamMap::probe(["t0", "t1", "t2"], 0);
        let b = ParamMap::probe(["t0", "t1", "t2"], 0);
        assert_eq!(a, b);
        let c = ParamMap::probe(["t0", "t1", "t2"], 1);
        assert_ne!(a, c);
        let vals: Vec<f64> = a.iter().map(|(_, v)| v).collect();
        assert!(vals.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn from_pairs_and_iter_round_trip() {
        let m = ParamMap::from_pairs([("b", 2.0), ("a", 1.0)]);
        let pairs: Vec<(&str, f64)> = m.iter().collect();
        assert_eq!(pairs, vec![("a", 1.0), ("b", 2.0)]);
    }
}
