//! Quantum circuit intermediate representation for the QKC toolchain.
//!
//! This crate plays the role Google Cirq plays in the paper's artifact: it
//! defines circuits over qubits with unitary gates ([`Gate`]), canonical
//! noise mixtures and channels ([`NoiseChannel`], paper Table 1), classical
//! reversible permutation oracles ([`PermutationOp`]), measurements, and
//! symbolic parameters ([`Param`]) that are re-bound across variational
//! iterations without rebuilding the circuit.
//!
//! The [`reference`] module is a deliberately naive simulator used as the
//! correctness oracle for every optimized backend in the workspace.
//!
//! # Examples
//!
//! ```
//! use qkc_circuit::{Circuit, Param, ParamMap, reference};
//!
//! // A parameterized circuit, evaluated at two different angles.
//! let mut c = Circuit::new(1);
//! c.rx(0, Param::symbol("theta"));
//! for theta in [0.3, 1.2] {
//!     let params = ParamMap::from_pairs([("theta", theta)]);
//!     let state = reference::run_pure(&c, &params).unwrap();
//!     let p1 = state[1].norm_sqr();
//!     assert!((p1 - (theta / 2.0).sin().powi(2)).abs() < 1e-12);
//! }
//! ```

#![forbid(unsafe_code)]

mod circuit;
mod decompose;
mod gate;
mod hash;
mod noise;
mod op;
mod param;
pub mod reference;

pub use circuit::{Circuit, CircuitError};
pub use decompose::GateSet;
pub use gate::{Gate, GateLayout};
pub use noise::NoiseChannel;
pub use op::{DiagonalOp, InvalidPermutation, Operation, PermutationOp};
pub use param::{Param, ParamMap, UnboundParam};
