//! Quantum noise models: mixtures and channels (paper Table 1).
//!
//! Every canonical model is expressed through its Kraus operators
//! `{E_k}` with `Σ_k E_k† E_k = I`. *Mixtures* (bit flip, phase flip,
//! depolarizing) have Kraus operators that are scaled unitaries
//! `√p_k · U_k` and can be simulated as probabilistic ensembles of state
//! vectors; *channels* (amplitude damping, phase damping, generalized
//! amplitude damping) cannot, and classically require the density-matrix
//! representation — or, in this toolchain, the Bayesian-network noise-RV
//! encoding of §3.1.2 where each Kraus index becomes a spurious-measurement
//! random variable.

use crate::param::{Param, ParamMap, UnboundParam};
use qkc_math::{CMatrix, Complex, C_ONE, C_ZERO};
use std::fmt;

/// A single-qubit noise model attached to a circuit location.
///
/// # Examples
///
/// ```
/// use qkc_circuit::{NoiseChannel, ParamMap};
///
/// let pd = NoiseChannel::phase_damping(0.36);
/// let kraus = pd.kraus(&ParamMap::new()).unwrap();
/// assert_eq!(kraus.len(), 2);
/// // E1 = [[0, 0], [0, sqrt(0.36)]]
/// assert!((kraus[1][(1, 1)].re - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseChannel {
    /// Pauli-X applied with probability `p` (a mixture).
    BitFlip {
        /// Probability of the flip.
        p: Param,
    },
    /// Pauli-Z applied with probability `p` (a mixture).
    PhaseFlip {
        /// Probability of the flip.
        p: Param,
    },
    /// Symmetric depolarizing: one of X, Y, Z each with probability `p/3`
    /// (a mixture). This is the noise model used in the paper's Figure 9
    /// benchmarks with `p = 0.5%` after each gate.
    Depolarizing {
        /// Total probability that any Pauli error occurs.
        p: Param,
    },
    /// Asymmetric depolarizing with independent X/Y/Z probabilities
    /// (a mixture).
    AsymmetricDepolarizing {
        /// Probability of a Pauli-X error.
        px: Param,
        /// Probability of a Pauli-Y error.
        py: Param,
        /// Probability of a Pauli-Z error.
        pz: Param,
    },
    /// Amplitude damping with decay probability `gamma` (a channel;
    /// models T1 relaxation).
    AmplitudeDamping {
        /// Probability of decay |1⟩ → |0⟩.
        gamma: Param,
    },
    /// Generalized amplitude damping toward a thermal state (a channel).
    GeneralizedAmplitudeDamping {
        /// Probability of coupling to the |0⟩-pulling environment.
        p: Param,
        /// Decay probability.
        gamma: Param,
    },
    /// Phase damping with probability `gamma` (a channel; models T2
    /// dephasing). This is the noise model in the paper's running Bell-state
    /// example (Figure 2, γ = 0.36).
    PhaseDamping {
        /// Probability that the environment learns the qubit's phase.
        gamma: Param,
    },
}

impl NoiseChannel {
    /// Bit-flip mixture with constant probability.
    pub fn bit_flip(p: f64) -> Self {
        NoiseChannel::BitFlip { p: Param::from(p) }
    }

    /// Phase-flip mixture with constant probability.
    pub fn phase_flip(p: f64) -> Self {
        NoiseChannel::PhaseFlip { p: Param::from(p) }
    }

    /// Symmetric depolarizing mixture with constant probability.
    pub fn depolarizing(p: f64) -> Self {
        NoiseChannel::Depolarizing { p: Param::from(p) }
    }

    /// Asymmetric depolarizing mixture with constant probabilities.
    pub fn asymmetric_depolarizing(px: f64, py: f64, pz: f64) -> Self {
        NoiseChannel::AsymmetricDepolarizing {
            px: Param::from(px),
            py: Param::from(py),
            pz: Param::from(pz),
        }
    }

    /// Amplitude-damping channel with constant decay probability.
    pub fn amplitude_damping(gamma: f64) -> Self {
        NoiseChannel::AmplitudeDamping {
            gamma: Param::from(gamma),
        }
    }

    /// Generalized amplitude damping with constant parameters.
    pub fn generalized_amplitude_damping(p: f64, gamma: f64) -> Self {
        NoiseChannel::GeneralizedAmplitudeDamping {
            p: Param::from(p),
            gamma: Param::from(gamma),
        }
    }

    /// Phase-damping channel with constant probability.
    pub fn phase_damping(gamma: f64) -> Self {
        NoiseChannel::PhaseDamping {
            gamma: Param::from(gamma),
        }
    }

    /// Returns `true` if this model is a *mixture* — an ensemble of scaled
    /// unitaries, simulable by state-vector trajectories without density
    /// matrices (Table 1, left column).
    pub fn is_mixture(&self) -> bool {
        matches!(
            self,
            NoiseChannel::BitFlip { .. }
                | NoiseChannel::PhaseFlip { .. }
                | NoiseChannel::Depolarizing { .. }
                | NoiseChannel::AsymmetricDepolarizing { .. }
        )
    }

    /// Number of Kraus operators (noise branches).
    pub fn num_branches(&self) -> usize {
        match self {
            NoiseChannel::BitFlip { .. }
            | NoiseChannel::PhaseFlip { .. }
            | NoiseChannel::AmplitudeDamping { .. }
            | NoiseChannel::PhaseDamping { .. } => 2,
            NoiseChannel::Depolarizing { .. }
            | NoiseChannel::AsymmetricDepolarizing { .. }
            | NoiseChannel::GeneralizedAmplitudeDamping { .. } => 4,
        }
    }

    /// The symbolic parameters mentioned by this model.
    pub fn symbols(&self) -> Vec<&str> {
        let params: Vec<&Param> = match self {
            NoiseChannel::BitFlip { p }
            | NoiseChannel::PhaseFlip { p }
            | NoiseChannel::Depolarizing { p } => vec![p],
            NoiseChannel::AsymmetricDepolarizing { px, py, pz } => vec![px, py, pz],
            NoiseChannel::AmplitudeDamping { gamma } | NoiseChannel::PhaseDamping { gamma } => {
                vec![gamma]
            }
            NoiseChannel::GeneralizedAmplitudeDamping { p, gamma } => vec![p, gamma],
        };
        params.iter().filter_map(|p| p.symbol_name()).collect()
    }

    /// The Kraus operators `{E_k}` of this model.
    ///
    /// # Errors
    ///
    /// Returns an error if a symbolic parameter is unbound, and panics if a
    /// resolved probability lies outside `[0, 1]`.
    pub fn kraus(&self, params: &ParamMap) -> Result<Vec<CMatrix>, UnboundParam> {
        let prob = |p: &Param| -> Result<f64, UnboundParam> {
            let v = p.resolve(params)?;
            assert!(
                (0.0..=1.0).contains(&v),
                "noise probability {v} outside [0, 1] in {self}"
            );
            Ok(v)
        };
        let paulis = |ws: [f64; 4]| -> Vec<CMatrix> {
            let i = CMatrix::identity(2);
            let x = CMatrix::from_rows(2, 2, vec![C_ZERO, C_ONE, C_ONE, C_ZERO]);
            let y = CMatrix::from_rows(
                2,
                2,
                vec![C_ZERO, Complex::imag(-1.0), Complex::imag(1.0), C_ZERO],
            );
            let z = CMatrix::from_rows(2, 2, vec![C_ONE, C_ZERO, C_ZERO, -C_ONE]);
            [i, x, y, z]
                .into_iter()
                .zip(ws)
                .map(|(m, w)| m.scale(Complex::real(w.sqrt())))
                .collect()
        };
        Ok(match self {
            NoiseChannel::BitFlip { p } => {
                let p = prob(p)?;
                let ops = paulis([1.0 - p, p, 0.0, 0.0]);
                vec![ops[0].clone(), ops[1].clone()]
            }
            NoiseChannel::PhaseFlip { p } => {
                let p = prob(p)?;
                let ops = paulis([1.0 - p, 0.0, 0.0, p]);
                vec![ops[0].clone(), ops[3].clone()]
            }
            NoiseChannel::Depolarizing { p } => {
                let p = prob(p)?;
                paulis([1.0 - p, p / 3.0, p / 3.0, p / 3.0])
            }
            NoiseChannel::AsymmetricDepolarizing { px, py, pz } => {
                let (px, py, pz) = (prob(px)?, prob(py)?, prob(pz)?);
                assert!(
                    px + py + pz <= 1.0 + 1e-12,
                    "asymmetric depolarizing probabilities sum past 1"
                );
                paulis([1.0 - px - py - pz, px, py, pz])
            }
            NoiseChannel::AmplitudeDamping { gamma } => {
                let g = prob(gamma)?;
                vec![
                    CMatrix::from_rows(
                        2,
                        2,
                        vec![C_ONE, C_ZERO, C_ZERO, Complex::real((1.0 - g).sqrt())],
                    ),
                    CMatrix::from_rows(2, 2, vec![C_ZERO, Complex::real(g.sqrt()), C_ZERO, C_ZERO]),
                ]
            }
            NoiseChannel::GeneralizedAmplitudeDamping { p, gamma } => {
                let (p, g) = (prob(p)?, prob(gamma)?);
                let sp = p.sqrt();
                let sq = (1.0 - p).sqrt();
                vec![
                    CMatrix::from_rows(
                        2,
                        2,
                        vec![C_ONE, C_ZERO, C_ZERO, Complex::real((1.0 - g).sqrt())],
                    )
                    .scale(Complex::real(sp)),
                    CMatrix::from_rows(2, 2, vec![C_ZERO, Complex::real(g.sqrt()), C_ZERO, C_ZERO])
                        .scale(Complex::real(sp)),
                    CMatrix::from_rows(
                        2,
                        2,
                        vec![Complex::real((1.0 - g).sqrt()), C_ZERO, C_ZERO, C_ONE],
                    )
                    .scale(Complex::real(sq)),
                    CMatrix::from_rows(2, 2, vec![C_ZERO, C_ZERO, Complex::real(g.sqrt()), C_ZERO])
                        .scale(Complex::real(sq)),
                ]
            }
            NoiseChannel::PhaseDamping { gamma } => {
                let g = prob(gamma)?;
                vec![
                    CMatrix::from_rows(
                        2,
                        2,
                        vec![C_ONE, C_ZERO, C_ZERO, Complex::real((1.0 - g).sqrt())],
                    ),
                    CMatrix::from_rows(2, 2, vec![C_ZERO, C_ZERO, C_ZERO, Complex::real(g.sqrt())]),
                ]
            }
        })
    }

    /// For mixtures only: the branch probabilities and unitaries
    /// `(p_k, U_k)` such that `E_k = √p_k · U_k`.
    ///
    /// # Errors
    ///
    /// Returns an error if a symbolic parameter is unbound.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-mixture channel.
    pub fn mixture(&self, params: &ParamMap) -> Result<Vec<(f64, CMatrix)>, UnboundParam> {
        assert!(self.is_mixture(), "{self} is not a unitary mixture");
        let kraus = self.kraus(params)?;
        Ok(kraus
            .into_iter()
            .map(|e| {
                // For mixtures each Kraus operator is √p·U; recover p from
                // the squared Frobenius norm divided by the dimension.
                let p = e.frobenius_norm().powi(2) / e.rows() as f64;
                let u = if p > 0.0 {
                    e.scale(Complex::real(1.0 / p.sqrt()))
                } else {
                    CMatrix::identity(e.rows())
                };
                (p, u)
            })
            .collect())
    }
}

impl fmt::Display for NoiseChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseChannel::BitFlip { p } => write!(f, "BitFlip({p})"),
            NoiseChannel::PhaseFlip { p } => write!(f, "PhaseFlip({p})"),
            NoiseChannel::Depolarizing { p } => write!(f, "Depol({p})"),
            NoiseChannel::AsymmetricDepolarizing { px, py, pz } => {
                write!(f, "AsymDepol({px},{py},{pz})")
            }
            NoiseChannel::AmplitudeDamping { gamma } => write!(f, "AD({gamma})"),
            NoiseChannel::GeneralizedAmplitudeDamping { p, gamma } => {
                write!(f, "GAD({p},{gamma})")
            }
            NoiseChannel::PhaseDamping { gamma } => write!(f, "PD({gamma})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_channels(p: f64) -> Vec<NoiseChannel> {
        vec![
            NoiseChannel::bit_flip(p),
            NoiseChannel::phase_flip(p),
            NoiseChannel::depolarizing(p),
            NoiseChannel::asymmetric_depolarizing(p / 2.0, p / 4.0, p / 4.0),
            NoiseChannel::amplitude_damping(p),
            NoiseChannel::generalized_amplitude_damping(0.3, p),
            NoiseChannel::phase_damping(p),
        ]
    }

    /// Σ E_k† E_k = I — the trace-preservation condition.
    fn completeness(ch: &NoiseChannel) -> bool {
        let kraus = ch.kraus(&ParamMap::new()).unwrap();
        let mut acc = CMatrix::zeros(2, 2);
        for e in &kraus {
            acc = &acc + &(&e.adjoint() * e);
        }
        acc.approx_eq(&CMatrix::identity(2), 1e-12)
    }

    #[test]
    fn all_channels_are_trace_preserving() {
        for p in [0.0, 0.005, 0.36, 1.0] {
            for ch in all_channels(p) {
                assert!(completeness(&ch), "{ch} at p={p} violates completeness");
            }
        }
    }

    #[test]
    fn mixture_classification_matches_table_1() {
        assert!(NoiseChannel::bit_flip(0.1).is_mixture());
        assert!(NoiseChannel::phase_flip(0.1).is_mixture());
        assert!(NoiseChannel::depolarizing(0.1).is_mixture());
        assert!(!NoiseChannel::amplitude_damping(0.1).is_mixture());
        assert!(!NoiseChannel::phase_damping(0.1).is_mixture());
        assert!(!NoiseChannel::generalized_amplitude_damping(0.2, 0.1).is_mixture());
    }

    #[test]
    fn phase_damping_matches_paper_example() {
        // γ = 0.36 from Figure 2: E0 = diag(1, 0.8), E1 = diag(0, 0.6).
        let kraus = NoiseChannel::phase_damping(0.36)
            .kraus(&ParamMap::new())
            .unwrap();
        assert!(kraus[0][(1, 1)].approx_eq(Complex::real(0.8), 1e-12));
        assert!(kraus[1][(1, 1)].approx_eq(Complex::real(0.6), 1e-12));
        assert!(kraus[1][(0, 0)].approx_eq(C_ZERO, 1e-12));
    }

    #[test]
    fn mixture_recovers_probabilities_and_unitaries() {
        let mix = NoiseChannel::depolarizing(0.3)
            .mixture(&ParamMap::new())
            .unwrap();
        let probs: Vec<f64> = mix.iter().map(|(p, _)| *p).collect();
        assert!((probs[0] - 0.7).abs() < 1e-12);
        for p in &probs[1..] {
            assert!((p - 0.1).abs() < 1e-12);
        }
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (_, u) in &mix {
            assert!(u.is_unitary(1e-12));
        }
    }

    #[test]
    fn symbolic_noise_strength_resolves() {
        let ch = NoiseChannel::PhaseDamping {
            gamma: Param::symbol("g"),
        };
        assert_eq!(ch.symbols(), vec!["g"]);
        assert!(ch.kraus(&ParamMap::new()).is_err());
        let mut m = ParamMap::new();
        m.bind("g", 0.36);
        let kraus = ch.kraus(&m).unwrap();
        assert!(kraus[0][(1, 1)].approx_eq(Complex::real(0.8), 1e-12));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_probability_panics() {
        let _ = NoiseChannel::bit_flip(1.5).kraus(&ParamMap::new());
    }

    #[test]
    fn branch_counts() {
        assert_eq!(NoiseChannel::bit_flip(0.1).num_branches(), 2);
        assert_eq!(NoiseChannel::depolarizing(0.1).num_branches(), 4);
        assert_eq!(
            NoiseChannel::generalized_amplitude_damping(0.2, 0.1).num_branches(),
            4
        );
        for ch in all_channels(0.25) {
            assert_eq!(
                ch.kraus(&ParamMap::new()).unwrap().len(),
                ch.num_branches(),
                "{ch}"
            );
        }
    }

    proptest! {
        #[test]
        fn completeness_holds_for_random_strengths(p in 0.0..1.0f64) {
            for ch in all_channels(p) {
                prop_assert!(completeness(&ch));
            }
        }
    }
}
