//! A deliberately simple reference simulator used as the correctness oracle.
//!
//! Everything here favors obviousness over speed: operators are embedded
//! into the full `2^n`-dimensional space as dense matrices and applied by
//! matrix multiplication. The optimized simulators (`qkc-statevector`,
//! `qkc-densitymatrix`, `qkc-tensornet`, and the knowledge-compilation
//! pipeline) are all differentially tested against this module.

use crate::circuit::{Circuit, CircuitError};
use crate::op::{DiagonalOp, Operation, PermutationOp};
use crate::param::ParamMap;
use qkc_math::{CMatrix, Complex, C_ONE, C_ZERO};

/// Returns the bit of `index` corresponding to `qubit` in an `n`-qubit
/// big-endian basis state (qubit 0 is the most significant bit).
#[inline]
pub fn basis_bit(index: usize, qubit: usize, n: usize) -> usize {
    (index >> (n - 1 - qubit)) & 1
}

/// Extracts the sub-index of `qubits` (in order, first most significant)
/// from the full basis index.
#[inline]
pub fn sub_index(index: usize, qubits: &[usize], n: usize) -> usize {
    qubits
        .iter()
        .fold(0, |acc, &q| (acc << 1) | basis_bit(index, q, n))
}

/// Replaces the bits of `qubits` inside `index` with the bits of `sub`.
#[inline]
pub fn with_sub_index(index: usize, qubits: &[usize], n: usize, sub: usize) -> usize {
    let mut out = index;
    for (i, &q) in qubits.iter().enumerate() {
        let bit = (sub >> (qubits.len() - 1 - i)) & 1;
        let pos = n - 1 - q;
        out = (out & !(1 << pos)) | (bit << pos);
    }
    out
}

/// Embeds a `2^k × 2^k` operator acting on `qubits` into the full
/// `2^n × 2^n` space.
///
/// # Panics
///
/// Panics if the operator dimension does not match `qubits.len()`.
pub fn embed_unitary(u: &CMatrix, qubits: &[usize], n: usize) -> CMatrix {
    let k = qubits.len();
    assert_eq!(u.rows(), 1 << k, "operator dimension mismatch");
    let dim = 1usize << n;
    let mut full = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        let x = sub_index(col, qubits, n);
        for y in 0..(1 << k) {
            let row = with_sub_index(col, qubits, n, y);
            full[(row, col)] = u[(y, x)];
        }
    }
    full
}

/// The unitary matrix of a diagonal phase operation.
pub fn diagonal_unitary(diag: &DiagonalOp) -> CMatrix {
    let dim = 1usize << diag.num_qubits();
    let mut m = CMatrix::zeros(dim, dim);
    for x in 0..dim {
        m[(x, x)] = diag.phase(x);
    }
    m
}

/// The unitary matrix of a classical permutation.
pub fn permutation_unitary(perm: &PermutationOp) -> CMatrix {
    let dim = 1usize << perm.num_qubits();
    let mut m = CMatrix::zeros(dim, dim);
    for input in 0..dim {
        m[(perm.apply(input), input)] = C_ONE;
    }
    m
}

/// Runs a noise-free circuit on `|0...0⟩` and returns the final state
/// vector.
///
/// # Errors
///
/// Returns an error if the circuit is noisy or a parameter is unbound.
pub fn run_pure(circuit: &Circuit, params: &ParamMap) -> Result<Vec<Complex>, CircuitError> {
    let u = circuit.unitary(params)?;
    let mut state = vec![C_ZERO; u.rows()];
    state[0] = C_ONE;
    Ok(u.mul_vec(&state))
}

/// Runs any circuit (noisy or not) on `|0...0⟩⟨0...0|` and returns the final
/// density matrix. Measurements dephase the measured qubit (deferred
/// measurement).
///
/// # Errors
///
/// Returns an error if a parameter is unbound.
pub fn run_density(circuit: &Circuit, params: &ParamMap) -> Result<CMatrix, CircuitError> {
    let n = circuit.num_qubits();
    let dim = 1usize << n;
    let mut rho = CMatrix::zeros(dim, dim);
    rho[(0, 0)] = C_ONE;
    for op in circuit.operations() {
        rho = match op {
            Operation::Gate { gate, qubits } => {
                let u = embed_unitary(
                    &gate.unitary(params).map_err(CircuitError::Unbound)?,
                    qubits,
                    n,
                );
                &(&u * &rho) * &u.adjoint()
            }
            Operation::Permutation { perm, qubits } => {
                let u = embed_unitary(&permutation_unitary(perm), qubits, n);
                &(&u * &rho) * &u.adjoint()
            }
            Operation::Diagonal { diag, qubits } => {
                let u = embed_unitary(&diagonal_unitary(diag), qubits, n);
                &(&u * &rho) * &u.adjoint()
            }
            Operation::Noise { channel, qubit } => {
                let mut next = CMatrix::zeros(dim, dim);
                for e in channel.kraus(params).map_err(CircuitError::Unbound)? {
                    let full = embed_unitary(&e, &[*qubit], n);
                    next = &next + &(&(&full * &rho) * &full.adjoint());
                }
                next
            }
            Operation::Measure { qubit } => {
                // Complete dephasing: project onto |0><0| and |1><1|.
                let p0 = CMatrix::from_rows(2, 2, vec![C_ONE, C_ZERO, C_ZERO, C_ZERO]);
                let p1 = CMatrix::from_rows(2, 2, vec![C_ZERO, C_ZERO, C_ZERO, C_ONE]);
                let mut next = CMatrix::zeros(dim, dim);
                for p in [p0, p1] {
                    let full = embed_unitary(&p, &[*qubit], n);
                    next = &next + &(&(&full * &rho) * &full.adjoint());
                }
                next
            }
        };
    }
    Ok(rho)
}

/// Born-rule probabilities of each basis state for a pure state.
pub fn pure_probabilities(state: &[Complex]) -> Vec<f64> {
    state.iter().map(|a| a.norm_sqr()).collect()
}

/// Measurement probabilities (the diagonal) of a density matrix.
pub fn density_probabilities(rho: &CMatrix) -> Vec<f64> {
    (0..rho.rows()).map(|i| rho[(i, i)].re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn bit_helpers_round_trip() {
        let n = 4;
        // index 0b1010: qubit0=1, qubit1=0, qubit2=1, qubit3=0.
        assert_eq!(basis_bit(0b1010, 0, n), 1);
        assert_eq!(basis_bit(0b1010, 1, n), 0);
        assert_eq!(basis_bit(0b1010, 2, n), 1);
        assert_eq!(sub_index(0b1010, &[0, 2], n), 0b11);
        assert_eq!(sub_index(0b1010, &[2, 0], n), 0b11);
        assert_eq!(sub_index(0b1010, &[1, 3], n), 0b00);
        assert_eq!(with_sub_index(0b0000, &[0, 2], n, 0b11), 0b1010);
        assert_eq!(with_sub_index(0b1111, &[0, 2], n, 0b00), 0b0101);
    }

    #[test]
    fn embed_on_non_adjacent_qubits() {
        // CNOT with control qubit 0 and target qubit 2 in a 3-qubit circuit.
        let u = Gate::Cnot.unitary(&ParamMap::new()).unwrap();
        let full = embed_unitary(&u, &[0, 2], 3);
        // |100> (=4) -> |101> (=5); |110> (=6) -> |111> (=7); |010> fixed.
        assert_eq!(full[(5, 4)], C_ONE);
        assert_eq!(full[(7, 6)], C_ONE);
        assert_eq!(full[(2, 2)], C_ONE);
        assert!(full.is_unitary(1e-12));
    }

    #[test]
    fn embed_reversed_qubit_order() {
        // CNOT with control qubit 1 and target qubit 0.
        let u = Gate::Cnot.unitary(&ParamMap::new()).unwrap();
        let full = embed_unitary(&u, &[1, 0], 2);
        // |01> (=1) -> |11> (=3).
        assert_eq!(full[(3, 1)], C_ONE);
        assert_eq!(full[(1, 3)], C_ONE);
        assert_eq!(full[(0, 0)], C_ONE);
    }

    #[test]
    fn ghz_state_from_reference_run() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2);
        let state = run_pure(&c, &ParamMap::new()).unwrap();
        let p = pure_probabilities(&state);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
        assert!(p[1..7].iter().all(|&x| x < 1e-12));
    }

    #[test]
    fn density_matches_paper_equation_3() {
        // Noisy Bell circuit of Figure 2: H, PD(0.36), CNOT.
        let mut c = Circuit::new(2);
        c.h(0).phase_damp(0, 0.36).cnot(0, 1);
        let rho = run_density(&c, &ParamMap::new()).unwrap();
        assert!(rho[(0, 0)].approx_eq(Complex::real(0.5), 1e-12));
        assert!(rho[(0, 3)].approx_eq(Complex::real(0.4), 1e-12));
        assert!(rho[(3, 0)].approx_eq(Complex::real(0.4), 1e-12));
        assert!(rho[(3, 3)].approx_eq(Complex::real(0.5), 1e-12));
        assert!(rho[(1, 1)].approx_eq(C_ZERO, 1e-12));
        assert!(rho.trace().approx_eq(C_ONE, 1e-12));
    }

    #[test]
    fn density_of_pure_circuit_is_projector() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let rho = run_density(&c, &ParamMap::new()).unwrap();
        let state = run_pure(&c, &ParamMap::new()).unwrap();
        for r in 0..4 {
            for cc in 0..4 {
                assert!(rho[(r, cc)].approx_eq(state[r] * state[cc].conj(), 1e-12));
            }
        }
    }

    #[test]
    fn measurement_dephases() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        let rho = run_density(&c, &ParamMap::new()).unwrap();
        assert!(rho[(0, 0)].approx_eq(Complex::real(0.5), 1e-12));
        assert!(rho[(0, 1)].approx_eq(C_ZERO, 1e-12));
    }

    #[test]
    fn depolarizing_contracts_bloch_vector() {
        let mut c = Circuit::new(1);
        c.h(0).depolarize(0, 0.5);
        let rho = run_density(&c, &ParamMap::new()).unwrap();
        // Off-diagonal shrinks by (1 - 4p/3) = 1/3.
        assert!(rho[(0, 1)].approx_eq(Complex::real(0.5 / 3.0), 1e-12));
        assert!(rho.trace().approx_eq(C_ONE, 1e-12));
    }
}
