//! Quantum gates and their unitary matrices.
//!
//! The gate set covers everything the paper's workloads use: the standard
//! one-qubit Cliffords and rotations, controlled gates, diagonal interaction
//! gates for QAOA/VQE, and three-qubit controlled gates for oracle circuits.
//!
//! Each gate reports a [`GateLayout`] describing its algebraic shape. The
//! Bayesian-network front-end (crate `qkc-bayesnet`) uses the layout to pick
//! the node-creation rule from §3.1.1 of the paper: dense single-qubit gates
//! become one dense conditional amplitude table; controlled gates create a
//! node only for the target; diagonal gates create a node for one designated
//! qubit; classical permutations create deterministic nodes.

use crate::param::{Param, ParamMap, UnboundParam};
use qkc_math::{CMatrix, Complex, C_ONE, C_ZERO, FRAC_1_SQRT_2};
use std::fmt;

/// A quantum gate (without target qubits; see
/// [`Operation`](crate::Operation) for a gate applied to qubits).
///
/// # Examples
///
/// ```
/// use qkc_circuit::{Gate, ParamMap};
///
/// let u = Gate::H.unitary(&ParamMap::new()).unwrap();
/// assert!(u.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// `T = diag(1, e^{iπ/4})`.
    T,
    /// `T† = diag(1, e^{-iπ/4})`.
    Tdg,
    /// Square root of X.
    SqrtX,
    /// Square root of Y.
    SqrtY,
    /// Rotation about X: `Rx(θ) = e^{-iθX/2}`.
    Rx(Param),
    /// Rotation about Y: `Ry(θ) = e^{-iθY/2}`.
    Ry(Param),
    /// Rotation about Z: `Rz(θ) = e^{-iθZ/2}`.
    Rz(Param),
    /// Phase rotation `diag(1, e^{iθ})`.
    Phase(Param),
    /// Controlled-NOT; qubit order is `(control, target)`.
    Cnot,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled phase `diag(1, 1, 1, e^{iθ})`.
    CPhase(Param),
    /// Ising interaction `ZZ(θ) = e^{-i(θ/2)·Z⊗Z}`
    /// `= diag(e^{-iθ/2}, e^{iθ/2}, e^{iθ/2}, e^{-iθ/2})`.
    Zz(Param),
    /// Swap two qubits.
    Swap,
    /// Toffoli; qubit order is `(control, control, target)`.
    Ccx,
    /// Doubly-controlled Z (symmetric).
    Ccz,
    /// Controlled swap (Fredkin); qubit order is `(control, a, b)`.
    Cswap,
    /// Controlled `Rz`; qubit order is `(control, target)`. Used by the
    /// quantum Fourier transform.
    CRz(Param),
}

/// The algebraic shape of a gate, driving the Bayesian-network translation
/// rule (§3.1.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateLayout {
    /// Dense 2×2 unitary on one qubit: one new BN node with one parent.
    Single,
    /// Diagonal in the computational basis on any number of qubits: one new
    /// BN node for the *last* qubit with every involved qubit as parent.
    Diagonal,
    /// `controls` control qubits followed by one target carrying a 2×2
    /// block: one new BN node for the target.
    ControlledSingle {
        /// Number of leading control qubits.
        controls: usize,
    },
    /// A classical permutation of basis states (0/1 entries): one new
    /// deterministic BN node per involved qubit.
    Permutation,
}

impl Gate {
    /// Number of qubits this gate acts on.
    pub fn num_qubits(&self) -> usize {
        use Gate::*;
        match self {
            I | X | Y | Z | H | S | Sdg | T | Tdg | SqrtX | SqrtY | Rx(_) | Ry(_) | Rz(_)
            | Phase(_) => 1,
            Cnot | Cz | CPhase(_) | Zz(_) | Swap | CRz(_) => 2,
            Ccx | Ccz | Cswap => 3,
        }
    }

    /// The structural layout used by the BN front-end.
    pub fn layout(&self) -> GateLayout {
        use Gate::*;
        match self {
            I | X | Y | Z | H | S | Sdg | T | Tdg | SqrtX | SqrtY | Rx(_) | Ry(_) | Rz(_)
            | Phase(_) => GateLayout::Single,
            Cnot | CRz(_) => GateLayout::ControlledSingle { controls: 1 },
            Ccx => GateLayout::ControlledSingle { controls: 2 },
            Cz | CPhase(_) | Zz(_) | Ccz => GateLayout::Diagonal,
            Swap | Cswap => GateLayout::Permutation,
        }
    }

    /// The symbolic parameters mentioned by this gate, if any.
    pub fn symbols(&self) -> Vec<&str> {
        use Gate::*;
        match self {
            Rx(p) | Ry(p) | Rz(p) | Phase(p) | CPhase(p) | Zz(p) | CRz(p) => {
                p.symbol_name().into_iter().collect()
            }
            _ => Vec::new(),
        }
    }

    /// Returns `true` if this gate depends on at least one symbol.
    pub fn is_parameterized(&self) -> bool {
        !self.symbols().is_empty()
    }

    /// The 2×2 block applied to the target when all controls are set, for
    /// [`GateLayout::ControlledSingle`] gates.
    ///
    /// # Errors
    ///
    /// Returns an error if a symbolic parameter is unbound.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not `ControlledSingle`.
    pub fn controlled_block(&self, params: &ParamMap) -> Result<CMatrix, UnboundParam> {
        match self {
            Gate::Cnot | Gate::Ccx => Ok(Gate::X.unitary(params)?),
            Gate::CRz(p) => Gate::Rz(p.clone()).unitary(params),
            other => panic!("{other} has no controlled-single block"),
        }
    }

    /// The full `2^k × 2^k` unitary matrix of this gate.
    ///
    /// Qubit order follows the gate's argument order, first qubit most
    /// significant (Cirq's big-endian convention).
    ///
    /// # Errors
    ///
    /// Returns an error if a symbolic parameter is unbound in `params`.
    pub fn unitary(&self, params: &ParamMap) -> Result<CMatrix, UnboundParam> {
        use Gate::*;
        let c = Complex::real;
        let m2 = |a, b, cc, d| CMatrix::from_rows(2, 2, vec![a, b, cc, d]);
        Ok(match self {
            I => CMatrix::identity(2),
            X => m2(C_ZERO, C_ONE, C_ONE, C_ZERO),
            Y => m2(C_ZERO, Complex::imag(-1.0), Complex::imag(1.0), C_ZERO),
            Z => m2(C_ONE, C_ZERO, C_ZERO, -C_ONE),
            H => m2(
                c(FRAC_1_SQRT_2),
                c(FRAC_1_SQRT_2),
                c(FRAC_1_SQRT_2),
                c(-FRAC_1_SQRT_2),
            ),
            S => m2(C_ONE, C_ZERO, C_ZERO, Complex::imag(1.0)),
            Sdg => m2(C_ONE, C_ZERO, C_ZERO, Complex::imag(-1.0)),
            T => m2(
                C_ONE,
                C_ZERO,
                C_ZERO,
                Complex::cis(std::f64::consts::FRAC_PI_4),
            ),
            Tdg => m2(
                C_ONE,
                C_ZERO,
                C_ZERO,
                Complex::cis(-std::f64::consts::FRAC_PI_4),
            ),
            SqrtX => {
                let a = Complex::new(0.5, 0.5);
                let b = Complex::new(0.5, -0.5);
                m2(a, b, b, a)
            }
            SqrtY => {
                let a = Complex::new(0.5, 0.5);
                m2(a, -a, a, a)
            }
            Rx(p) => {
                let t = p.resolve(params)? / 2.0;
                m2(
                    c(t.cos()),
                    Complex::imag(-t.sin()),
                    Complex::imag(-t.sin()),
                    c(t.cos()),
                )
            }
            Ry(p) => {
                let t = p.resolve(params)? / 2.0;
                m2(c(t.cos()), c(-t.sin()), c(t.sin()), c(t.cos()))
            }
            Rz(p) => {
                let t = p.resolve(params)? / 2.0;
                m2(Complex::cis(-t), C_ZERO, C_ZERO, Complex::cis(t))
            }
            Phase(p) => {
                let t = p.resolve(params)?;
                m2(C_ONE, C_ZERO, C_ZERO, Complex::cis(t))
            }
            Cnot => permutation_matrix(&[0, 1, 3, 2]),
            Cz => diagonal_matrix(&[C_ONE, C_ONE, C_ONE, -C_ONE]),
            CPhase(p) => {
                let t = p.resolve(params)?;
                diagonal_matrix(&[C_ONE, C_ONE, C_ONE, Complex::cis(t)])
            }
            Zz(p) => {
                let t = p.resolve(params)? / 2.0;
                let lo = Complex::cis(-t);
                let hi = Complex::cis(t);
                diagonal_matrix(&[lo, hi, hi, lo])
            }
            Swap => permutation_matrix(&[0, 2, 1, 3]),
            Ccx => permutation_matrix(&[0, 1, 2, 3, 4, 5, 7, 6]),
            Ccz => {
                let mut d = vec![C_ONE; 8];
                d[7] = -C_ONE;
                diagonal_matrix(&d)
            }
            Cswap => permutation_matrix(&[0, 1, 2, 3, 4, 6, 5, 7]),
            CRz(p) => {
                let t = p.resolve(params)? / 2.0;
                diagonal_matrix(&[C_ONE, C_ONE, Complex::cis(-t), Complex::cis(t)])
            }
        })
    }

    /// The elementwise derivative `∂U/∂symbol` of this gate's unitary with
    /// respect to the named symbolic parameter, or `None` when the gate
    /// does not mention the symbol.
    ///
    /// Every parameterized gate's entries are trigonometric polynomials of
    /// the angle, so the derivatives are closed-form — this is the ground
    /// truth the differentiable bind pipeline (CPT tangents → weight
    /// tangents → one-pass tape gradients) is built on, with no step-size
    /// error anywhere.
    ///
    /// # Errors
    ///
    /// Returns an error if the symbolic parameter is unbound in `params`.
    pub fn unitary_tangent(
        &self,
        params: &ParamMap,
        symbol: &str,
    ) -> Result<Option<CMatrix>, UnboundParam> {
        use Gate::*;
        let c = Complex::real;
        let m2 = |a, b, cc, d| CMatrix::from_rows(2, 2, vec![a, b, cc, d]);
        // i·z, the workhorse of every cis derivative.
        let rot = |z: Complex| Complex::new(-z.im, z.re);
        let (Rx(p) | Ry(p) | Rz(p) | Phase(p) | CPhase(p) | Zz(p) | CRz(p)) = self else {
            return Ok(None);
        };
        if p.symbol_name() != Some(symbol) {
            return Ok(None);
        }
        Ok(Some(match self {
            Rx(p) => {
                // d/dθ of [[cos t, -i sin t], [-i sin t, cos t]], t = θ/2.
                let t = p.resolve(params)? / 2.0;
                m2(
                    c(-0.5 * t.sin()),
                    Complex::imag(-0.5 * t.cos()),
                    Complex::imag(-0.5 * t.cos()),
                    c(-0.5 * t.sin()),
                )
            }
            Ry(p) => {
                let t = p.resolve(params)? / 2.0;
                m2(
                    c(-0.5 * t.sin()),
                    c(-0.5 * t.cos()),
                    c(0.5 * t.cos()),
                    c(-0.5 * t.sin()),
                )
            }
            Rz(p) => {
                // d/dθ e^{∓iθ/2} = ∓(i/2)·e^{∓iθ/2}.
                let t = p.resolve(params)? / 2.0;
                m2(
                    -rot(Complex::cis(-t)).scale(0.5),
                    C_ZERO,
                    C_ZERO,
                    rot(Complex::cis(t)).scale(0.5),
                )
            }
            Phase(p) => {
                let t = p.resolve(params)?;
                m2(C_ZERO, C_ZERO, C_ZERO, rot(Complex::cis(t)))
            }
            CPhase(p) => {
                let t = p.resolve(params)?;
                diagonal_matrix(&[C_ZERO, C_ZERO, C_ZERO, rot(Complex::cis(t))])
            }
            Zz(p) => {
                let t = p.resolve(params)? / 2.0;
                let lo = -rot(Complex::cis(-t)).scale(0.5);
                let hi = rot(Complex::cis(t)).scale(0.5);
                diagonal_matrix(&[lo, hi, hi, lo])
            }
            CRz(p) => {
                let t = p.resolve(params)? / 2.0;
                diagonal_matrix(&[
                    C_ZERO,
                    C_ZERO,
                    -rot(Complex::cis(-t)).scale(0.5),
                    rot(Complex::cis(t)).scale(0.5),
                ])
            }
            _ => unreachable!("parameterized gates handled above"),
        }))
    }

    /// The diagonal of the gate's unitary, for [`GateLayout::Diagonal`]
    /// gates.
    ///
    /// # Errors
    ///
    /// Returns an error if a symbolic parameter is unbound.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not diagonal.
    pub fn diagonal(&self, params: &ParamMap) -> Result<Vec<Complex>, UnboundParam> {
        assert_eq!(
            self.layout(),
            GateLayout::Diagonal,
            "{self} is not a diagonal gate"
        );
        let u = self.unitary(params)?;
        Ok((0..u.rows()).map(|i| u[(i, i)]).collect())
    }

    /// The basis-state permutation computed by this gate, for
    /// [`GateLayout::Permutation`] gates: `result[input] = output`.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not a classical permutation.
    pub fn permutation(&self) -> Vec<usize> {
        match self {
            Gate::Swap => vec![0, 2, 1, 3],
            Gate::Cswap => vec![0, 1, 2, 3, 4, 6, 5, 7],
            other => panic!("{other} is not a classical permutation gate"),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Gate::*;
        match self {
            I => write!(f, "I"),
            X => write!(f, "X"),
            Y => write!(f, "Y"),
            Z => write!(f, "Z"),
            H => write!(f, "H"),
            S => write!(f, "S"),
            Sdg => write!(f, "S†"),
            T => write!(f, "T"),
            Tdg => write!(f, "T†"),
            SqrtX => write!(f, "X^½"),
            SqrtY => write!(f, "Y^½"),
            Rx(p) => write!(f, "Rx({p})"),
            Ry(p) => write!(f, "Ry({p})"),
            Rz(p) => write!(f, "Rz({p})"),
            Phase(p) => write!(f, "P({p})"),
            Cnot => write!(f, "CNOT"),
            Cz => write!(f, "CZ"),
            CPhase(p) => write!(f, "CP({p})"),
            Zz(p) => write!(f, "ZZ({p})"),
            Swap => write!(f, "SWAP"),
            Ccx => write!(f, "CCX"),
            Ccz => write!(f, "CCZ"),
            Cswap => write!(f, "CSWAP"),
            CRz(p) => write!(f, "CRz({p})"),
        }
    }
}

/// Builds the unitary of a basis-state permutation: column `i` has a single
/// one in row `perm[i]`.
fn permutation_matrix(perm: &[usize]) -> CMatrix {
    let n = perm.len();
    let mut m = CMatrix::zeros(n, n);
    for (input, &output) in perm.iter().enumerate() {
        m[(output, input)] = C_ONE;
    }
    m
}

/// Builds a diagonal matrix from its diagonal entries.
fn diagonal_matrix(diag: &[Complex]) -> CMatrix {
    let n = diag.len();
    let mut m = CMatrix::zeros(n, n);
    for (i, &d) in diag.iter().enumerate() {
        m[(i, i)] = d;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_fixed_gates() -> Vec<Gate> {
        use Gate::*;
        vec![
            I, X, Y, Z, H, S, Sdg, T, Tdg, SqrtX, SqrtY, Cnot, Cz, Swap, Ccx, Ccz, Cswap,
        ]
    }

    fn all_param_gates(theta: f64) -> Vec<Gate> {
        use Gate::*;
        let p = Param::from(theta);
        vec![
            Rx(p.clone()),
            Ry(p.clone()),
            Rz(p.clone()),
            Phase(p.clone()),
            CPhase(p.clone()),
            Zz(p.clone()),
            CRz(p),
        ]
    }

    #[test]
    fn every_gate_is_unitary() {
        let empty = ParamMap::new();
        for g in all_fixed_gates().into_iter().chain(all_param_gates(0.37)) {
            let u = g.unitary(&empty).unwrap();
            assert!(u.is_unitary(1e-12), "{g} is not unitary");
            assert_eq!(u.rows(), 1 << g.num_qubits(), "{g} has wrong dimension");
        }
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        let empty = ParamMap::new();
        let sx = Gate::SqrtX.unitary(&empty).unwrap();
        let x = Gate::X.unitary(&empty).unwrap();
        assert!((&sx * &sx).approx_eq(&x, 1e-12));
        let sy = Gate::SqrtY.unitary(&empty).unwrap();
        let y = Gate::Y.unitary(&empty).unwrap();
        assert!((&sy * &sy).approx_eq(&y, 1e-12));
    }

    #[test]
    fn s_and_t_relate_to_phase() {
        let empty = ParamMap::new();
        let s = Gate::S.unitary(&empty).unwrap();
        let p = Gate::Phase(Param::from(std::f64::consts::FRAC_PI_2))
            .unitary(&empty)
            .unwrap();
        assert!(s.approx_eq(&p, 1e-12));
        let t = Gate::T.unitary(&empty).unwrap();
        assert!((&t * &t).approx_eq(&s, 1e-12));
    }

    #[test]
    fn hadamard_conjugates_z_to_x() {
        let empty = ParamMap::new();
        let h = Gate::H.unitary(&empty).unwrap();
        let z = Gate::Z.unitary(&empty).unwrap();
        let x = Gate::X.unitary(&empty).unwrap();
        assert!((&(&h * &z) * &h).approx_eq(&x, 1e-12));
    }

    #[test]
    fn cnot_truth_table() {
        let u = Gate::Cnot.unitary(&ParamMap::new()).unwrap();
        // |10> -> |11>, |11> -> |10>, others fixed.
        assert_eq!(u[(3, 2)], C_ONE);
        assert_eq!(u[(2, 3)], C_ONE);
        assert_eq!(u[(0, 0)], C_ONE);
        assert_eq!(u[(1, 1)], C_ONE);
    }

    #[test]
    fn zz_is_diagonal_ising_coupling() {
        let theta = 0.81;
        let u = Gate::Zz(Param::from(theta))
            .unitary(&ParamMap::new())
            .unwrap();
        assert!(u.is_diagonal(1e-15));
        assert!(u[(0, 0)].approx_eq(Complex::cis(-theta / 2.0), 1e-12));
        assert!(u[(1, 1)].approx_eq(Complex::cis(theta / 2.0), 1e-12));
        assert!(u[(3, 3)].approx_eq(Complex::cis(-theta / 2.0), 1e-12));
    }

    #[test]
    fn layouts_match_matrix_structure() {
        let empty = ParamMap::new();
        for g in all_fixed_gates().into_iter().chain(all_param_gates(0.53)) {
            let u = g.unitary(&empty).unwrap();
            match g.layout() {
                GateLayout::Single => assert_eq!(u.rows(), 2, "{g}"),
                GateLayout::Diagonal => assert!(u.is_diagonal(1e-12), "{g}"),
                GateLayout::Permutation => {
                    assert!(u.is_monomial(1e-12), "{g}");
                    let perm = g.permutation();
                    for (i, &p) in perm.iter().enumerate() {
                        assert_eq!(u[(p, i)], C_ONE, "{g} perm mismatch at {i}");
                    }
                }
                GateLayout::ControlledSingle { controls } => {
                    // Identity on every block where a control is 0.
                    let dim = u.rows();
                    let block = dim >> controls;
                    assert_eq!(block, 2, "{g}");
                    for r in 0..dim - 2 {
                        for c in 0..dim - 2 {
                            let expect = if r == c { C_ONE } else { C_ZERO };
                            assert!(u[(r, c)].approx_eq(expect, 1e-12), "{g} at ({r},{c})");
                        }
                    }
                    let blk = g.controlled_block(&empty).unwrap();
                    for r in 0..2 {
                        for c in 0..2 {
                            assert!(
                                u[(dim - 2 + r, dim - 2 + c)].approx_eq(blk[(r, c)], 1e-12),
                                "{g} block mismatch"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn symbolic_gate_reports_symbols_and_errors() {
        let g = Gate::Rz(Param::symbol("beta"));
        assert_eq!(g.symbols(), vec!["beta"]);
        assert!(g.is_parameterized());
        assert!(g.unitary(&ParamMap::new()).is_err());
        let mut m = ParamMap::new();
        m.bind("beta", 1.0);
        assert!(g.unitary(&m).is_ok());
    }

    #[test]
    fn rotation_composition_adds_angles() {
        let empty = ParamMap::new();
        let a = Gate::Rz(Param::from(0.3)).unitary(&empty).unwrap();
        let b = Gate::Rz(Param::from(0.4)).unitary(&empty).unwrap();
        let ab = Gate::Rz(Param::from(0.7)).unitary(&empty).unwrap();
        assert!((&a * &b).approx_eq(&ab, 1e-12));
    }

    fn all_symbolic_gates() -> Vec<Gate> {
        use Gate::*;
        let p = Param::symbol("th");
        vec![
            Rx(p.clone()),
            Ry(p.clone()),
            Rz(p.clone()),
            Phase(p.clone()),
            CPhase(p.clone()),
            Zz(p.clone()),
            CRz(p),
        ]
    }

    #[test]
    fn tangent_is_none_for_fixed_gates_and_foreign_symbols() {
        let empty = ParamMap::new();
        for g in all_fixed_gates() {
            assert_eq!(g.unitary_tangent(&empty, "th").unwrap(), None, "{g}");
        }
        let mut m = ParamMap::new();
        m.bind("th", 0.4);
        for g in all_symbolic_gates() {
            assert_eq!(g.unitary_tangent(&m, "other").unwrap(), None, "{g}");
            assert!(g.unitary_tangent(&m, "th").unwrap().is_some(), "{g}");
        }
        // Constant-angle parameterized gates depend on no symbol at all.
        let g = Gate::Rx(Param::from(0.3));
        assert_eq!(g.unitary_tangent(&empty, "th").unwrap(), None);
    }

    proptest! {
        #[test]
        fn unitary_tangent_matches_finite_differences(theta in -6.0..6.0f64) {
            // The closed forms must agree with a high-order central
            // difference of the unitary entry-by-entry.
            let h = 1e-5;
            for g in all_symbolic_gates() {
                let at = |t: f64| {
                    let mut m = ParamMap::new();
                    m.bind("th", t);
                    g.unitary(&m).unwrap()
                };
                let mut m = ParamMap::new();
                m.bind("th", theta);
                let got = g.unitary_tangent(&m, "th").unwrap().unwrap();
                let (up, dn) = (at(theta + h), at(theta - h));
                for r in 0..got.rows() {
                    for c in 0..got.cols() {
                        let fd = (up[(r, c)] - dn[(r, c)]).scale(1.0 / (2.0 * h));
                        prop_assert!(
                            got[(r, c)].approx_eq(fd, 1e-7),
                            "{g} entry ({r},{c}): {:?} vs fd {:?}",
                            got[(r, c)],
                            fd
                        );
                    }
                }
            }
        }

        #[test]
        fn parameterized_gates_stay_unitary(theta in -10.0..10.0f64) {
            let empty = ParamMap::new();
            for g in all_param_gates(theta) {
                prop_assert!(g.unitary(&empty).unwrap().is_unitary(1e-10));
            }
        }

        #[test]
        fn rx_matches_exponential_form(theta in -6.0..6.0f64) {
            // Rx(θ) = cos(θ/2) I - i sin(θ/2) X
            let empty = ParamMap::new();
            let rx = Gate::Rx(Param::from(theta)).unitary(&empty).unwrap();
            let x = Gate::X.unitary(&empty).unwrap();
            let id = CMatrix::identity(2);
            let want = &id.scale(Complex::real((theta / 2.0).cos()))
                + &x.scale(Complex::imag(-(theta / 2.0).sin()));
            prop_assert!(rx.approx_eq(&want, 1e-10));
        }
    }
}
