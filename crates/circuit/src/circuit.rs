//! The circuit container and its builder interface.

use crate::gate::Gate;
use crate::noise::NoiseChannel;
use crate::op::{Operation, PermutationOp};
use crate::param::{Param, ParamMap};
use crate::reference;
use qkc_math::CMatrix;
use std::collections::BTreeSet;
use std::fmt;

/// An ordered sequence of operations on `num_qubits` qubits.
///
/// Qubits are indexed `0..num_qubits`; basis-state indices are big-endian
/// (qubit 0 is the most significant bit), matching Cirq's convention.
///
/// # Examples
///
/// ```
/// use qkc_circuit::Circuit;
///
/// // The noisy Bell-state circuit from Figure 2 of the paper.
/// let mut c = Circuit::new(2);
/// c.h(0).phase_damp(0, 0.36).cnot(0, 1);
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.num_operations(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "a circuit needs at least one qubit");
        Self {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// All operations in order.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Total number of operations (gates + noise + permutations + measures).
    pub fn num_operations(&self) -> usize {
        self.ops.len()
    }

    /// Number of unitary operations (gates and permutations).
    pub fn num_gates(&self) -> usize {
        self.ops.iter().filter(|o| o.is_unitary()).count()
    }

    /// Number of noise operations.
    pub fn num_noise_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_noise()).count()
    }

    /// Number of measurement operations.
    pub fn num_measurements(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Operation::Measure { .. }))
            .count()
    }

    /// Circuit depth under greedy moment packing: the length of the longest
    /// chain of operations sharing qubits.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let qs = op.qubits();
            let d = 1 + qs.iter().map(|&q| frontier[q]).max().unwrap_or(0);
            for q in qs {
                frontier[q] = d;
            }
            depth = depth.max(d);
        }
        depth
    }

    /// Number of operations touching each qubit — the paper's
    /// "operations per qubit" metric for wide-shallow circuits.
    pub fn ops_per_qubit(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_qubits];
        for op in &self.ops {
            for q in op.qubits() {
                counts[q] += 1;
            }
        }
        counts
    }

    /// Every symbolic parameter name mentioned in the circuit, sorted.
    pub fn symbols(&self) -> BTreeSet<String> {
        self.ops
            .iter()
            .flat_map(|o| o.symbols())
            .map(str::to_owned)
            .collect()
    }

    /// Appends an arbitrary operation after validating its qubits.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range, qubits repeat, or the
    /// operand count does not match the gate arity.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        let qs = op.qubits();
        let expected = match &op {
            Operation::Gate { gate, .. } => Some(gate.num_qubits()),
            Operation::Permutation { perm, .. } => Some(perm.num_qubits()),
            Operation::Diagonal { diag, .. } => Some(diag.num_qubits()),
            _ => None,
        };
        if let Some(e) = expected {
            assert_eq!(
                qs.len(),
                e,
                "operation {op} expects {e} qubits, got {}",
                qs.len()
            );
        }
        let mut seen = BTreeSet::new();
        for &q in &qs {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.num_qubits
            );
            assert!(seen.insert(q), "operation {op} repeats qubit {q}");
        }
        self.ops.push(op);
        self
    }

    /// Appends a gate.
    pub fn gate(&mut self, gate: Gate, qubits: impl Into<Vec<usize>>) -> &mut Self {
        self.push(Operation::Gate {
            gate,
            qubits: qubits.into(),
        })
    }

    /// Appends a classical permutation.
    pub fn permutation(&mut self, perm: PermutationOp, qubits: impl Into<Vec<usize>>) -> &mut Self {
        self.push(Operation::Permutation {
            perm,
            qubits: qubits.into(),
        })
    }

    /// Appends a diagonal phase operation.
    pub fn diagonal(
        &mut self,
        diag: crate::DiagonalOp,
        qubits: impl Into<Vec<usize>>,
    ) -> &mut Self {
        self.push(Operation::Diagonal {
            diag,
            qubits: qubits.into(),
        })
    }

    /// Appends a noise operation.
    pub fn noise(&mut self, channel: NoiseChannel, qubit: usize) -> &mut Self {
        self.push(Operation::Noise { channel, qubit })
    }

    /// Appends a computational-basis measurement.
    pub fn measure(&mut self, qubit: usize) -> &mut Self {
        self.push(Operation::Measure { qubit })
    }

    // ---- single-qubit gate shorthands ----

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X, [q])
    }

    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Y, [q])
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Z, [q])
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H, [q])
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::S, [q])
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::T, [q])
    }

    /// Appends an X-rotation.
    pub fn rx(&mut self, q: usize, theta: impl Into<Param>) -> &mut Self {
        self.gate(Gate::Rx(theta.into()), [q])
    }

    /// Appends a Y-rotation.
    pub fn ry(&mut self, q: usize, theta: impl Into<Param>) -> &mut Self {
        self.gate(Gate::Ry(theta.into()), [q])
    }

    /// Appends a Z-rotation.
    pub fn rz(&mut self, q: usize, theta: impl Into<Param>) -> &mut Self {
        self.gate(Gate::Rz(theta.into()), [q])
    }

    /// Appends a phase gate `diag(1, e^{iθ})`.
    pub fn phase(&mut self, q: usize, theta: impl Into<Param>) -> &mut Self {
        self.gate(Gate::Phase(theta.into()), [q])
    }

    // ---- multi-qubit gate shorthands ----

    /// Appends a CNOT with the given control and target.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.gate(Gate::Cnot, [control, target])
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Cz, [a, b])
    }

    /// Appends a controlled phase.
    pub fn cphase(&mut self, control: usize, target: usize, theta: impl Into<Param>) -> &mut Self {
        self.gate(Gate::CPhase(theta.into()), [control, target])
    }

    /// Appends a controlled Rz.
    pub fn crz(&mut self, control: usize, target: usize, theta: impl Into<Param>) -> &mut Self {
        self.gate(Gate::CRz(theta.into()), [control, target])
    }

    /// Appends an Ising `ZZ(θ)` interaction.
    pub fn zz(&mut self, a: usize, b: usize, theta: impl Into<Param>) -> &mut Self {
        self.gate(Gate::Zz(theta.into()), [a, b])
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Swap, [a, b])
    }

    /// Appends a Toffoli gate.
    pub fn ccx(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.gate(Gate::Ccx, [c1, c2, target])
    }

    /// Appends a doubly-controlled Z.
    pub fn ccz(&mut self, a: usize, b: usize, c: usize) -> &mut Self {
        self.gate(Gate::Ccz, [a, b, c])
    }

    // ---- noise shorthands ----

    /// Appends bit-flip noise.
    pub fn bit_flip(&mut self, q: usize, p: f64) -> &mut Self {
        self.noise(NoiseChannel::bit_flip(p), q)
    }

    /// Appends phase-flip noise.
    pub fn phase_flip(&mut self, q: usize, p: f64) -> &mut Self {
        self.noise(NoiseChannel::phase_flip(p), q)
    }

    /// Appends symmetric depolarizing noise.
    pub fn depolarize(&mut self, q: usize, p: f64) -> &mut Self {
        self.noise(NoiseChannel::depolarizing(p), q)
    }

    /// Appends amplitude-damping noise.
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64) -> &mut Self {
        self.noise(NoiseChannel::amplitude_damping(gamma), q)
    }

    /// Appends phase-damping noise.
    pub fn phase_damp(&mut self, q: usize, gamma: f64) -> &mut Self {
        self.noise(NoiseChannel::phase_damping(gamma), q)
    }

    /// Returns a copy with `channel` inserted on every qubit touched by each
    /// unitary operation, immediately after it — the paper's benchmark noise
    /// model ("0.5% depolarizing after each gate", §4.2).
    pub fn with_noise_after_each_gate(&self, channel: &NoiseChannel) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for op in &self.ops {
            out.ops.push(op.clone());
            if op.is_unitary() {
                for q in op.qubits() {
                    out.ops.push(Operation::Noise {
                        channel: channel.clone(),
                        qubit: q,
                    });
                }
            }
        }
        out
    }

    /// Returns `true` if the circuit contains noise or measurement
    /// operations (and therefore has no single overall unitary).
    pub fn is_noisy(&self) -> bool {
        self.ops.iter().any(|o| !o.is_unitary())
    }

    /// The full `2^n × 2^n` unitary of a noise-free circuit, built by the
    /// reference simulator. Intended for validation on small `n`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotUnitary`] if the circuit contains noise or
    /// measurements, or [`CircuitError::Unbound`] if a symbol is missing
    /// from `params`.
    pub fn unitary(&self, params: &ParamMap) -> Result<CMatrix, CircuitError> {
        if self.is_noisy() {
            return Err(CircuitError::NotUnitary);
        }
        let dim = 1usize << self.num_qubits;
        let mut u = CMatrix::identity(dim);
        for op in &self.ops {
            let full = match op {
                Operation::Gate { gate, qubits } => reference::embed_unitary(
                    &gate.unitary(params).map_err(CircuitError::Unbound)?,
                    qubits,
                    self.num_qubits,
                ),
                Operation::Permutation { perm, qubits } => reference::embed_unitary(
                    &reference::permutation_unitary(perm),
                    qubits,
                    self.num_qubits,
                ),
                Operation::Diagonal { diag, qubits } => reference::embed_unitary(
                    &reference::diagonal_unitary(diag),
                    qubits,
                    self.num_qubits,
                ),
                _ => unreachable!("noisy ops rejected above"),
            };
            u = &full * &u;
        }
        Ok(u)
    }
}

/// Errors from whole-circuit queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The circuit contains noise or measurement and has no unitary.
    NotUnitary,
    /// A symbolic parameter was unbound.
    Unbound(crate::param::UnboundParam),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::NotUnitary => {
                write!(f, "circuit contains noise or measurement operations")
            }
            CircuitError::Unbound(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CircuitError {}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit({} qubits, {} ops)",
            self.num_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_math::{Complex, C_ONE};

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).depolarize(1, 0.01).measure(2);
        assert_eq!(c.num_operations(), 4);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_noise_ops(), 1);
        assert_eq!(c.num_measurements(), 1);
        assert!(c.is_noisy());
    }

    #[test]
    fn depth_packs_parallel_gates() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // all parallel: depth 1
        assert_eq!(c.depth(), 1);
        c.cnot(0, 1).cnot(2, 3); // parallel pair: depth 2
        assert_eq!(c.depth(), 2);
        c.cnot(1, 2); // chains across both pairs: depth 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn ops_per_qubit_counts_touches() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).z(1);
        assert_eq!(c.ops_per_qubit(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_qubit_panics() {
        Circuit::new(2).h(2);
    }

    #[test]
    #[should_panic(expected = "repeats qubit")]
    fn repeated_qubit_panics() {
        Circuit::new(2).cnot(1, 1);
    }

    #[test]
    fn bell_circuit_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let u = c.unitary(&ParamMap::new()).unwrap();
        // Column 0 is the Bell state (|00> + |11>)/√2.
        let s = Complex::real(std::f64::consts::FRAC_1_SQRT_2);
        assert!(u[(0, 0)].approx_eq(s, 1e-12));
        assert!(u[(3, 0)].approx_eq(s, 1e-12));
        assert!(u[(1, 0)].approx_eq(qkc_math::C_ZERO, 1e-12));
    }

    #[test]
    fn unitary_rejects_noisy_circuit() {
        let mut c = Circuit::new(1);
        c.h(0).bit_flip(0, 0.1);
        assert_eq!(c.unitary(&ParamMap::new()), Err(CircuitError::NotUnitary));
    }

    #[test]
    fn noise_insertion_after_each_gate() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let noisy = c.with_noise_after_each_gate(&NoiseChannel::depolarizing(0.005));
        // H -> 1 noise op; CNOT -> 2 noise ops.
        assert_eq!(noisy.num_noise_ops(), 3);
        assert_eq!(noisy.num_gates(), 2);
        // Noise directly follows its gate.
        assert!(noisy.operations()[1].is_noise());
    }

    #[test]
    fn symbols_are_collected_sorted() {
        let mut c = Circuit::new(2);
        c.rz(0, Param::symbol("gamma"))
            .rx(1, Param::symbol("beta"))
            .rz(1, Param::symbol("gamma"));
        let syms: Vec<String> = c.symbols().into_iter().collect();
        assert_eq!(syms, vec!["beta".to_string(), "gamma".to_string()]);
    }

    #[test]
    fn swap_unitary_via_permutation_matches_gate() {
        let mut a = Circuit::new(2);
        a.swap(0, 1);
        let mut b = Circuit::new(2);
        b.cnot(0, 1).cnot(1, 0).cnot(0, 1);
        let ua = a.unitary(&ParamMap::new()).unwrap();
        let ub = b.unitary(&ParamMap::new()).unwrap();
        assert!(ua.approx_eq(&ub, 1e-12));
        assert_eq!(ua[(0, 0)], C_ONE);
    }
}
