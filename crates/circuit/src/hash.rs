//! Structural hashing of circuits.
//!
//! The knowledge-compilation pipeline's cost split is *structure* (compiled
//! once) versus *parameter values* (re-bound every iteration). A circuit's
//! [`structural hash`](crate::Circuit::structural_hash) keys exactly the
//! structural half: gate kinds, qubit wiring, noise channels, oracles, and
//! measurement placement, with **symbolic** parameters hashed by name only.
//! Two circuits with equal hashes compile to interchangeable artifacts, so
//! an artifact cache (see the `qkc-engine` crate) can serve every iteration
//! of a variational sweep from one compilation.
//!
//! Constant parameters *are* hashed by value: the pipeline's probe machinery
//! specializes the encoding to the zero/one structure of concrete entries
//! (a rotation by exactly 0 encodes differently from one by 0.3), so
//! differing constants must miss the cache. Rebinding a symbolic circuit
//! with a different [`ParamMap`](crate::ParamMap) does not change the hash —
//! that is the cache-hit case the paper's economics depend on.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::noise::NoiseChannel;
use crate::op::Operation;
use crate::param::Param;
use std::hash::{Hash, Hasher};

fn hash_param<H: Hasher>(p: &Param, state: &mut H) {
    match p {
        Param::Const(v) => {
            state.write_u8(0);
            state.write_u64(v.to_bits());
        }
        Param::Sym(name) => {
            state.write_u8(1);
            name.as_bytes().hash(state);
        }
    }
}

fn hash_gate<H: Hasher>(gate: &Gate, state: &mut H) {
    use Gate::*;
    let (tag, params): (u8, &[&Param]) = match gate {
        I => (0, &[]),
        X => (1, &[]),
        Y => (2, &[]),
        Z => (3, &[]),
        H => (4, &[]),
        S => (5, &[]),
        Sdg => (6, &[]),
        T => (7, &[]),
        Tdg => (8, &[]),
        SqrtX => (9, &[]),
        SqrtY => (10, &[]),
        Rx(p) => (11, &[p]),
        Ry(p) => (12, &[p]),
        Rz(p) => (13, &[p]),
        Phase(p) => (14, &[p]),
        Cnot => (15, &[]),
        Cz => (16, &[]),
        CPhase(p) => (17, &[p]),
        Zz(p) => (18, &[p]),
        Swap => (19, &[]),
        Ccx => (20, &[]),
        Ccz => (21, &[]),
        Cswap => (22, &[]),
        CRz(p) => (23, &[p]),
    };
    state.write_u8(tag);
    for p in params {
        hash_param(p, state);
    }
}

fn hash_noise<H: Hasher>(channel: &NoiseChannel, state: &mut H) {
    use NoiseChannel::*;
    let (tag, params): (u8, &[&Param]) = match channel {
        BitFlip { p } => (0, &[p]),
        PhaseFlip { p } => (1, &[p]),
        Depolarizing { p } => (2, &[p]),
        AsymmetricDepolarizing { px, py, pz } => (3, &[px, py, pz]),
        AmplitudeDamping { gamma } => (4, &[gamma]),
        GeneralizedAmplitudeDamping { p, gamma } => (5, &[p, gamma]),
        PhaseDamping { gamma } => (6, &[gamma]),
    };
    state.write_u8(tag);
    for p in params {
        hash_param(p, state);
    }
}

fn hash_operation<H: Hasher>(op: &Operation, state: &mut H) {
    match op {
        Operation::Gate { gate, qubits } => {
            state.write_u8(0);
            hash_gate(gate, state);
            qubits.hash(state);
        }
        Operation::Noise { channel, qubit } => {
            state.write_u8(1);
            hash_noise(channel, state);
            state.write_usize(*qubit);
        }
        Operation::Permutation { perm, qubits } => {
            state.write_u8(2);
            perm.name().as_bytes().hash(state);
            perm.table().hash(state);
            qubits.hash(state);
        }
        Operation::Diagonal { diag, qubits } => {
            state.write_u8(3);
            diag.name().as_bytes().hash(state);
            for phi in diag.phase_angles() {
                state.write_u64(phi.to_bits());
            }
            qubits.hash(state);
        }
        Operation::Measure { qubit } => {
            state.write_u8(4);
            state.write_usize(*qubit);
        }
    }
}

impl Circuit {
    /// A 64-bit hash of the circuit's compile-relevant structure: qubit
    /// count, operation sequence, qubit wiring, gate/noise/oracle kinds,
    /// constant parameter values (by bit pattern), and symbolic parameter
    /// *names* (never their bound values).
    ///
    /// Circuits that differ only in the [`ParamMap`](crate::ParamMap) they
    /// will later be bound with hash identically — the property that lets a
    /// compile-once cache serve a whole variational parameter sweep.
    ///
    /// The hash is stable within a process run; it is not a cross-version
    /// serialization format.
    ///
    /// # Examples
    ///
    /// ```
    /// use qkc_circuit::{Circuit, Param};
    ///
    /// let mut a = Circuit::new(2);
    /// a.rx(0, Param::symbol("theta")).cnot(0, 1);
    /// let mut b = Circuit::new(2);
    /// b.rx(0, Param::symbol("theta")).cnot(0, 1);
    /// assert_eq!(a.structural_hash(), b.structural_hash());
    ///
    /// let mut c = Circuit::new(2);
    /// c.rx(0, Param::symbol("theta")).cnot(1, 0); // rewired
    /// assert_ne!(a.structural_hash(), c.structural_hash());
    /// ```
    pub fn structural_hash(&self) -> u64 {
        let mut state = std::collections::hash_map::DefaultHasher::new();
        state.write_usize(self.num_qubits());
        state.write_usize(self.num_operations());
        for op in self.operations() {
            hash_operation(op, &mut state);
        }
        state.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Circuit, NoiseChannel, Param, PermutationOp};

    fn bell_with(theta: Param) -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).rx(0, theta).cnot(0, 1);
        c
    }

    #[test]
    fn equal_structure_equal_hash() {
        assert_eq!(
            bell_with(Param::symbol("t")).structural_hash(),
            bell_with(Param::symbol("t")).structural_hash()
        );
    }

    #[test]
    fn symbol_name_is_structural_but_binding_is_not() {
        let a = bell_with(Param::symbol("t")).structural_hash();
        let b = bell_with(Param::symbol("u")).structural_hash();
        assert_ne!(a, b, "renamed symbol changes the key");
    }

    #[test]
    fn constant_value_is_structural() {
        let a = bell_with(Param::from(0.3)).structural_hash();
        let b = bell_with(Param::from(0.4)).structural_hash();
        assert_ne!(a, b, "probe specialization depends on constant values");
    }

    #[test]
    fn gate_kind_qubits_and_order_are_structural() {
        let mut h_then_x = Circuit::new(2);
        h_then_x.h(0).x(1);
        let mut x_then_h = Circuit::new(2);
        x_then_h.x(1).h(0);
        assert_ne!(h_then_x.structural_hash(), x_then_h.structural_hash());

        let mut cnot01 = Circuit::new(2);
        cnot01.cnot(0, 1);
        let mut cnot10 = Circuit::new(2);
        cnot10.cnot(1, 0);
        assert_ne!(cnot01.structural_hash(), cnot10.structural_hash());
    }

    #[test]
    fn noise_channel_and_strength_are_structural() {
        let mut base = Circuit::new(1);
        base.h(0);
        let mut damp = base.clone();
        damp.phase_damp(0, 0.36);
        let mut damp_other = base.clone();
        damp_other.phase_damp(0, 0.2);
        let mut flip = base.clone();
        flip.noise(NoiseChannel::bit_flip(0.36), 0);
        let hashes = [
            base.structural_hash(),
            damp.structural_hash(),
            damp_other.structural_hash(),
            flip.structural_hash(),
        ];
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn qubit_count_is_structural() {
        let mut two = Circuit::new(2);
        two.h(0);
        let mut three = Circuit::new(3);
        three.h(0);
        assert_ne!(two.structural_hash(), three.structural_hash());
    }

    #[test]
    fn oracles_and_measurement_are_structural() {
        let perm = PermutationOp::new("swap2", vec![0, 2, 1, 3]).unwrap();
        let mut with_perm = Circuit::new(2);
        with_perm.permutation(perm, [0, 1]);
        let mut with_measure = Circuit::new(2);
        with_measure.measure(0);
        assert_ne!(with_perm.structural_hash(), with_measure.structural_hash());
    }
}
