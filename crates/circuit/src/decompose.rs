//! Gate decompositions into elementary gate sets.
//!
//! The paper counts circuit size in elementary operations (Table 4's
//! `# gates`, §2.3's "operations per qubit"); oracle-level constructs must
//! decompose before such accounting. This module provides the standard
//! textbook decompositions — SWAP into three CNOTs, Toffoli into the
//! {H, T, CNOT} network, controlled rotations into two-gate conjugations —
//! and a whole-circuit rewriting pass.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::op::Operation;
use crate::param::Param;

/// Elementary gate sets to decompose into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateSet {
    /// One- and two-qubit gates only (three-qubit gates are expanded).
    TwoQubit,
    /// Clifford+T plus arbitrary one-qubit rotations: CNOT is the only
    /// multi-qubit gate left.
    CnotPlusSingle,
}

impl Circuit {
    /// Rewrites every gate outside `set` into gates inside it. Noise,
    /// measurement, permutation, and diagonal oracle operations pass
    /// through unchanged (decompose oracles at construction time if
    /// elementary counting is needed).
    ///
    /// The rewritten circuit computes the same unitary (up to global
    /// phase; exactly, for the decompositions used here).
    pub fn decomposed(&self, set: GateSet) -> Circuit {
        let mut out = Circuit::new(self.num_qubits());
        for op in self.operations() {
            match op {
                Operation::Gate { gate, qubits } => decompose_gate(&mut out, gate, qubits, set),
                other => {
                    out.push(other.clone());
                }
            }
        }
        out
    }
}

fn decompose_gate(out: &mut Circuit, gate: &Gate, qubits: &[usize], set: GateSet) {
    match (gate, set) {
        // Already elementary in every target set.
        (g, _) if g.num_qubits() == 1 => {
            out.gate(g.clone(), qubits.to_vec());
        }
        (Gate::Cnot, _) => {
            out.cnot(qubits[0], qubits[1]);
        }
        // Two-qubit gates allowed unless we are in CNOT+single.
        (Gate::Cz, GateSet::TwoQubit)
        | (Gate::CPhase(_), GateSet::TwoQubit)
        | (Gate::Zz(_), GateSet::TwoQubit)
        | (Gate::CRz(_), GateSet::TwoQubit) => {
            out.gate(gate.clone(), qubits.to_vec());
        }
        (Gate::Swap, GateSet::TwoQubit) => {
            out.gate(Gate::Swap, qubits.to_vec());
        }
        // CZ = H(t) CNOT H(t).
        (Gate::Cz, GateSet::CnotPlusSingle) => {
            let (c, t) = (qubits[0], qubits[1]);
            out.h(t).cnot(c, t).h(t);
        }
        // SWAP = 3 CNOTs.
        (Gate::Swap, GateSet::CnotPlusSingle) => {
            let (a, b) = (qubits[0], qubits[1]);
            out.cnot(a, b).cnot(b, a).cnot(a, b);
        }
        // Controlled-phase via two CNOTs and three Rz-like phases:
        // CP(θ) = P(θ/2)⊗I · CNOT · I⊗P(-θ/2) · CNOT · I⊗P(θ/2).
        (Gate::CPhase(p), GateSet::CnotPlusSingle) => {
            let (c, t) = (qubits[0], qubits[1]);
            let half = halve(p);
            let neg_half = negate(&half);
            out.phase(c, half.clone());
            out.cnot(c, t);
            out.phase(t, neg_half);
            out.cnot(c, t);
            out.phase(t, half);
        }
        // CRz(θ) = Rz(θ/2)(t) · CNOT · Rz(-θ/2)(t) · CNOT.
        (Gate::CRz(p), GateSet::CnotPlusSingle) => {
            let (c, t) = (qubits[0], qubits[1]);
            let half = halve(p);
            let neg_half = negate(&half);
            out.rz(t, half);
            out.cnot(c, t);
            out.rz(t, neg_half);
            out.cnot(c, t);
        }
        // ZZ(θ) = CNOT · Rz(θ)(t) · CNOT.
        (Gate::Zz(p), GateSet::CnotPlusSingle) => {
            let (a, b) = (qubits[0], qubits[1]);
            out.cnot(a, b);
            out.rz(b, p.clone());
            out.cnot(a, b);
        }
        // Toffoli: the standard 6-CNOT, 7-T network.
        (Gate::Ccx, _) => {
            let (a, b, c) = (qubits[0], qubits[1], qubits[2]);
            out.h(c);
            out.cnot(b, c);
            out.gate(Gate::Tdg, [c]);
            out.cnot(a, c);
            out.t(c);
            out.cnot(b, c);
            out.gate(Gate::Tdg, [c]);
            out.cnot(a, c);
            out.t(b);
            out.t(c);
            out.h(c);
            out.cnot(a, b);
            out.t(a);
            out.gate(Gate::Tdg, [b]);
            out.cnot(a, b);
        }
        // CCZ = H(t) · CCX · H(t).
        (Gate::Ccz, set) => {
            let t = qubits[2];
            out.h(t);
            decompose_gate(out, &Gate::Ccx, qubits, set);
            out.h(t);
        }
        // CSWAP = CNOT(b→a') sandwich around a Toffoli.
        (Gate::Cswap, set) => {
            let (c, a, b) = (qubits[0], qubits[1], qubits[2]);
            out.cnot(b, a);
            decompose_gate(out, &Gate::Ccx, &[c, a, b], set);
            out.cnot(b, a);
        }
        (g, _) => {
            // Remaining two-qubit gates are elementary for TwoQubit.
            out.gate(g.clone(), qubits.to_vec());
        }
    }
}

fn halve(p: &Param) -> Param {
    match p {
        Param::Const(v) => Param::Const(v / 2.0),
        Param::Sym(_) => panic!(
            "cannot decompose a symbolically parameterized controlled phase; \
             bind parameters first or keep the gate elementary"
        ),
    }
}

fn negate(p: &Param) -> Param {
    match p {
        Param::Const(v) => Param::Const(-v),
        Param::Sym(_) => unreachable!("halve already rejected symbols"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamMap;

    /// The decomposed circuit must compute the same unitary, up to a global
    /// phase.
    fn assert_equivalent(original: &Circuit, set: GateSet) {
        let params = ParamMap::new();
        let u = original.unitary(&params).unwrap();
        let d = original.decomposed(set);
        let v = d.unitary(&params).unwrap();
        // Find the global phase from the first nonzero entry.
        let dim = u.rows();
        let mut phase = None;
        'outer: for r in 0..dim {
            for c in 0..dim {
                if u[(r, c)].norm() > 1e-9 {
                    phase = Some(v[(r, c)] / u[(r, c)]);
                    break 'outer;
                }
            }
        }
        let phase = phase.expect("nonzero unitary");
        assert!(
            (phase.norm() - 1.0).abs() < 1e-9,
            "global factor must be a phase"
        );
        for r in 0..dim {
            for c in 0..dim {
                assert!(
                    (u[(r, c)] * phase).approx_eq(v[(r, c)], 1e-9),
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn toffoli_network_is_exact() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert_equivalent(&c, GateSet::TwoQubit);
        assert_equivalent(&c, GateSet::CnotPlusSingle);
    }

    #[test]
    fn swap_and_cz_decompose() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).cz(0, 1);
        assert_equivalent(&c, GateSet::CnotPlusSingle);
        let d = c.decomposed(GateSet::CnotPlusSingle);
        // 3 CNOTs + (H, CNOT, H).
        assert_eq!(d.num_gates(), 6);
    }

    #[test]
    fn controlled_phases_decompose() {
        let mut c = Circuit::new(2);
        c.cphase(0, 1, 0.9).crz(0, 1, -1.3).zz(0, 1, 0.4);
        assert_equivalent(&c, GateSet::CnotPlusSingle);
    }

    #[test]
    fn ccz_and_cswap_decompose() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        c.gate(Gate::Cswap, [0, 1, 2]);
        assert_equivalent(&c, GateSet::TwoQubit);
        assert_equivalent(&c, GateSet::CnotPlusSingle);
    }

    #[test]
    fn mixed_circuit_preserves_semantics_and_counts_grow() {
        let mut c = Circuit::new(3);
        c.h(0).ccx(0, 1, 2).swap(1, 2).cz(0, 2).t(1);
        assert_equivalent(&c, GateSet::CnotPlusSingle);
        let d = c.decomposed(GateSet::CnotPlusSingle);
        assert!(d.num_gates() > c.num_gates());
        // Everything is now 1- or 2-qubit CNOT.
        for op in d.operations() {
            if let Operation::Gate { gate, .. } = op {
                assert!(
                    gate.num_qubits() == 1 || matches!(gate, Gate::Cnot),
                    "unexpected gate {gate}"
                );
            }
        }
    }

    #[test]
    fn noise_and_measurement_pass_through() {
        let mut c = Circuit::new(3);
        c.h(0).depolarize(0, 0.01).ccx(0, 1, 2).measure(1);
        let d = c.decomposed(GateSet::TwoQubit);
        assert_eq!(d.num_noise_ops(), 1);
        assert_eq!(d.num_measurements(), 1);
        assert!(d.num_gates() > c.num_gates());
    }

    #[test]
    #[should_panic(expected = "symbolically parameterized")]
    fn symbolic_controlled_phase_is_rejected() {
        let mut c = Circuit::new(2);
        c.cphase(0, 1, Param::symbol("x"));
        c.decomposed(GateSet::CnotPlusSingle);
    }
}
