//! Circuit operations: gates, noise, classical permutations, measurements.

use crate::gate::Gate;
use crate::noise::NoiseChannel;
use std::fmt;
use std::sync::Arc;

/// A classical reversible function on `k` qubits, given as a bijective
/// lookup table over basis states.
///
/// Oracle-style subroutines — Deutsch–Jozsa/Bernstein–Vazirani oracles,
/// Simon functions, Grover marking, modular arithmetic in Shor's algorithm —
/// are permutations of computational basis states. Encoding them directly
/// (instead of decomposing to Toffoli networks) keeps circuits small and maps
/// to fully deterministic Bayesian-network nodes.
///
/// # Examples
///
/// ```
/// use qkc_circuit::PermutationOp;
///
/// // A 2-qubit increment mod 4.
/// let inc = PermutationOp::new("inc", vec![1, 2, 3, 0]).unwrap();
/// assert_eq!(inc.apply(3), 0);
/// assert_eq!(inc.num_qubits(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutationOp {
    name: Arc<str>,
    table: Arc<[usize]>,
    num_qubits: usize,
}

impl PermutationOp {
    /// Creates a permutation from its lookup table `table[input] = output`.
    ///
    /// # Errors
    ///
    /// Returns an error if the table length is not a power of two or the
    /// table is not a bijection.
    pub fn new(name: impl AsRef<str>, table: Vec<usize>) -> Result<Self, InvalidPermutation> {
        let len = table.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(InvalidPermutation {
                reason: format!("table length {len} is not a power of two"),
            });
        }
        let mut seen = vec![false; len];
        for &out in &table {
            if out >= len || seen[out] {
                return Err(InvalidPermutation {
                    reason: format!("table is not a bijection (output {out})"),
                });
            }
            seen[out] = true;
        }
        Ok(Self {
            name: Arc::from(name.as_ref()),
            num_qubits: len.trailing_zeros() as usize,
            table: table.into(),
        })
    }

    /// Builds a permutation from a bijective function over `0..2^k`.
    ///
    /// # Errors
    ///
    /// Returns an error if `f` is not a bijection.
    pub fn from_fn(
        name: impl AsRef<str>,
        num_qubits: usize,
        f: impl Fn(usize) -> usize,
    ) -> Result<Self, InvalidPermutation> {
        Self::new(name, (0..1usize << num_qubits).map(f).collect())
    }

    /// The permutation's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits this permutation acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Applies the permutation to a basis-state index.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn apply(&self, input: usize) -> usize {
        self.table[input]
    }

    /// The raw lookup table.
    pub fn table(&self) -> &[usize] {
        &self.table
    }
}

impl fmt::Display for PermutationOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Perm[{}]", self.name)
    }
}

/// Error for malformed permutation tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPermutation {
    reason: String,
}

impl fmt::Display for InvalidPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid permutation: {}", self.reason)
    }
}

impl std::error::Error for InvalidPermutation {}

/// A diagonal phase operation on `k` qubits: basis state `|x⟩` picks up
/// the phase `e^{i·phases[x]}`.
///
/// Grover-style phase oracles and diffusion reflections are diagonal; like
/// [`PermutationOp`] they map to a single Bayesian-network node instead of a
/// deep gate decomposition.
///
/// # Examples
///
/// ```
/// use qkc_circuit::DiagonalOp;
///
/// // Reflection about |00>: diag(+1, -1, -1, -1).
/// let refl = DiagonalOp::reflection_about_zero(2);
/// assert_eq!(refl.num_qubits(), 2);
/// assert!((refl.phase(0).re - 1.0).abs() < 1e-15);
/// assert!((refl.phase(3).re + 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalOp {
    name: Arc<str>,
    phases: Arc<[f64]>,
    num_qubits: usize,
}

impl DiagonalOp {
    /// Creates a diagonal operation from per-basis-state phase angles.
    ///
    /// # Errors
    ///
    /// Returns an error if the length is not a power of two.
    pub fn new(name: impl AsRef<str>, phases: Vec<f64>) -> Result<Self, InvalidPermutation> {
        let len = phases.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(InvalidPermutation {
                reason: format!("diagonal length {len} is not a power of two"),
            });
        }
        Ok(Self {
            name: Arc::from(name.as_ref()),
            num_qubits: len.trailing_zeros() as usize,
            phases: phases.into(),
        })
    }

    /// A phase oracle flipping the sign of every basis state in `marked`.
    ///
    /// # Errors
    ///
    /// Returns an error if a marked state is out of range.
    pub fn phase_oracle(
        name: impl AsRef<str>,
        num_qubits: usize,
        marked: &[usize],
    ) -> Result<Self, InvalidPermutation> {
        let dim = 1usize << num_qubits;
        let mut phases = vec![0.0; dim];
        for &m in marked {
            if m >= dim {
                return Err(InvalidPermutation {
                    reason: format!("marked state {m} out of range"),
                });
            }
            phases[m] = std::f64::consts::PI;
        }
        Self::new(name, phases)
    }

    /// The reflection `2|0…0⟩⟨0…0| − I` used by Grover diffusion.
    pub fn reflection_about_zero(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let mut phases = vec![std::f64::consts::PI; dim];
        phases[0] = 0.0;
        Self::new("refl0", phases).expect("power-of-two by construction")
    }

    /// The operation's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The complex phase `e^{i·phases[x]}` of basis state `x`.
    pub fn phase(&self, x: usize) -> qkc_math::Complex {
        // Exact values at the common angles so 0 and π stay 1 and −1.
        let t = self.phases[x];
        if t == 0.0 {
            qkc_math::C_ONE
        } else if t == std::f64::consts::PI {
            -qkc_math::C_ONE
        } else {
            qkc_math::Complex::cis(t)
        }
    }

    /// The raw phase angles.
    pub fn phase_angles(&self) -> &[f64] {
        &self.phases
    }
}

impl fmt::Display for DiagonalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Diag[{}]", self.name)
    }
}

/// One operation in a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// A unitary gate applied to `qubits` (order matters; see [`Gate`]).
    Gate {
        /// The gate.
        gate: Gate,
        /// Target qubits, most-significant first.
        qubits: Vec<usize>,
    },
    /// A noise model applied to one qubit.
    Noise {
        /// The noise model.
        channel: NoiseChannel,
        /// The affected qubit.
        qubit: usize,
    },
    /// A classical permutation of basis states on `qubits`.
    Permutation {
        /// The permutation.
        perm: PermutationOp,
        /// Involved qubits, most-significant first.
        qubits: Vec<usize>,
    },
    /// A diagonal phase operation on `qubits`.
    Diagonal {
        /// The diagonal.
        diag: DiagonalOp,
        /// Involved qubits, most-significant first.
        qubits: Vec<usize>,
    },
    /// A computational-basis measurement of one qubit.
    ///
    /// By the principle of deferred measurement this dephases the qubit; the
    /// recorded outcome appears as a random variable in the
    /// Bayesian-network encoding (one per measurement).
    Measure {
        /// The measured qubit.
        qubit: usize,
    },
}

impl Operation {
    /// The qubits this operation touches, in argument order.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Operation::Gate { qubits, .. }
            | Operation::Permutation { qubits, .. }
            | Operation::Diagonal { qubits, .. } => qubits.clone(),
            Operation::Noise { qubit, .. } | Operation::Measure { qubit } => vec![*qubit],
        }
    }

    /// Returns `true` for unitary operations (gates and permutations).
    pub fn is_unitary(&self) -> bool {
        matches!(
            self,
            Operation::Gate { .. } | Operation::Permutation { .. } | Operation::Diagonal { .. }
        )
    }

    /// Returns `true` for noise operations.
    pub fn is_noise(&self) -> bool {
        matches!(self, Operation::Noise { .. })
    }

    /// The symbolic parameters this operation mentions.
    pub fn symbols(&self) -> Vec<&str> {
        match self {
            Operation::Gate { gate, .. } => gate.symbols(),
            Operation::Noise { channel, .. } => channel.symbols(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Gate { gate, qubits } => write!(f, "{gate} {qubits:?}"),
            Operation::Noise { channel, qubit } => write!(f, "{channel} [{qubit}]"),
            Operation::Permutation { perm, qubits } => write!(f, "{perm} {qubits:?}"),
            Operation::Diagonal { diag, qubits } => write!(f, "{diag} {qubits:?}"),
            Operation::Measure { qubit } => write!(f, "M [{qubit}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_validation() {
        assert!(PermutationOp::new("bad", vec![0, 1, 2]).is_err()); // not power of 2
        assert!(PermutationOp::new("bad", vec![0, 0]).is_err()); // not bijective
        assert!(PermutationOp::new("bad", vec![0, 5]).is_err()); // out of range
        assert!(PermutationOp::new("ok", vec![1, 0]).is_ok());
    }

    #[test]
    fn permutation_from_fn_xor() {
        // CNOT as a permutation: (c, t) -> (c, t ^ c).
        let p = PermutationOp::from_fn("cnot", 2, |x| {
            let c = x >> 1;
            let t = x & 1;
            (c << 1) | (t ^ c)
        })
        .unwrap();
        assert_eq!(p.apply(0b10), 0b11);
        assert_eq!(p.apply(0b11), 0b10);
        assert_eq!(p.apply(0b01), 0b01);
    }

    #[test]
    fn operation_qubits_and_kinds() {
        let g = Operation::Gate {
            gate: Gate::Cnot,
            qubits: vec![0, 2],
        };
        assert_eq!(g.qubits(), vec![0, 2]);
        assert!(g.is_unitary());
        let n = Operation::Noise {
            channel: NoiseChannel::depolarizing(0.01),
            qubit: 1,
        };
        assert!(n.is_noise());
        assert_eq!(n.qubits(), vec![1]);
        let m = Operation::Measure { qubit: 3 };
        assert!(!m.is_unitary());
        assert!(!m.is_noise());
    }
}
