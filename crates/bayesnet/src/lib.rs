//! Complex-valued Bayesian networks encoding noisy quantum circuits —
//! stage 1 of the paper's toolchain (Figure 4, §3.1).
//!
//! A circuit becomes a directed graphical model whose nodes are qubit-state
//! instances and noise/measurement random variables, and whose conditional
//! *amplitude* tables unify complex gate amplitudes with real noise
//! probabilities in a single representation. Parameter-dependent table
//! cells reference circuit operations symbolically, so the same network
//! structure serves every variational iteration.
//!
//! # Examples
//!
//! ```
//! use qkc_circuit::{Circuit, ParamMap};
//! use qkc_bayesnet::BayesNet;
//!
//! // The paper's noisy Bell-state example (Figure 2).
//! let mut c = Circuit::new(2);
//! c.h(0).phase_damp(0, 0.36).cnot(0, 1);
//! let bn = BayesNet::from_circuit(&c);
//! let w = bn.evaluate_weights(&ParamMap::new()).unwrap();
//! // amp(|11>, noise branch 0) = 0.8/sqrt(2)  (Table 5).
//! let amp = bn.amplitude_brute_force(&[1, 1, 0], &w);
//! assert!((amp.norm() - 0.8 / 2.0_f64.sqrt()).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

mod build;
mod net;
mod node;

pub use net::{BayesNet, WeightTable};
pub use node::{CatEntry, Node, NodeId, NodeRole, WeightValue};
