//! Compiling circuits into complex-valued Bayesian networks (paper §3.1).
//!
//! Gate semantics become conditional amplitude tables; noise mixtures and
//! channels become *noise-selector random variables* whose values index the
//! Kraus branch taken (§3.1.2 — the paper's extension of quantum PGMs);
//! measurements become outcome random variables.
//!
//! ## Structure discovery by probing
//!
//! Whether a CAT cell is exactly 0, exactly 1, or a weight must not depend
//! on the *current* parameter values, or the compiled structure could not be
//! reused across variational iterations. Cells of parameterized operations
//! are therefore classified by evaluating the operation at two fixed
//! *generic probe* bindings ([`ParamMap::probe`]): a cell is structurally
//! zero/one only if it is zero/one at both probes. Probe values are chosen
//! away from special angles, so a parameter-dependent entry that vanishes
//! only at isolated angles is (correctly) kept as a weight.

use crate::net::BayesNet;
use crate::node::{CatEntry, Node, NodeId, NodeRole, WeightValue};
use qkc_circuit::{Circuit, Gate, GateLayout, Operation, ParamMap};
use qkc_math::{CMatrix, Complex, C_ONE};

const TOL: f64 = 1e-12;

impl BayesNet {
    /// Compiles a circuit into its Bayesian-network representation.
    ///
    /// Every operation the circuit IR can express is supported; gates whose
    /// layout is [`GateLayout::Permutation`] (SWAP, CSWAP) are encoded as
    /// deterministic permutation nodes rather than decomposed.
    pub fn from_circuit(circuit: &Circuit) -> BayesNet {
        Builder::new(circuit).build()
    }
}

struct Builder<'c> {
    circuit: &'c Circuit,
    probe_a: ParamMap,
    probe_b: ParamMap,
    nodes: Vec<Node>,
    /// Current state node of each qubit.
    cur: Vec<NodeId>,
    random_events: Vec<NodeId>,
}

impl<'c> Builder<'c> {
    fn new(circuit: &'c Circuit) -> Self {
        let symbols: Vec<String> = circuit.symbols().into_iter().collect();
        let probe_a = ParamMap::probe(symbols.iter().map(String::as_str), 0);
        let probe_b = ParamMap::probe(symbols.iter().map(String::as_str), 1);
        Self {
            circuit,
            probe_a,
            probe_b,
            nodes: Vec::new(),
            cur: Vec::new(),
            random_events: Vec::new(),
        }
    }

    fn build(mut self) -> BayesNet {
        let n = self.circuit.num_qubits();
        for q in 0..n {
            // Initial |0⟩: deterministic prior, one row.
            let id = self.push(Node {
                label: format!("q{q}m0"),
                domain: 2,
                parents: Vec::new(),
                cat: vec![CatEntry::One, CatEntry::Zero],
                weights: Vec::new(),
                role: NodeRole::Initial { qubit: q },
            });
            self.cur.push(id);
        }
        for (op_index, op) in self.circuit.operations().iter().enumerate() {
            match op {
                Operation::Gate { gate, qubits } => match gate.layout() {
                    GateLayout::Single => self.add_single(op_index, gate, qubits[0]),
                    GateLayout::ControlledSingle { controls } => {
                        self.add_controlled(op_index, gate, qubits, controls);
                    }
                    GateLayout::Diagonal => self.add_diagonal(op_index, gate, qubits),
                    GateLayout::Permutation => {
                        self.add_permutation(op_index, &gate.permutation(), qubits);
                    }
                },
                Operation::Permutation { perm, qubits } => {
                    self.add_permutation(op_index, perm.table(), qubits);
                }
                Operation::Diagonal { diag, qubits } => {
                    self.add_diagonal_op(op_index, diag, qubits);
                }
                Operation::Noise { channel, qubit } => self.add_noise(op_index, channel, *qubit),
                Operation::Measure { qubit } => self.add_measure(op_index, *qubit),
            }
        }
        BayesNet {
            outputs: self.cur.clone(),
            nodes: self.nodes,
            random_events: self.random_events,
            circuit: self.circuit.clone(),
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Labels follow the paper's global-moment convention (Figure 2(c)):
    /// the node produced by operation `op_index` on qubit `q` is
    /// `q{q}m{op_index + 1}`.
    fn state_label(&self, q: usize, op_index: usize) -> String {
        format!("q{q}m{}", op_index + 1)
    }

    /// Classifies a matrix entry at both probes into a CAT cell, appending a
    /// weight slot when it is not structurally 0 or 1.
    #[allow(clippy::too_many_arguments)]
    fn classify(
        &self,
        weights: &mut Vec<WeightValue>,
        a: Complex,
        b: Complex,
        symbolic: bool,
        op_index: usize,
        matrix_index: usize,
        row: usize,
        col: usize,
    ) -> CatEntry {
        let zero = a.approx_zero(TOL) && b.approx_zero(TOL);
        let one = a.approx_eq(C_ONE, TOL) && b.approx_eq(C_ONE, TOL);
        if zero {
            CatEntry::Zero
        } else if one {
            CatEntry::One
        } else {
            let value = if symbolic {
                WeightValue::OpEntry {
                    op_index,
                    matrix_index,
                    row,
                    col,
                }
            } else {
                WeightValue::Const(a)
            };
            weights.push(value);
            CatEntry::Weight(weights.len() - 1)
        }
    }

    /// Dense single-qubit gate: one new node whose CAT is the transpose of
    /// the unitary (paper Table 2(a)).
    fn add_single(&mut self, op_index: usize, gate: &Gate, q: usize) {
        let ua = self.gate_unitary(gate, &self.probe_a);
        let ub = self.gate_unitary(gate, &self.probe_b);
        let symbolic = gate.is_parameterized();
        let mut cat = Vec::with_capacity(4);
        let mut weights = Vec::new();
        for x in 0..2 {
            for y in 0..2 {
                cat.push(self.classify(
                    &mut weights,
                    ua[(y, x)],
                    ub[(y, x)],
                    symbolic,
                    op_index,
                    0,
                    y,
                    x,
                ));
            }
        }
        let label = self.state_label(q, op_index);
        let id = self.push(Node {
            label,
            domain: 2,
            parents: vec![self.cur[q]],
            cat,
            weights,
            role: NodeRole::QubitState { qubit: q, op_index },
        });
        self.cur[q] = id;
    }

    /// Controlled single-target gate: only the target gets a new node, with
    /// the controls' current states as extra parents (paper Table 2(c)).
    fn add_controlled(&mut self, op_index: usize, gate: &Gate, qubits: &[usize], controls: usize) {
        let ua = self.gate_unitary(gate, &self.probe_a);
        let ub = self.gate_unitary(gate, &self.probe_b);
        let symbolic = gate.is_parameterized();
        let target = qubits[controls];
        let all_ones = (1usize << controls) - 1;
        let mut cat = Vec::new();
        let mut weights = Vec::new();
        for row in 0..1usize << (controls + 1) {
            let cbits = row >> 1;
            let x = row & 1;
            for y in 0..2 {
                let entry = if cbits != all_ones {
                    if y == x {
                        CatEntry::One
                    } else {
                        CatEntry::Zero
                    }
                } else {
                    let full_row = (cbits << 1) | y;
                    let full_col = (cbits << 1) | x;
                    self.classify(
                        &mut weights,
                        ua[(full_row, full_col)],
                        ub[(full_row, full_col)],
                        symbolic,
                        op_index,
                        0,
                        full_row,
                        full_col,
                    )
                };
                cat.push(entry);
            }
        }
        let mut parents: Vec<NodeId> = qubits[..controls].iter().map(|&c| self.cur[c]).collect();
        parents.push(self.cur[target]);
        let label = self.state_label(target, op_index);
        let id = self.push(Node {
            label,
            domain: 2,
            parents,
            cat,
            weights,
            role: NodeRole::QubitState {
                qubit: target,
                op_index,
            },
        });
        self.cur[target] = id;
    }

    /// Diagonal gate on k qubits: one new node for the last listed qubit,
    /// with every involved qubit's current state as parent; the designated
    /// qubit's value must follow its parent, picking up the diagonal phase.
    fn add_diagonal(&mut self, op_index: usize, gate: &Gate, qubits: &[usize]) {
        let ua = self.gate_unitary(gate, &self.probe_a);
        let ub = self.gate_unitary(gate, &self.probe_b);
        let symbolic = gate.is_parameterized();
        let k = qubits.len();
        let target = qubits[k - 1];
        let mut cat = Vec::new();
        let mut weights = Vec::new();
        for x in 0..1usize << k {
            let xt = x & 1; // last listed qubit is least significant in rows
            for y in 0..2 {
                let entry = if y != xt {
                    CatEntry::Zero
                } else {
                    self.classify(
                        &mut weights,
                        ua[(x, x)],
                        ub[(x, x)],
                        symbolic,
                        op_index,
                        0,
                        x,
                        x,
                    )
                };
                cat.push(entry);
            }
        }
        let parents: Vec<NodeId> = qubits.iter().map(|&q| self.cur[q]).collect();
        let label = self.state_label(target, op_index);
        let id = self.push(Node {
            label,
            domain: 2,
            parents,
            cat,
            weights,
            role: NodeRole::QubitState {
                qubit: target,
                op_index,
            },
        });
        self.cur[target] = id;
    }

    /// Diagonal phase operation: like a diagonal gate, one new node for the
    /// last listed qubit with every involved qubit's state as parent; the
    /// phases are constants, so deterministic ±1-free entries get weights.
    fn add_diagonal_op(
        &mut self,
        op_index: usize,
        diag: &qkc_circuit::DiagonalOp,
        qubits: &[usize],
    ) {
        let k = qubits.len();
        let target = qubits[k - 1];
        let mut cat = Vec::new();
        let mut weights = Vec::new();
        for x in 0..1usize << k {
            let xt = x & 1;
            for y in 0..2 {
                let entry = if y != xt {
                    CatEntry::Zero
                } else {
                    let v = diag.phase(x);
                    self.classify(&mut weights, v, v, false, op_index, 0, x, x)
                };
                cat.push(entry);
            }
        }
        let parents: Vec<NodeId> = qubits.iter().map(|&q| self.cur[q]).collect();
        let label = self.state_label(target, op_index);
        let id = self.push(Node {
            label,
            domain: 2,
            parents,
            cat,
            weights,
            role: NodeRole::QubitState {
                qubit: target,
                op_index,
            },
        });
        self.cur[target] = id;
    }

    /// Classical permutation: one deterministic node per involved qubit,
    /// each depending on all involved qubits' previous states.
    fn add_permutation(&mut self, op_index: usize, table: &[usize], qubits: &[usize]) {
        let k = qubits.len();
        assert_eq!(table.len(), 1 << k);
        let old: Vec<NodeId> = qubits.iter().map(|&q| self.cur[q]).collect();
        for (i, &q) in qubits.iter().enumerate() {
            let mut cat = Vec::with_capacity(2 << k);
            for &mapped in table.iter().take(1usize << k) {
                let out_bit = (mapped >> (k - 1 - i)) & 1;
                for y in 0..2 {
                    cat.push(if y == out_bit {
                        CatEntry::One
                    } else {
                        CatEntry::Zero
                    });
                }
            }
            let label = self.state_label(q, op_index);
            let id = self.push(Node {
                label,
                domain: 2,
                parents: old.clone(),
                cat,
                weights: Vec::new(),
                role: NodeRole::QubitState { qubit: q, op_index },
            });
            self.cur[q] = id;
        }
    }

    /// Noise: a selector RV indexing the Kraus branch. Diagonal noise folds
    /// into the selector alone (exactly the paper's Table 2(b)); general
    /// noise additionally creates a new state node for the qubit.
    fn add_noise(&mut self, op_index: usize, channel: &qkc_circuit::NoiseChannel, q: usize) {
        let ka = channel
            .kraus(&self.probe_a)
            .expect("probe binds all symbols");
        let kb = channel
            .kraus(&self.probe_b)
            .expect("probe binds all symbols");
        let symbolic = !channel.symbols().is_empty();
        let branches = ka.len();
        let all_diagonal = ka.iter().chain(kb.iter()).all(|m| m.is_diagonal(TOL));
        let rv_label = format!("q{q}m{}rv", op_index + 1);
        if all_diagonal {
            // Selector with the qubit as parent; A(rv=k | x) = E_k[x,x].
            let mut cat = Vec::new();
            let mut weights = Vec::new();
            for x in 0..2 {
                for (k, _) in ka.iter().enumerate() {
                    cat.push(self.classify(
                        &mut weights,
                        ka[k][(x, x)],
                        kb[k][(x, x)],
                        symbolic,
                        op_index,
                        k,
                        x,
                        x,
                    ));
                }
            }
            let id = self.push(Node {
                label: rv_label,
                domain: branches,
                parents: vec![self.cur[q]],
                cat,
                weights,
                role: NodeRole::NoiseSelector { op_index, qubit: q },
            });
            self.random_events.push(id);
        } else {
            // Parentless selector with unit prior; the new state node picks
            // up the full Kraus entries E_k[y, x].
            let sel = self.push(Node {
                label: rv_label,
                domain: branches,
                parents: Vec::new(),
                cat: vec![CatEntry::One; branches],
                weights: Vec::new(),
                role: NodeRole::NoiseSelector { op_index, qubit: q },
            });
            self.random_events.push(sel);
            let mut cat = Vec::new();
            let mut weights = Vec::new();
            for k in 0..branches {
                for x in 0..2 {
                    for y in 0..2 {
                        cat.push(self.classify(
                            &mut weights,
                            ka[k][(y, x)],
                            kb[k][(y, x)],
                            symbolic,
                            op_index,
                            k,
                            y,
                            x,
                        ));
                    }
                }
            }
            let label = self.state_label(q, op_index);
            let id = self.push(Node {
                label,
                domain: 2,
                parents: vec![sel, self.cur[q]],
                cat,
                weights,
                role: NodeRole::QubitState { qubit: q, op_index },
            });
            self.cur[q] = id;
        }
    }

    /// Measurement: an outcome RV copying the qubit's current value.
    /// Branches with different outcomes never interfere, which implements
    /// deferred-measurement dephasing in the path-sum semantics.
    fn add_measure(&mut self, op_index: usize, q: usize) {
        let label = format!("q{q}m{}rv", op_index + 1);
        let id = self.push(Node {
            label,
            domain: 2,
            parents: vec![self.cur[q]],
            cat: vec![CatEntry::One, CatEntry::Zero, CatEntry::Zero, CatEntry::One],
            weights: Vec::new(),
            role: NodeRole::MeasureOutcome { op_index, qubit: q },
        });
        self.random_events.push(id);
    }

    fn gate_unitary(&self, gate: &Gate, probe: &ParamMap) -> CMatrix {
        gate.unitary(probe).expect("probe binds all symbols")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::Param;
    use qkc_math::FRAC_1_SQRT_2;

    fn bell_noisy() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).phase_damp(0, 0.36).cnot(0, 1);
        c
    }

    #[test]
    fn bell_structure_matches_figure_2c() {
        let bn = BayesNet::from_circuit(&bell_noisy());
        let labels: Vec<&str> = bn.nodes().iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, vec!["q0m0", "q1m0", "q0m1", "q0m2rv", "q1m3"]);
        // H node: parent q0m0, dense CAT of 4 weights.
        let h = &bn.nodes()[2];
        assert_eq!(h.parents, vec![0]);
        assert_eq!(h.weights.len(), 4);
        // Noise RV: diagonal phase damping folds into the selector.
        let rv = &bn.nodes()[3];
        assert_eq!(rv.parents, vec![2]);
        assert_eq!(rv.domain, 2);
        assert!(rv.role.is_random_event());
        // CNOT node: parents (q0m1, q1m0), fully deterministic.
        let cnot = &bn.nodes()[4];
        assert_eq!(cnot.parents, vec![2, 1]);
        assert!(cnot.weights.is_empty());
        // Outputs are q0m1 (control unchanged) and q1m3.
        assert_eq!(bn.outputs(), &[2, 4]);
    }

    #[test]
    fn hadamard_cat_matches_table_2a() {
        let bn = BayesNet::from_circuit(&bell_noisy());
        let h = &bn.nodes()[2];
        let table = bn.evaluate_weights(&ParamMap::new()).unwrap();
        let expect = [FRAC_1_SQRT_2, FRAC_1_SQRT_2, FRAC_1_SQRT_2, -FRAC_1_SQRT_2];
        for (i, &want) in expect.iter().enumerate() {
            match h.cat[i] {
                CatEntry::Weight(w) => {
                    assert!(table.value(2, w).approx_eq(Complex::real(want), 1e-12));
                }
                other => panic!("H entry {i} should be a weight, got {other:?}"),
            }
        }
    }

    #[test]
    fn phase_damping_cat_matches_table_2b() {
        // A(rv=0|0)=1, A(rv=1|0)=0, A(rv=0|1)=0.8, A(rv=1|1)=±0.6.
        let bn = BayesNet::from_circuit(&bell_noisy());
        let rv = &bn.nodes()[3];
        let table = bn.evaluate_weights(&ParamMap::new()).unwrap();
        assert_eq!(rv.entry(0, 0), CatEntry::One);
        assert_eq!(rv.entry(0, 1), CatEntry::Zero);
        match rv.entry(1, 0) {
            CatEntry::Weight(w) => {
                assert!(table.value(3, w).approx_eq(Complex::real(0.8), 1e-12));
            }
            other => panic!("expected weight, got {other:?}"),
        }
        match rv.entry(1, 1) {
            // Kraus gauge: +0.6 here, −0.6 in the paper's Ry decomposition;
            // the branch phase is unobservable.
            CatEntry::Weight(w) => {
                assert!((table.value(3, w).norm() - 0.6).abs() < 1e-12);
            }
            other => panic!("expected weight, got {other:?}"),
        }
    }

    #[test]
    fn table_5_amplitudes_reproduced() {
        // Upward-pass values of paper Table 5 (up to per-branch phase).
        let bn = BayesNet::from_circuit(&bell_noisy());
        let table = bn.evaluate_weights(&ParamMap::new()).unwrap();
        // Query order: outputs (q0m1, q1m3), then rv.
        let amp = |q0: usize, q1: usize, rv: usize| bn.amplitude_brute_force(&[q0, q1, rv], &table);
        assert!(amp(0, 0, 0).approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
        assert!(amp(0, 1, 0).approx_zero(1e-12));
        assert!(amp(1, 0, 0).approx_zero(1e-12));
        assert!(amp(1, 1, 0).approx_eq(Complex::real(0.8 * FRAC_1_SQRT_2), 1e-12));
        assert!(amp(0, 0, 1).approx_zero(1e-12));
        assert!((amp(1, 1, 1).norm() - 0.6 * FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn noise_free_amplitudes_match_reference() {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(0)
            .cnot(0, 1)
            .zz(1, 2, 0.73)
            .rx(2, 0.41)
            .cz(0, 2)
            .swap(1, 2)
            .ccx(0, 1, 2);
        let bn = BayesNet::from_circuit(&c);
        let params = ParamMap::new();
        let table = bn.evaluate_weights(&params).unwrap();
        let want = qkc_circuit::reference::run_pure(&c, &params).unwrap();
        for (out, &w) in want.iter().enumerate() {
            let qv: Vec<usize> = (0..3).map(|i| (out >> (2 - i)) & 1).collect();
            let got = bn.amplitude_brute_force(&qv, &table);
            assert!(got.approx_eq(w, 1e-10), "amplitude {out}: {got} vs {w}");
        }
    }

    #[test]
    fn parameterized_rebinding_changes_only_weights() {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("a")).zz(0, 1, Param::symbol("b"));
        let bn = BayesNet::from_circuit(&c);
        let t1 = bn
            .evaluate_weights(&ParamMap::from_pairs([("a", 0.3), ("b", 0.9)]))
            .unwrap();
        let t2 = bn
            .evaluate_weights(&ParamMap::from_pairs([("a", 1.3), ("b", 0.1)]))
            .unwrap();
        assert_ne!(t1, t2);
        for (theta_a, table) in [(0.3, &t1), (1.3, &t2)] {
            let amp = bn.amplitude_brute_force(&[1, 0], table);
            assert!(
                (amp.norm() - (theta_a / 2.0_f64).sin().abs()) < 1e-10,
                "Rx amplitude magnitude"
            );
        }
    }

    #[test]
    fn depolarizing_probabilities_match_density_matrix() {
        let mut c = Circuit::new(2);
        c.h(0).depolarize(0, 0.1).cnot(0, 1).depolarize(1, 0.05);
        let bn = BayesNet::from_circuit(&c);
        let params = ParamMap::new();
        let table = bn.evaluate_weights(&params).unwrap();
        let got = bn.output_probabilities_brute_force(&table);
        let rho = qkc_circuit::reference::run_density(&c, &params).unwrap();
        let want = qkc_circuit::reference::density_probabilities(&rho);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() < 1e-10,
                "P({i}): {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn amplitude_damping_full_density_matrix_matches() {
        // Channels (not just mixtures) must reproduce the full density
        // matrix: ρ[x,x'] = Σ_K amp(x,K)·conj(amp(x',K)).
        let mut c = Circuit::new(2);
        c.h(0).amplitude_damp(0, 0.4).cnot(0, 1).phase_damp(1, 0.2);
        let bn = BayesNet::from_circuit(&c);
        let params = ParamMap::new();
        let table = bn.evaluate_weights(&params).unwrap();
        let amps = bn.all_amplitudes_brute_force(&table);
        let rv_count = amps.iter().map(|&(_, k, _)| k).max().unwrap() + 1;
        let mut amp_of = vec![vec![qkc_math::C_ZERO; rv_count]; 4];
        for (x, k, a) in amps {
            amp_of[x][k] = a;
        }
        let rho = qkc_circuit::reference::run_density(&c, &params).unwrap();
        for x in 0..4 {
            for xp in 0..4 {
                let mut acc = qkc_math::C_ZERO;
                for (a, b) in amp_of[x].iter().zip(&amp_of[xp]) {
                    acc += *a * b.conj();
                }
                assert!(
                    acc.approx_eq(rho[(x, xp)], 1e-10),
                    "rho[{x},{xp}]: {acc} vs {}",
                    rho[(x, xp)]
                );
            }
        }
    }

    #[test]
    fn measurement_rv_copies_state() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        let bn = BayesNet::from_circuit(&c);
        assert_eq!(bn.random_events().len(), 1);
        let table = bn.evaluate_weights(&ParamMap::new()).unwrap();
        // amp(q=x, M=m) nonzero only when m == x.
        for x in 0..2 {
            for m in 0..2 {
                let a = bn.amplitude_brute_force(&[x, m], &table);
                if x == m {
                    assert!((a.norm() - FRAC_1_SQRT_2).abs() < 1e-12);
                } else {
                    assert!(a.approx_zero(1e-12));
                }
            }
        }
    }

    #[test]
    fn grover_style_permutation_oracle() {
        use qkc_circuit::PermutationOp;
        // Mark |11> by a phase-free permutation is impossible; instead use a
        // bit-flip oracle on an ancilla: |x, b> -> |x, b ^ [x == 3]>.
        let oracle = PermutationOp::from_fn("mark3", 3, |idx| {
            let x = idx >> 1;
            let b = idx & 1;
            if x == 3 {
                (x << 1) | (b ^ 1)
            } else {
                idx
            }
        })
        .unwrap();
        let mut c = Circuit::new(3);
        c.h(0).h(1).x(2).permutation(oracle, [0, 1, 2]);
        let bn = BayesNet::from_circuit(&c);
        let params = ParamMap::new();
        let table = bn.evaluate_weights(&params).unwrap();
        let want = qkc_circuit::reference::run_pure(&c, &params).unwrap();
        for (out, &w) in want.iter().enumerate() {
            let qv: Vec<usize> = (0..3).map(|i| (out >> (2 - i)) & 1).collect();
            assert!(bn.amplitude_brute_force(&qv, &table).approx_eq(w, 1e-10));
        }
    }
}
