//! The complex-valued Bayesian network and its evaluation semantics.

use crate::node::{CatEntry, Node, NodeId, WeightValue};
use qkc_circuit::{Circuit, Operation, ParamMap, UnboundParam};
use qkc_math::{Complex, C_ONE, C_ZERO};
use std::collections::HashMap;

/// A complex-valued Bayesian network encoding a noisy quantum circuit
/// (paper §3.1).
///
/// Nodes are qubit-state instances and noise/measurement random variables;
/// directed edges express how each state depends on preceding states; each
/// node carries a conditional amplitude table. The joint amplitude of a full
/// assignment is the product of selected CAT entries, and quantum circuit
/// simulation is inference: the amplitude of an (outputs, noise RVs)
/// assignment is the sum of joint amplitudes over all internal-state
/// assignments — a Feynman path sum.
///
/// # Examples
///
/// ```
/// use qkc_circuit::Circuit;
/// use qkc_bayesnet::BayesNet;
///
/// let mut c = Circuit::new(2);
/// c.h(0).phase_damp(0, 0.36).cnot(0, 1);
/// let bn = BayesNet::from_circuit(&c);
/// // q0m0, q1m0, q0m1 (H), q0m2rv (PD), q1m3 (CNOT) — as in Figure 2(c).
/// assert_eq!(bn.num_nodes(), 5);
/// assert_eq!(bn.random_events().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BayesNet {
    pub(crate) nodes: Vec<Node>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) random_events: Vec<NodeId>,
    pub(crate) circuit: Circuit,
}

/// Numeric weight values for every node's weight slots under one parameter
/// binding. Rebuilt cheaply on every re-bind; the network structure (and
/// everything compiled from it) is reused.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightTable {
    per_node: Vec<Vec<Complex>>,
}

impl WeightTable {
    /// The value of weight slot `w` of node `node`.
    pub fn value(&self, node: NodeId, w: usize) -> Complex {
        self.per_node[node][w]
    }

    /// All weights of one node.
    pub fn node_weights(&self, node: NodeId) -> &[Complex] {
        &self.per_node[node]
    }
}

impl BayesNet {
    /// All nodes, in creation (topological) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The final qubit-state node of each qubit.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Noise-selector and measurement-outcome nodes, in circuit order.
    pub fn random_events(&self) -> &[NodeId] {
        &self.random_events
    }

    /// Query nodes: outputs followed by random events. Evidence in
    /// simulation queries is always over these.
    pub fn query_nodes(&self) -> Vec<NodeId> {
        let mut q = self.outputs.clone();
        q.extend(&self.random_events);
        q
    }

    /// The source circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Evaluates every weight slot under `params`.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit mentions a symbol absent from
    /// `params`.
    pub fn evaluate_weights(&self, params: &ParamMap) -> Result<WeightTable, UnboundParam> {
        let mut matrix_cache: HashMap<(usize, usize), qkc_math::CMatrix> = HashMap::new();
        let mut per_node = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut ws = Vec::with_capacity(node.weights.len());
            for w in &node.weights {
                ws.push(match w {
                    WeightValue::Const(c) => *c,
                    WeightValue::OpEntry {
                        op_index,
                        matrix_index,
                        row,
                        col,
                    } => {
                        let key = (*op_index, *matrix_index);
                        if let std::collections::hash_map::Entry::Vacant(e) =
                            matrix_cache.entry(key)
                        {
                            let m = match &self.circuit.operations()[*op_index] {
                                Operation::Gate { gate, .. } => gate.unitary(params)?,
                                Operation::Noise { channel, .. } => {
                                    let kraus = channel.kraus(params)?;
                                    kraus[*matrix_index].clone()
                                }
                                other => unreachable!(
                                    "weights only reference gates and noise, got {other}"
                                ),
                            };
                            e.insert(m);
                        }
                        matrix_cache[&key][(*row, *col)]
                    }
                });
            }
            per_node.push(ws);
        }
        Ok(WeightTable { per_node })
    }

    /// Evaluates every weight slot under `params` together with its
    /// analytic tangent `∂(entry)/∂symbol` for each of `symbols` — one
    /// tangent table per symbol, aligned slot-for-slot with the base
    /// table.
    ///
    /// Entries are trigonometric polynomials of the gate angles, so the
    /// tangents are closed-form ([`qkc_circuit::Gate::unitary_tangent`]):
    /// no step size, no truncation error. Entries that do not depend on a
    /// symbol (constants, other gates' entries, noise Kraus entries) get
    /// tangent zero. Symbols that parameterize *noise channels* are outside
    /// this path's contract — their Kraus entries are `√p`-polynomial, not
    /// trigonometric — and callers must route them to a finite-difference
    /// rule instead (debug builds assert the contract).
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit mentions a symbol absent from
    /// `params`.
    pub fn evaluate_weights_with_tangents(
        &self,
        params: &ParamMap,
        symbols: &[String],
    ) -> Result<(WeightTable, Vec<WeightTable>), UnboundParam> {
        type CachedEntry = (qkc_math::CMatrix, Vec<Option<qkc_math::CMatrix>>);
        let mut matrix_cache: HashMap<(usize, usize), CachedEntry> = HashMap::new();
        let mut per_node = Vec::with_capacity(self.nodes.len());
        let mut tangent_nodes: Vec<Vec<Vec<Complex>>> =
            vec![Vec::with_capacity(self.nodes.len()); symbols.len()];
        for node in &self.nodes {
            let mut ws = Vec::with_capacity(node.weights.len());
            let mut dws: Vec<Vec<Complex>> =
                vec![Vec::with_capacity(node.weights.len()); symbols.len()];
            for w in &node.weights {
                match w {
                    WeightValue::Const(c) => {
                        ws.push(*c);
                        for d in &mut dws {
                            d.push(C_ZERO);
                        }
                    }
                    WeightValue::OpEntry {
                        op_index,
                        matrix_index,
                        row,
                        col,
                    } => {
                        let key = (*op_index, *matrix_index);
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            matrix_cache.entry(key)
                        {
                            let entry = match &self.circuit.operations()[*op_index] {
                                Operation::Gate { gate, .. } => {
                                    let m = gate.unitary(params)?;
                                    let tangents = symbols
                                        .iter()
                                        .map(|s| gate.unitary_tangent(params, s))
                                        .collect::<Result<Vec<_>, _>>()?;
                                    (m, tangents)
                                }
                                Operation::Noise { channel, .. } => {
                                    debug_assert!(
                                        symbols
                                            .iter()
                                            .all(|s| !channel.symbols().contains(&s.as_str())),
                                        "noise symbols have no analytic weight tangent"
                                    );
                                    let kraus = channel.kraus(params)?;
                                    (kraus[*matrix_index].clone(), vec![None; symbols.len()])
                                }
                                other => unreachable!(
                                    "weights only reference gates and noise, got {other}"
                                ),
                            };
                            slot.insert(entry);
                        }
                        let (m, tangents) = &matrix_cache[&key];
                        ws.push(m[(*row, *col)]);
                        for (d, t) in dws.iter_mut().zip(tangents) {
                            d.push(t.as_ref().map_or(C_ZERO, |t| t[(*row, *col)]));
                        }
                    }
                }
            }
            per_node.push(ws);
            for (tn, d) in tangent_nodes.iter_mut().zip(dws) {
                tn.push(d);
            }
        }
        Ok((
            WeightTable { per_node },
            tangent_nodes
                .into_iter()
                .map(|per_node| WeightTable { per_node })
                .collect(),
        ))
    }

    /// The amplitude contribution of one *full* assignment (a value for
    /// every node): the product of selected CAT entries.
    pub fn joint_amplitude(&self, assignment: &[usize], table: &WeightTable) -> Complex {
        debug_assert_eq!(assignment.len(), self.nodes.len());
        let mut amp = C_ONE;
        for (id, node) in self.nodes.iter().enumerate() {
            let mut row = 0usize;
            for &p in &node.parents {
                row = row * self.nodes[p].domain + assignment[p];
            }
            match node.entry(row, assignment[id]) {
                CatEntry::Zero => return C_ZERO,
                CatEntry::One => {}
                CatEntry::Weight(w) => amp *= table.value(id, w),
            }
        }
        amp
    }

    /// Exhaustive-enumeration amplitude of a query assignment: sums joint
    /// amplitudes over every assignment of non-query nodes. Exponential —
    /// a test oracle for small networks, and the semantics the compiled
    /// arithmetic circuits must reproduce.
    ///
    /// `query_values` pairs with [`Self::query_nodes`] order.
    pub fn amplitude_brute_force(&self, query_values: &[usize], table: &WeightTable) -> Complex {
        let query = self.query_nodes();
        assert_eq!(query.len(), query_values.len(), "query arity mismatch");
        let mut assignment = vec![0usize; self.nodes.len()];
        let mut is_query = vec![false; self.nodes.len()];
        for (&id, &v) in query.iter().zip(query_values) {
            assignment[id] = v;
            is_query[id] = true;
        }
        let hidden: Vec<NodeId> = (0..self.nodes.len()).filter(|&i| !is_query[i]).collect();
        let mut total = C_ZERO;
        let mut counter = vec![0usize; hidden.len()];
        loop {
            for (i, &h) in hidden.iter().enumerate() {
                assignment[h] = counter[i];
            }
            total += self.joint_amplitude(&assignment, table);
            // Mixed-radix increment over hidden nodes.
            let mut i = 0;
            loop {
                if i == hidden.len() {
                    return total;
                }
                counter[i] += 1;
                if counter[i] < self.nodes[hidden[i]].domain {
                    break;
                }
                counter[i] = 0;
                i += 1;
            }
        }
    }

    /// Enumerates the amplitude of every (outputs, random-events)
    /// combination via brute force; returns `(output_index, rv_index,
    /// amplitude)` triples. A test oracle for small circuits.
    pub fn all_amplitudes_brute_force(&self, table: &WeightTable) -> Vec<(usize, usize, Complex)> {
        let n_out = self.outputs.len();
        let rv_domains: Vec<usize> = self
            .random_events
            .iter()
            .map(|&id| self.nodes[id].domain)
            .collect();
        let rv_count: usize = rv_domains.iter().product::<usize>().max(1);
        let mut result = Vec::new();
        for out in 0..1usize << n_out {
            for rv_idx in 0..rv_count {
                let mut qv = Vec::with_capacity(n_out + rv_domains.len());
                for (i, _) in self.outputs.iter().enumerate() {
                    qv.push((out >> (n_out - 1 - i)) & 1);
                }
                let mut rem = rv_idx;
                for &d in rv_domains.iter().rev() {
                    qv.push(rem % d);
                    rem /= d;
                }
                // The rv values were pushed least-significant-first; restore
                // circuit order.
                qv[n_out..].reverse();
                let amp = self.amplitude_brute_force(&qv, table);
                result.push((out, rv_idx, amp));
            }
        }
        result
    }

    /// The measurement probability of each output bitstring: `Σ_K |amp(x,
    /// K)|²` over random-event assignments `K`. Brute force; test oracle.
    pub fn output_probabilities_brute_force(&self, table: &WeightTable) -> Vec<f64> {
        let n_out = self.outputs.len();
        let mut probs = vec![0.0; 1usize << n_out];
        for (out, _, amp) in self.all_amplitudes_brute_force(table) {
            probs[out] += amp.norm_sqr();
        }
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::Param;

    #[test]
    fn weight_tangents_match_finite_differences_of_the_weight_table() {
        // Shared symbol `g` across two ZZ gates, a CRz, and a noise channel
        // parameterized by a *different* (constant) probability: every slot
        // tangent must match a central difference of the base table.
        let mut c = Circuit::new(3);
        c.h(0)
            .rx(1, Param::symbol("a"))
            .zz(0, 1, Param::symbol("g"))
            .zz(1, 2, Param::symbol("g"))
            .crz(0, 2, Param::symbol("a"))
            .depolarize(1, 0.05);
        let bn = BayesNet::from_circuit(&c);
        let symbols = vec!["a".to_string(), "g".to_string(), "missing".to_string()];
        let at = |a: f64, g: f64| {
            let mut m = ParamMap::new();
            m.bind("a", a);
            m.bind("g", g);
            m
        };
        let (a0, g0) = (0.37, -1.1);
        let (base, tangents) = bn
            .evaluate_weights_with_tangents(&at(a0, g0), &symbols)
            .unwrap();
        assert_eq!(base, bn.evaluate_weights(&at(a0, g0)).unwrap());
        assert_eq!(tangents.len(), symbols.len());
        let h = 1e-6;
        let fd = |up: &WeightTable, dn: &WeightTable, node: NodeId, w: usize| {
            (up.value(node, w) - dn.value(node, w)).scale(1.0 / (2.0 * h))
        };
        let (a_up, a_dn) = (
            bn.evaluate_weights(&at(a0 + h, g0)).unwrap(),
            bn.evaluate_weights(&at(a0 - h, g0)).unwrap(),
        );
        let (g_up, g_dn) = (
            bn.evaluate_weights(&at(a0, g0 + h)).unwrap(),
            bn.evaluate_weights(&at(a0, g0 - h)).unwrap(),
        );
        for (node, ws) in base.per_node.iter().enumerate() {
            for w in 0..ws.len() {
                let da = fd(&a_up, &a_dn, node, w);
                let dg = fd(&g_up, &g_dn, node, w);
                assert!(
                    tangents[0].value(node, w).approx_eq(da, 1e-8),
                    "node {node} slot {w} d/da"
                );
                assert!(
                    tangents[1].value(node, w).approx_eq(dg, 1e-8),
                    "node {node} slot {w} d/dg"
                );
                assert_eq!(tangents[2].value(node, w), C_ZERO, "absent symbol");
            }
        }
    }
}
