//! Bayesian-network nodes with conditional *amplitude* tables.

use qkc_math::Complex;
use std::fmt;

/// Identifier of a node inside a [`BayesNet`](crate::BayesNet).
pub type NodeId = usize;

/// A symbolic weight: either a fixed complex constant or a reference to an
/// entry of a circuit operation's matrix, re-evaluated whenever variational
/// parameters are re-bound.
///
/// This indirection is the paper's key structural move (§3.2.1,
/// optimization 3): "numerical parameters … are replaced with variables
/// whose values are resolved later; such a substitution allows the simulator
/// to efficiently repeat simulations with different sets of parameters".
#[derive(Debug, Clone, PartialEq)]
pub enum WeightValue {
    /// A fixed complex constant (e.g. `-1/√2` in a Hadamard table).
    Const(Complex),
    /// Entry `(row, col)` of matrix `matrix_index` of operation `op_index`:
    /// the unitary for gate ops (index 0) or the `k`-th Kraus operator for
    /// noise ops.
    OpEntry {
        /// Index of the operation in the source circuit.
        op_index: usize,
        /// Which matrix of the operation (Kraus branch; 0 for gates).
        matrix_index: usize,
        /// Matrix row.
        row: usize,
        /// Matrix column.
        col: usize,
    },
}

/// One cell of a conditional amplitude table.
///
/// Deterministic `Zero`/`One` cells are factored directly into logic during
/// CNF encoding (paper Table 3, right column); every other cell references a
/// weight slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatEntry {
    /// Amplitude exactly 0: this (parents, value) combination is impossible.
    Zero,
    /// Amplitude exactly 1: allowed with no weight.
    One,
    /// Amplitude given by the node's weight slot with this index.
    Weight(usize),
}

/// What a node represents in the source circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// An initial qubit state (`q{i}m0`), deterministically `|0⟩`.
    Initial {
        /// The qubit.
        qubit: usize,
    },
    /// A qubit state after some operation (`q{i}m{t}`).
    QubitState {
        /// The qubit.
        qubit: usize,
        /// Which operation produced it.
        op_index: usize,
    },
    /// A noise-branch selector random variable (`q{i}m{t}rv`): which Kraus /
    /// mixture branch the noise event took (§3.1.2).
    NoiseSelector {
        /// The noise operation.
        op_index: usize,
        /// The affected qubit.
        qubit: usize,
    },
    /// A measurement-outcome random variable.
    MeasureOutcome {
        /// The measurement operation.
        op_index: usize,
        /// The measured qubit.
        qubit: usize,
    },
}

impl NodeRole {
    /// Returns `true` for noise-selector and measurement-outcome RVs — the
    /// variables that, together with final qubit states, form the *query*
    /// variables of simulation.
    pub fn is_random_event(&self) -> bool {
        matches!(
            self,
            NodeRole::NoiseSelector { .. } | NodeRole::MeasureOutcome { .. }
        )
    }
}

/// One Bayesian-network node: a discrete variable with parents and a
/// conditional amplitude table (CAT).
///
/// The CAT is row-major: rows enumerate joint parent assignments in
/// mixed-radix order (first parent most significant), columns enumerate this
/// node's values. Compare paper Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Human-readable label following the paper's `q{i}m{t}` convention.
    pub label: String,
    /// Domain size (2 for qubit states; up to 4 for noise selectors).
    pub domain: usize,
    /// Parent nodes, in CAT row order.
    pub parents: Vec<NodeId>,
    /// The conditional amplitude table, `rows × domain` row-major.
    pub cat: Vec<CatEntry>,
    /// Weight slots referenced by [`CatEntry::Weight`].
    pub weights: Vec<WeightValue>,
    /// What the node represents.
    pub role: NodeRole,
}

impl Node {
    /// Number of CAT rows (product of parent domains).
    pub fn num_rows(&self) -> usize {
        self.cat.len() / self.domain
    }

    /// The CAT entry for a given row (parent assignment index) and value.
    pub fn entry(&self, row: usize, value: usize) -> CatEntry {
        self.cat[row * self.domain + value]
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (domain {}, {} parents, {} weights)",
            self.label,
            self.domain,
            self.parents.len(),
            self.weights.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_shape_accessors() {
        let n = Node {
            label: "q0m1".into(),
            domain: 2,
            parents: vec![0],
            cat: vec![
                CatEntry::Weight(0),
                CatEntry::Weight(1),
                CatEntry::Weight(2),
                CatEntry::Weight(3),
            ],
            weights: vec![WeightValue::Const(qkc_math::C_ONE); 4],
            role: NodeRole::QubitState {
                qubit: 0,
                op_index: 0,
            },
        };
        assert_eq!(n.num_rows(), 2);
        assert_eq!(n.entry(1, 0), CatEntry::Weight(2));
    }

    #[test]
    fn role_classification() {
        assert!(NodeRole::NoiseSelector {
            op_index: 0,
            qubit: 0
        }
        .is_random_event());
        assert!(NodeRole::MeasureOutcome {
            op_index: 0,
            qubit: 0
        }
        .is_random_event());
        assert!(!NodeRole::Initial { qubit: 0 }.is_random_event());
        assert!(!NodeRole::QubitState {
            qubit: 0,
            op_index: 3
        }
        .is_random_event());
    }
}
