//! A minimal drop-in for the subset of the `proptest` API this workspace
//! uses: range and tuple strategies, `prop_map`, `collection::vec`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and `prop_assert!`.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors this shim as a path dependency under the same crate
//! name. Unlike real proptest it does no shrinking: a failing case panics
//! with the generated inputs Debug-printed, which is enough to reproduce
//! (generation is deterministic per test name).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

pub mod collection;

/// Bit-pattern strategies (`proptest::bits`).
pub mod bits {
    /// Strategies over `u8` bit patterns.
    pub mod u8 {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// The strategy type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = ::core::primitive::u8;

            fn new_value(&self, rng: &mut TestRng) -> ::core::primitive::u8 {
                (rng.0.gen::<u32>() & 0xFF) as ::core::primitive::u8
            }
        }

        /// Uniform over all 256 byte values.
        pub const ANY: Any = Any;
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

std::thread_local! {
    #[doc(hidden)]
    static SKIP_CASE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Marks the current case as skipped (used by [`prop_assume!`]).
#[doc(hidden)]
pub fn mark_case_skipped() {
    SKIP_CASE.with(|s| s.set(true));
}

/// Reads and clears the skip marker (used by [`proptest!`]).
#[doc(hidden)]
pub fn take_case_skipped() -> bool {
    SKIP_CASE.with(|s| s.replace(false))
}

/// Skips the rest of the current case when `cond` is false. Unlike real
/// proptest, skipped cases still count toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            $crate::mark_case_skipped();
            return;
        }
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic source of randomness for strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from the test's name, so every run of a given
    /// test sees the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

/// A generator of random values — the shim's analogue of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// The assertion used inside `proptest!` bodies. Plain `assert!` here —
/// without shrinking there is no need to route failures differently.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0..5, 1..4)) {
///         prop_assert!(x < 10 && !v.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let debug_inputs = format!(
                        concat!("case {}: ", $(concat!(stringify!($arg), " = {:?} ")),+),
                        case $(, $arg)+
                    );
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    let _skipped = $crate::take_case_skipped();
                    if let Err(payload) = result {
                        eprintln!("proptest failure inputs: {debug_inputs}");
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 2usize..9,
            theta in -1.0..1.0f64,
            v in crate::collection::vec(0usize..4, 1..6),
        ) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&theta));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn prop_map_applies(
            doubled in (0usize..10).prop_map(|k| k * 2),
        ) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(
                crate::Strategy::new_value(&s, &mut a),
                crate::Strategy::new_value(&s, &mut b)
            );
        }
    }
}
