//! Collection strategies.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::Range;

/// The accepted size specifications of [`vec`]: a fixed length or a
/// half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.0.gen_range(self.size.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into().0,
    }
}
