//! Sequence helpers.

use crate::Rng;

/// In-place randomization of slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Uniformly permutes the slice (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}
