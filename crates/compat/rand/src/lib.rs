//! A dependency-free drop-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors this shim as a path dependency under the same crate
//! name. It provides:
//!
//! * [`Rng`] with `gen`, `gen_range`, and `gen_bool`;
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`rngs::StdRng`], a xoshiro256++ generator (SplitMix64-seeded);
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle`.
//!
//! Streams are deterministic for a given seed (they do **not** match the
//! real `rand` crate's streams, which no caller in this workspace relies
//! on), and every statistical property the workspace tests exercise —
//! uniformity, independence across `seed_from_u64` seeds — holds to far
//! tighter tolerances than the tests demand.

#![forbid(unsafe_code)]

use std::ops::Range;

pub mod rngs;
pub mod seq;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high bits of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution:
    /// uniform `[0, 1)` for `f64`, uniform over all values for integers,
    /// fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(range, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`; distinct seeds give statistically independent streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their standard distribution (the shim's analogue of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Types samplable uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire reduction
/// without the rejection loop; bias is < 2^-64·span, far below anything the
/// workspace's statistical tests can resolve).
fn uniform_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                range.start.wrapping_add(uniform_below(span, rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k = rng.gen_range(0..5usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        rng.gen_range(3..3usize);
    }
}
