//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ with SplitMix64 state
/// expansion. Fast, 256-bit state, passes BigCrush — more than adequate for
/// simulation sampling.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the 64-bit seed into full state; it cannot
        // produce the all-zero state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
