//! A minimal drop-in for the subset of the `criterion` benchmarking API
//! this workspace uses: `Criterion`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors this shim as a path dependency under the same crate
//! name. Instead of criterion's statistical analysis it runs a short
//! calibrated loop per benchmark and prints the mean wall-clock time —
//! enough for the relative comparisons the bench binaries make.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Requested measurement budget per benchmark.
    measurement: Duration,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\n# group {}", name.into());
        BenchmarkGroup {
            _parent: self,
            sample_size: 0,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.budget(), f);
        self
    }

    fn budget(&self) -> Duration {
        if self.measurement.is_zero() {
            Duration::from_millis(300)
        } else {
            self.measurement
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's time budget already
    /// bounds sample counts.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, Duration::from_millis(300), |b| f(b, input));
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, Duration::from_millis(300), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self(param.to_string())
    }
}

/// The timing harness handed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, running it enough iterations to fill the measurement
    /// budget (at least once).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One calibration run decides the iteration count.
        let start = Instant::now();
        std_black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.report = Some((iters, start.elapsed()));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, mut f: F) {
    let mut b = Bencher {
        budget,
        report: None,
    };
    f(&mut b);
    match b.report {
        Some((iters, total)) => {
            let mean = total.as_secs_f64() / iters as f64;
            println!(
                "bench {name:<40} {:>12} /iter  ({iters} iters)",
                fmt_time(mean)
            );
        }
        None => println!("bench {name:<40} (no measurement)"),
    }
}

fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        // Bench groups are harness plumbing, not API surface.
        #[allow(missing_docs)]
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_runs_and_reports() {
        let mut c = super::Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(super::BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter(|| x * x);
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(super::BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(super::BenchmarkId::from_parameter(8).0, "8");
    }
}
