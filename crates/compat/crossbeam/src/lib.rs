//! A drop-in for the `crossbeam::scope` API, implemented over
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors this shim as a path dependency under the same crate
//! name. Only the scoped-thread subset the workspace uses is provided:
//! `crossbeam::scope(|s| { s.spawn(|_| ...) })` with joinable handles.

#![forbid(unsafe_code)]

use std::any::Any;
use std::thread;

/// The error payload of a panicked thread.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure and to each spawned
/// thread's closure (so threads can spawn siblings, as in crossbeam).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope, matching
    /// crossbeam's signature `FnOnce(&Scope) -> T`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// A handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread and returns its result, or the panic payload if
    /// it panicked.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

/// Creates a scope in which threads borrowing from the enclosing
/// environment can be spawned; all are joined before `scope` returns.
///
/// Returns `Ok` with the closure's result. (Panics of *joined* threads are
/// delivered through [`ScopedJoinHandle::join`]; a panic of an unjoined
/// thread propagates out of `scope` itself, which is stricter than
/// crossbeam's `Err` return but equivalent for every caller that joins its
/// handles.)
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut total = 0u64;
        super::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            for h in handles {
                total += h.join().expect("thread");
            }
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = super::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21).join().map(|v| v * 2).unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn joined_panic_is_an_err() {
        super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
