//! Dense complex matrices sized for quantum operators.
//!
//! Gate unitaries and Kraus operators in this toolchain are small (up to a few
//! qubits), so a simple row-major `Vec<Complex>` representation is both fast
//! enough and easy to audit. Larger objects (state vectors, density matrices)
//! live in their dedicated simulator crates.

use crate::complex::{Complex, C_ONE, C_ZERO};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use qkc_math::{CMatrix, Complex};
///
/// let h = CMatrix::hadamard();
/// assert!(h.is_unitary(1e-12));
/// assert!((&h * &h).approx_eq(&CMatrix::identity(2), 1e-12));
/// ```
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![C_ZERO; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from real row-major data.
    pub fn from_real(rows: usize, cols: usize, data: &[f64]) -> Self {
        Self::from_rows(rows, cols, data.iter().map(|&x| Complex::real(x)).collect())
    }

    /// The `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C_ONE;
        }
        m
    }

    /// The 2×2 Hadamard unitary.
    pub fn hadamard() -> Self {
        let s = Complex::real(std::f64::consts::FRAC_1_SQRT_2);
        Self::from_rows(2, 2, vec![s, s, s, -s])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Conjugate transpose (adjoint, `†`).
    pub fn adjoint(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
        out
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    ///
    /// ```
    /// use qkc_math::CMatrix;
    /// let i4 = CMatrix::identity(2).kron(&CMatrix::identity(2));
    /// assert!(i4.approx_eq(&CMatrix::identity(4), 1e-15));
    /// ```
    pub fn kron(&self, other: &CMatrix) -> Self {
        let mut out = Self::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let a = self[(r1, c1)];
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        out[(r1 * other.rows + r2, c1 * other.cols + c2)] = a * other[(r2, c2)];
                    }
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        let mut out = vec![C_ZERO; self.rows];
        for r in 0..self.rows {
            let mut acc = C_ZERO;
            for c in 0..self.cols {
                acc += self[(r, c)] * v[c];
            }
            out[r] = acc;
        }
        out
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Returns `true` if `self† · self ≈ I` within `tol` (entry-wise).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        (&self.adjoint() * self).approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Returns `true` if the matrix is Hermitian within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.rows == self.cols && self.approx_eq(&self.adjoint(), tol)
    }

    /// Entry-wise approximate equality with absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` if every row and every column holds at most one entry
    /// with magnitude above `tol` (a *monomial* / generalized permutation
    /// matrix). Gates with this property translate to Bayesian-network
    /// conditional amplitude tables without qubit duplication (§3.1.1).
    pub fn is_monomial(&self, tol: f64) -> bool {
        for r in 0..self.rows {
            if (0..self.cols)
                .filter(|&c| self[(r, c)].norm() > tol)
                .count()
                > 1
            {
                return false;
            }
        }
        for c in 0..self.cols {
            if (0..self.rows)
                .filter(|&r| self[(r, c)].norm() > tol)
                .count()
                > 1
            {
                return false;
            }
        }
        true
    }

    /// Returns `true` if all off-diagonal entries are below `tol`.
    pub fn is_diagonal(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c && self[(r, c)].norm() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;

    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == crate::complex::C_ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;

    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;

    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C_I;
    use proptest::prelude::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let h = CMatrix::hadamard();
        assert!((&h * &CMatrix::identity(2)).approx_eq(&h, 1e-15));
        assert!((&CMatrix::identity(2) * &h).approx_eq(&h, 1e-15));
    }

    #[test]
    fn hadamard_is_unitary_and_self_inverse() {
        let h = CMatrix::hadamard();
        assert!(h.is_unitary(1e-12));
        assert!((&h * &h).approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn kron_shapes_and_values() {
        let x = CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let xx = x.kron(&x);
        assert_eq!(xx.rows(), 4);
        // X⊗X maps |00> -> |11>.
        assert_eq!(xx[(3, 0)], C_ONE);
        assert_eq!(xx[(0, 0)], C_ZERO);
    }

    #[test]
    fn adjoint_reverses_products() {
        let h = CMatrix::hadamard();
        let s = CMatrix::from_rows(2, 2, vec![C_ONE, C_ZERO, C_ZERO, C_I]);
        let lhs = (&h * &s).adjoint();
        let rhs = &s.adjoint() * &h.adjoint();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let h = CMatrix::hadamard();
        let v = vec![C_ONE, C_ZERO];
        let got = h.mul_vec(&v);
        assert!(got[0].approx_eq(Complex::real(std::f64::consts::FRAC_1_SQRT_2), 1e-12));
        assert!(got[1].approx_eq(Complex::real(std::f64::consts::FRAC_1_SQRT_2), 1e-12));
    }

    #[test]
    fn trace_of_identity_is_dimension() {
        assert!(CMatrix::identity(5)
            .trace()
            .approx_eq(Complex::real(5.0), 1e-15));
    }

    #[test]
    fn monomial_detection() {
        let cnot = CMatrix::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0, //
                0.0, 0.0, 1.0, 0.0,
            ],
        );
        assert!(cnot.is_monomial(1e-12));
        assert!(!CMatrix::hadamard().is_monomial(1e-12));
    }

    #[test]
    fn diagonal_detection() {
        let cz = CMatrix::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 0.0, 0.0, -1.0,
            ],
        );
        assert!(cz.is_diagonal(1e-12));
        assert!(cz.is_monomial(1e-12));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_product_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }

    fn arb_unitary2() -> impl Strategy<Value = CMatrix> {
        // Random U(2) element via three Euler angles and a phase.
        (
            0.0..std::f64::consts::TAU,
            0.0..std::f64::consts::TAU,
            0.0..std::f64::consts::TAU,
            0.0..std::f64::consts::TAU,
        )
            .prop_map(|(a, b, t, p)| {
                let (ca, sa) = ((t / 2.0).cos(), (t / 2.0).sin());
                let e = Complex::cis(p);
                CMatrix::from_rows(
                    2,
                    2,
                    vec![
                        e * Complex::cis(a) * Complex::real(ca),
                        e * Complex::cis(b) * Complex::real(sa),
                        e * Complex::cis(-b) * Complex::real(-sa),
                        e * Complex::cis(-a) * Complex::real(ca),
                    ],
                )
            })
    }

    proptest! {
        #[test]
        fn random_unitaries_are_unitary(u in arb_unitary2()) {
            prop_assert!(u.is_unitary(1e-9));
        }

        #[test]
        fn kron_of_unitaries_is_unitary(u in arb_unitary2(), v in arb_unitary2()) {
            prop_assert!(u.kron(&v).is_unitary(1e-8));
        }

        #[test]
        fn product_of_unitaries_is_unitary(u in arb_unitary2(), v in arb_unitary2()) {
            prop_assert!((&u * &v).is_unitary(1e-8));
        }
    }
}
