//! Discrete sampling helpers.
//!
//! The "ideal sampling" baselines draw thousands of outcomes from a fixed
//! measurement distribution; [`AliasTable`] gives O(1) draws after O(n)
//! setup (Walker/Vose alias method). [`sample_cdf`] covers the one-shot case.

use rand::Rng;

/// Walker–Vose alias table for O(1) sampling from a fixed discrete
/// distribution.
///
/// # Examples
///
/// ```
/// use qkc_math::AliasTable;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[0.5, 0.25, 0.25]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = table.sample(&mut rng);
/// assert!(x < 3);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from (unnormalized) non-negative weights.
    ///
    /// Returns `None` if the weights are empty, contain negative or
    /// non-finite entries, or sum to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let sum: f64 = weights.iter().sum();
        if !sum.is_finite() || sum <= 0.0 || weights.iter().any(|&w| !(w.is_finite() && w >= 0.0)) {
            return None;
        }
        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0; n];
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / sum).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in large.iter().chain(small.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(Self { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the table has no outcomes (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Draws one outcome from unnormalized non-negative weights by inverse-CDF.
///
/// Useful for one-shot conditional draws (e.g. a Gibbs transition) where
/// building an alias table would cost more than the draw.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn sample_cdf<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "cannot sample from empty weights");
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must sum to a positive finite value, got {total}"
    );
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alias_rejects_invalid() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[-1.0, 1.0]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn alias_matches_distribution() {
        let weights = [0.5, 0.3, 0.15, 0.05];
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for i in 0..4 {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - weights[i]).abs() < 0.01,
                "outcome {i}: freq {freq} vs weight {}",
                weights[i]
            );
        }
    }

    #[test]
    fn alias_handles_degenerate_point_mass() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn cdf_sampling_matches_distribution() {
        let weights = [2.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[sample_cdf(&weights, &mut rng)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn cdf_sampling_rejects_zero_mass() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_cdf(&[0.0, 0.0], &mut rng);
    }
}
