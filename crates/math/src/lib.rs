//! Numeric foundations for the QKC toolchain: complex arithmetic, dense
//! complex matrices, discrete-distribution statistics, and fast discrete
//! sampling.
//!
//! Every simulator in the workspace — state vector, density matrix, tensor
//! network, and the knowledge-compilation pipeline itself — builds on these
//! primitives, so they are implemented once here with no external numeric
//! dependencies.
//!
//! # Examples
//!
//! ```
//! use qkc_math::{CMatrix, Complex};
//!
//! // Amplitude after a Hadamard on |0>.
//! let psi = CMatrix::hadamard().mul_vec(&[Complex::real(1.0), Complex::real(0.0)]);
//! assert!((psi[0].norm_sqr() - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

mod complex;
mod matrix;
mod sampling;
mod stats;

pub use complex::{Complex, C_I, C_ONE, C_ZERO, FRAC_1_SQRT_2};
pub use matrix::CMatrix;
pub use sampling::{sample_cdf, AliasTable};
pub use stats::{empirical_kl, kl_divergence, normalize, total_variation, EmpiricalDistribution};
