//! Distribution utilities: empirical distributions, Kullback–Leibler
//! divergence, and total-variation distance.
//!
//! The paper quantifies Gibbs-sampling accuracy with the KL divergence
//! between the empirical sample distribution and the exact measurement
//! distribution (Figure 7), chosen because KL "discounts any error due to
//! zero samples being drawn from low-probability outcomes" (§3.3.3).

/// An empirical distribution over `0..n` outcomes accumulated from counts.
///
/// # Examples
///
/// ```
/// use qkc_math::EmpiricalDistribution;
///
/// let mut e = EmpiricalDistribution::new(4);
/// e.record(0);
/// e.record(0);
/// e.record(3);
/// assert_eq!(e.total(), 3);
/// assert!((e.probability(0) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmpiricalDistribution {
    counts: Vec<u64>,
    total: u64,
}

impl EmpiricalDistribution {
    /// Creates an empty distribution over `n` outcomes.
    pub fn new(n: usize) -> Self {
        Self {
            counts: vec![0; n],
            total: 0,
        }
    }

    /// Records one observation of `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if `outcome` is out of range.
    pub fn record(&mut self, outcome: usize) {
        self.counts[outcome] += 1;
        self.total += 1;
    }

    /// Number of observations recorded so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of possible outcomes.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Raw count for `outcome`.
    pub fn count(&self, outcome: usize) -> u64 {
        self.counts[outcome]
    }

    /// Empirical probability of `outcome` (0 when nothing recorded).
    pub fn probability(&self, outcome: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[outcome] as f64 / self.total as f64
        }
    }

    /// The full probability vector.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.counts.len())
            .map(|i| self.probability(i))
            .collect()
    }
}

/// Kullback–Leibler divergence `D(p ‖ q)` in nats.
///
/// Terms with `p[i] == 0` contribute zero (the convention that makes KL
/// insensitive to outcomes the sampler never drew, as used in the paper's
/// Figure 7). Terms where `p[i] > 0` but `q[i] == 0` contribute `+∞`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use qkc_math::kl_divergence;
/// let p = [0.5, 0.5];
/// assert!(kl_divergence(&p, &p).abs() < 1e-12);
/// ```
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share support");
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi > 0.0 {
                d += pi * (pi / qi).ln();
            } else {
                return f64::INFINITY;
            }
        }
    }
    d
}

/// KL divergence of an *empirical* distribution from an exact one,
/// `D(empirical ‖ exact)` — the orientation plotted in Figure 7, which
/// discounts unvisited low-probability outcomes.
pub fn empirical_kl(empirical: &EmpiricalDistribution, exact: &[f64]) -> f64 {
    kl_divergence(&empirical.probabilities(), exact)
}

/// Total variation distance `½·Σ|p - q|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share support");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Normalizes a non-negative weight vector into a probability vector.
///
/// Returns `None` if the weights sum to zero or contain a negative /
/// non-finite entry.
pub fn normalize(weights: &[f64]) -> Option<Vec<f64>> {
    let mut sum = 0.0;
    for &w in weights {
        if !(w.is_finite() && w >= 0.0) {
            return None;
        }
        sum += w;
    }
    if sum <= 0.0 {
        return None;
    }
    Some(weights.iter().map(|&w| w / sum).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empirical_distribution_counts() {
        let mut e = EmpiricalDistribution::new(3);
        for _ in 0..7 {
            e.record(1);
        }
        for _ in 0..3 {
            e.record(2);
        }
        assert_eq!(e.total(), 10);
        assert_eq!(e.count(1), 7);
        assert!((e.probability(1) - 0.7).abs() < 1e-12);
        assert_eq!(e.probability(0), 0.0);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.1, 0.2, 0.3, 0.4];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_for_different() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_ignores_unsampled_outcomes() {
        // p has zero mass where q is tiny: finite divergence.
        let p = [1.0, 0.0];
        let q = [0.999, 0.001];
        assert!(kl_divergence(&p, &q).is_finite());
    }

    #[test]
    fn kl_infinite_when_support_escapes() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!(kl_divergence(&p, &q).is_infinite());
    }

    #[test]
    fn tv_bounds() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn normalize_rejects_bad_inputs() {
        assert!(normalize(&[0.0, 0.0]).is_none());
        assert!(normalize(&[-1.0, 2.0]).is_none());
        assert!(normalize(&[f64::NAN]).is_none());
        let n = normalize(&[1.0, 3.0]).unwrap();
        assert!((n[0] - 0.25).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn kl_is_nonnegative(raw in proptest::collection::vec(0.01..1.0f64, 2..8)) {
            let p = normalize(&raw).unwrap();
            let mut shifted = raw.clone();
            shifted.rotate_left(1);
            let q = normalize(&shifted).unwrap();
            prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        }

        #[test]
        fn tv_is_symmetric_and_bounded(
            a in proptest::collection::vec(0.01..1.0f64, 4),
            b in proptest::collection::vec(0.01..1.0f64, 4),
        ) {
            let p = normalize(&a).unwrap();
            let q = normalize(&b).unwrap();
            let tv = total_variation(&p, &q);
            prop_assert!((total_variation(&q, &p) - tv).abs() < 1e-12);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&tv));
        }
    }
}
