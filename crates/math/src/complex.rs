//! Complex numbers over `f64`.
//!
//! The toolchain manipulates quantum amplitudes, which are complex-valued, and
//! noise probabilities, which are real-valued; both are carried uniformly as
//! [`Complex`]. The type is deliberately minimal — exactly the operations the
//! simulators need — and is `Copy` so amplitude kernels stay allocation-free.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + im·i` with `f64` components.
///
/// # Examples
///
/// ```
/// use qkc_math::Complex;
///
/// let h = Complex::new(1.0, 0.0) / Complex::new(2.0_f64.sqrt(), 0.0);
/// assert!((h.norm_sqr() - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

/// The additive identity, `0 + 0i`.
pub const C_ZERO: Complex = Complex { re: 0.0, im: 0.0 };
/// The multiplicative identity, `1 + 0i`.
pub const C_ONE: Complex = Complex { re: 1.0, im: 0.0 };
/// The imaginary unit, `0 + 1i`.
pub const C_I: Complex = Complex { re: 0.0, im: 1.0 };
/// `1/sqrt(2)`, the Hadamard amplitude.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Creates `r·e^{iθ}` from polar coordinates.
    ///
    /// ```
    /// use qkc_math::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit phase.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate `re - im·i`.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// The squared magnitude `re² + im²`.
    ///
    /// For an amplitude this is the Born-rule measurement probability.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `sqrt(re² + im²)`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Does not panic; inverting zero yields non-finite components, matching
    /// `f64` division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance `tol` on both components.
    ///
    /// ```
    /// use qkc_math::Complex;
    /// assert!(Complex::new(1.0, 0.0).approx_eq(Complex::new(1.0 + 1e-13, 0.0), 1e-9));
    /// ```
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` if the value is within `tol` of zero.
    #[inline]
    pub fn approx_zero(self, tol: f64) -> bool {
        self.norm() <= tol
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(C_ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(C_ONE, |a, b| a * b)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{:+.6}", self.re)
        } else if self.re == 0.0 {
            write!(f, "{:+.6}i", self.im)
        } else {
            write!(f, "{:+.6}{:+.6}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Complex, b: Complex) -> bool {
        a.approx_eq(b, 1e-10)
    }

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex::new(1.5, -2.0).re, 1.5);
        assert_eq!(Complex::real(3.0), Complex::new(3.0, 0.0));
        assert_eq!(Complex::imag(3.0), Complex::new(0.0, 3.0));
        assert_eq!(C_ZERO + C_ONE, C_ONE);
        assert_eq!(C_I * C_I, -C_ONE);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            assert!((Complex::cis(theta).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_matches_hand_calculation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        assert!(close(a * b, Complex::new(5.0, 5.0)));
        assert!(close((a / b) * b, a));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(0.3, -0.4);
        assert!(close(a * a.conj(), Complex::real(a.norm_sqr())));
        assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn exponential_euler_identity() {
        let z = Complex::imag(std::f64::consts::PI);
        assert!(close(z.exp(), -C_ONE));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-0.36, 0.0);
        let r = z.sqrt();
        assert!(close(r * r, z));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Complex::real(1.0).to_string(), "+1.000000");
        assert_eq!(Complex::imag(-1.0).to_string(), "-1.000000i");
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "+1.000000+1.000000i");
    }

    fn arb_complex() -> impl Strategy<Value = Complex> {
        (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(re, im)| Complex::new(re, im))
    }

    proptest! {
        #[test]
        fn addition_commutes(a in arb_complex(), b in arb_complex()) {
            prop_assert!(close(a + b, b + a));
        }

        #[test]
        fn multiplication_commutes(a in arb_complex(), b in arb_complex()) {
            prop_assert!(close(a * b, b * a));
        }

        #[test]
        fn multiplication_distributes(a in arb_complex(), b in arb_complex(), c in arb_complex()) {
            prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-8));
        }

        #[test]
        fn norm_is_multiplicative(a in arb_complex(), b in arb_complex()) {
            prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-8);
        }

        #[test]
        fn recip_is_inverse(a in arb_complex()) {
            prop_assume!(a.norm() > 1e-3);
            prop_assert!((a * a.recip()).approx_eq(C_ONE, 1e-9));
        }

        #[test]
        fn conj_is_ring_homomorphism(a in arb_complex(), b in arb_complex()) {
            prop_assert!(close((a * b).conj(), a.conj() * b.conj()));
            prop_assert!(close((a + b).conj(), a.conj() + b.conj()));
        }
    }
}
