//! End-to-end knowledge-compilation simulator for noisy variational quantum
//! algorithms — the primary contribution of the reproduced paper.
//!
//! [`KcSimulator::compile`] runs the full toolchain of the paper's Figure 4:
//! the circuit becomes a complex-valued Bayesian network, the network is
//! encoded as CNF separating structure from parameters, the CNF is
//! simplified by unit resolution and compiled to a d-DNNF arithmetic
//! circuit, internal qubit states are elided, and the circuit is smoothed
//! over the query variables (final qubit states plus noise/measurement
//! random variables).
//!
//! [`KcSimulator::bind`] then attaches concrete parameter values — the
//! cheap per-iteration step of a variational loop — and supports amplitude
//! queries (upward pass), density-matrix reconstruction, and Gibbs sampling
//! from the output wavefunction (downward pass).
//!
//! # Examples
//!
//! ```
//! use qkc_circuit::{Circuit, Param, ParamMap};
//! use qkc_core::KcSimulator;
//!
//! // Compile once...
//! let mut c = Circuit::new(2);
//! c.rx(0, Param::symbol("theta")).cnot(0, 1);
//! let sim = KcSimulator::compile(&c, &Default::default());
//! // ...then re-bind parameters across variational iterations.
//! for theta in [0.3, 1.1, 2.9] {
//!     let bound = sim.bind(&ParamMap::from_pairs([("theta", theta)])).unwrap();
//!     let p11 = bound.amplitude(0b11, &[]).norm_sqr();
//!     assert!((p11 - (theta / 2.0_f64).sin().powi(2)).abs() < 1e-10);
//! }
//! ```

#![forbid(unsafe_code)]

mod artifact;
mod batch;
mod bound;
mod diagnose;
mod pipeline;
mod verify;

pub use artifact::{ArtifactDecodeError, ARTIFACT_WIRE_VERSION};
pub use batch::{BoundKcBatch, BoundKcBatchTangents};
pub use bound::{BoundKc, BoundKcTangents, KcSampler};
pub use diagnose::{Explanation, Sensitivity};
pub use pipeline::{
    CompileCancelled, CompileCheckpoint, CompileError, CompilePhase, KcOptions, KcSimulator,
    PhaseSeconds, PipelineMetrics, QuerySpec, ValueState,
};
pub use qkc_knowledge::{Finding, Severity, VerifyLevel, VerifyPass, VerifyReport};
pub use verify::record_verify_telemetry;

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::{Circuit, Param, ParamMap};
    use qkc_densitymatrix::DensityMatrixSimulator;
    use qkc_knowledge::{GibbsOptions, VarOrder};
    use qkc_statevector::StateVectorSimulator;

    fn all_option_combos() -> Vec<KcOptions> {
        let mut out = Vec::new();
        for order in [VarOrder::Lexicographic, VarOrder::MinCutSeparator] {
            for simplify_cnf in [true, false] {
                for elide_internal in [true, false] {
                    out.push(KcOptions {
                        order,
                        cache: true,
                        simplify_cnf,
                        elide_internal,
                        ..Default::default()
                    });
                }
            }
        }
        out
    }

    /// KC wavefunction == state-vector wavefunction, across every pipeline
    /// option combination.
    fn check_pure(c: &Circuit, params: &ParamMap) {
        let want = StateVectorSimulator::new().run_pure(c, params).unwrap();
        for options in all_option_combos() {
            let sim = KcSimulator::compile(c, &options);
            let bound = sim.bind(params).unwrap();
            let got = bound.wavefunction();
            for (x, (&g, &w)) in got.iter().zip(want.amplitudes()).enumerate() {
                assert!(
                    g.approx_eq(w, 1e-9),
                    "amp {x}: {g} vs {w} under {options:?}"
                );
            }
        }
    }

    /// KC density matrix == density-matrix simulator, default options.
    fn check_noisy(c: &Circuit, params: &ParamMap) {
        let want = DensityMatrixSimulator::new().run(c, params).unwrap();
        let sim = KcSimulator::compile(c, &KcOptions::default());
        let bound = sim.bind(params).unwrap();
        let got = bound.density_matrix();
        let dim = want.dim();
        for r in 0..dim {
            for col in 0..dim {
                assert!(
                    got[(r, col)].approx_eq(want.entry(r, col), 1e-9),
                    "rho[{r},{col}]: {} vs {}",
                    got[(r, col)],
                    want.entry(r, col)
                );
            }
        }
    }

    #[test]
    fn bell_and_ghz_match_state_vector() {
        let mut bell = Circuit::new(2);
        bell.h(0).cnot(0, 1);
        check_pure(&bell, &ParamMap::new());

        let mut ghz = Circuit::new(3);
        ghz.h(0).cnot(0, 1).cnot(1, 2);
        check_pure(&ghz, &ParamMap::new());
    }

    #[test]
    fn dense_gate_mix_matches_state_vector() {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(0)
            .cnot(0, 1)
            .zz(1, 2, 0.73)
            .rx(2, 0.41)
            .cz(0, 2)
            .swap(1, 2)
            .ry(0, -1.2)
            .ccx(0, 1, 2)
            .phase(1, 0.9);
        check_pure(&c, &ParamMap::new());
    }

    #[test]
    fn deterministic_outputs_are_handled() {
        // X-only circuit: every output forced; unit resolution fixes all
        // query vars.
        let mut c = Circuit::new(2);
        c.x(0).x(1).x(0);
        check_pure(&c, &ParamMap::new());
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let bound = sim.bind(&ParamMap::new()).unwrap();
        assert!(bound.amplitude(0b01, &[]).approx_eq(qkc_math::C_ONE, 1e-12));
        assert!(bound.amplitude(0b11, &[]).approx_zero(1e-12));
    }

    #[test]
    fn global_phase_factor_from_fixed_params() {
        // Rz on |0> contributes e^{-iθ/2} through a unit-resolved parameter
        // variable: the global-factor path must keep it.
        let mut c = Circuit::new(1);
        c.rz(0, 0.8);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let bound = sim.bind(&ParamMap::new()).unwrap();
        let amp = bound.amplitude(0, &[]);
        assert!(amp.approx_eq(qkc_math::Complex::cis(-0.4), 1e-12));
    }

    #[test]
    fn noisy_bell_matches_density_matrix() {
        let mut c = Circuit::new(2);
        c.h(0).phase_damp(0, 0.36).cnot(0, 1);
        check_noisy(&c, &ParamMap::new());
    }

    #[test]
    fn all_noise_channels_match_density_matrix() {
        for noise in [
            qkc_circuit::NoiseChannel::bit_flip(0.2),
            qkc_circuit::NoiseChannel::phase_flip(0.15),
            qkc_circuit::NoiseChannel::depolarizing(0.3),
            qkc_circuit::NoiseChannel::asymmetric_depolarizing(0.1, 0.05, 0.2),
            qkc_circuit::NoiseChannel::amplitude_damping(0.4),
            qkc_circuit::NoiseChannel::generalized_amplitude_damping(0.3, 0.25),
            qkc_circuit::NoiseChannel::phase_damping(0.36),
        ] {
            let mut c = Circuit::new(2);
            c.h(0).noise(noise.clone(), 0).cnot(0, 1).t(1);
            check_noisy(&c, &ParamMap::new());
        }
    }

    #[test]
    fn measurement_dephasing_matches_density_matrix() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0).cnot(0, 1).h(0);
        check_noisy(&c, &ParamMap::new());
    }

    #[test]
    fn parameter_rebinding_reuses_compilation() {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("a"))
            .zz(0, 1, Param::symbol("b"))
            .ry(1, Param::symbol("c"));
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        for (a, b, cc) in [(0.3, 0.7, 1.1), (2.1, -0.4, 0.0), (1.57, 3.0, -2.2)] {
            let params = ParamMap::from_pairs([("a", a), ("b", b), ("c", cc)]);
            let bound = sim.bind(&params).unwrap();
            let want = StateVectorSimulator::new().run_pure(&c, &params).unwrap();
            for x in 0..4 {
                assert!(
                    bound.amplitude(x, &[]).approx_eq(want.amplitude(x), 1e-9),
                    "amp {x} at ({a},{b},{cc})"
                );
            }
        }
    }

    #[test]
    fn unbound_parameter_is_reported() {
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("missing"));
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        assert!(sim.bind(&ParamMap::new()).is_err());
    }

    #[test]
    fn noisy_parameterized_rebinding_matches_density_matrix() {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("t")).depolarize(0, 0.05).cnot(0, 1);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        for t in [0.4, 1.9] {
            let params = ParamMap::from_pairs([("t", t)]);
            let bound = sim.bind(&params).unwrap();
            let want = DensityMatrixSimulator::new().run(&c, &params).unwrap();
            let got = bound.density_matrix();
            for r in 0..4 {
                for col in 0..4 {
                    assert!(got[(r, col)].approx_eq(want.entry(r, col), 1e-9));
                }
            }
        }
    }

    #[test]
    fn gibbs_sampling_converges_on_noisy_circuit() {
        // A full-support noisy circuit; empirical Gibbs distribution must
        // approach the density-matrix diagonal.
        let mut c = Circuit::new(2);
        c.rx(0, 1.1).depolarize(0, 0.1).cnot(0, 1).ry(1, 0.7);
        let params = ParamMap::new();
        let want = DensityMatrixSimulator::new()
            .probabilities(&c, &params)
            .unwrap();
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let bound = sim.bind(&params).unwrap();
        let mut sampler = bound.sampler(&GibbsOptions {
            warmup: 500,
            thin: 3,
            seed: 9,
            ..Default::default()
        });
        let shots = 20_000;
        let mut counts = [0usize; 4];
        for x in sampler.sample_outputs(shots, 3) {
            counts[x] += 1;
        }
        for x in 0..4 {
            let freq = counts[x] as f64 / shots as f64;
            assert!(
                (freq - want[x]).abs() < 0.02,
                "P({x}): {freq} vs {}",
                want[x]
            );
        }
    }

    #[test]
    fn metrics_are_populated() {
        let mut c = Circuit::new(2);
        c.h(0).depolarize(0, 0.01).cnot(0, 1);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let m = sim.metrics();
        assert!(m.bn_nodes >= 5);
        assert!(m.cnf_clauses > 0);
        assert!(m.cnf_clauses_simplified <= m.cnf_clauses);
        assert!(m.ac_nodes > 0);
        assert!(m.ac_edges > 0);
        assert!(m.ac_size_bytes > 0);
        assert!(m.compile_seconds > 0.0);
    }

    #[test]
    fn elision_shrinks_the_circuit() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        for q in 0..3 {
            c.cnot(q, q + 1);
        }
        for q in 0..4 {
            c.t(q);
            c.h(q);
        }
        let keep = KcOptions {
            elide_internal: false,
            ..Default::default()
        };
        let elide = KcOptions::default();
        let kept = KcSimulator::compile(&c, &keep).metrics().ac_nodes;
        let elided = KcSimulator::compile(&c, &elide).metrics().ac_nodes;
        assert!(
            elided < kept,
            "elision should shrink the AC: {elided} vs {kept}"
        );
    }

    /// Exact expectation of a diagonal observable through the ordinary
    /// (non-tangent) bind — the oracle the analytic gradient is checked
    /// against by central finite differences.
    fn expectation_oracle(sim: &KcSimulator, params: &ParamMap, obs: &dyn Fn(usize) -> f64) -> f64 {
        sim.bind(params)
            .unwrap()
            .output_probabilities()
            .iter()
            .enumerate()
            .map(|(x, p)| p * obs(x))
            .sum()
    }

    /// A circuit exercising every analytic-tangent case at once: a shared
    /// symbol across multiple gates ("g" on two ZZ couplings), a symbol on
    /// a half-frequency gate (CRz), a symbol that unit resolution folds
    /// into the global factor (leading Rz on |0⟩ shares "a" with free
    /// gates), and fixed-probability noise.
    fn tangent_test_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.rz(0, Param::symbol("a"))
            .h(0)
            .rx(1, Param::symbol("a"))
            .zz(0, 1, Param::symbol("g"))
            .zz(1, 2, Param::symbol("g"))
            .crz(0, 2, Param::symbol("a"))
            .ry(1, Param::symbol("b"))
            .depolarize(1, 0.05);
        c
    }

    #[test]
    fn analytic_expectation_gradient_matches_finite_differences() {
        let c = tangent_test_circuit();
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let obs = |x: usize| x.count_ones() as f64 - 1.0;
        let symbols: Vec<String> = ["a", "g", "b", "absent"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let params = ParamMap::from_pairs([("a", 0.7), ("g", -0.4), ("b", 1.3)]);
        let bound = sim.bind_with_tangents(&params, &symbols).unwrap();
        assert_eq!(bound.num_symbols(), 4);
        let (value, grad) = bound.expectation_gradient(&obs);
        // The value is bitwise the ordinary probability fold.
        let want = expectation_oracle(&sim, &params, &obs);
        assert_eq!(value.to_bits(), want.to_bits());
        // Each gradient component matches a central finite difference.
        let h = 1e-5;
        for (s, name) in ["a", "g", "b"].iter().enumerate() {
            let shifted = |d: f64| {
                let mut p = params.clone();
                p.bind(name, params.get(name).unwrap() + d);
                expectation_oracle(&sim, &p, &obs)
            };
            let fd = (shifted(h) - shifted(-h)) / (2.0 * h);
            assert!(
                (grad[s] - fd).abs() < 1e-8,
                "d/d{name}: analytic {} vs fd {fd}",
                grad[s]
            );
        }
        // A symbol the circuit never mentions has zero gradient.
        assert_eq!(grad[3], 0.0);
    }

    #[test]
    fn batched_tangent_bind_is_bit_identical_to_scalar() {
        let c = tangent_test_circuit();
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let obs = |x: usize| {
            if x.count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            }
        };
        let symbols: Vec<String> = ["a", "g", "b"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let points: Vec<ParamMap> = (0..5)
            .map(|i| {
                ParamMap::from_pairs([
                    ("a", 0.3 + 0.41 * i as f64),
                    ("g", -0.9 + 0.27 * i as f64),
                    ("b", 1.1 - 0.33 * i as f64),
                ])
            })
            .collect();
        let batch = sim.bind_batch_with_tangents(&points, &symbols).unwrap();
        assert_eq!(batch.lanes(), 5);
        let (values, grads) = batch.expectation_gradient(&obs);
        for (lane, p) in points.iter().enumerate() {
            let scalar = sim.bind_with_tangents(p, &symbols).unwrap();
            let (sv, sg) = scalar.expectation_gradient(&obs);
            assert_eq!(values[lane].to_bits(), sv.to_bits(), "lane {lane} value");
            for s in 0..symbols.len() {
                assert_eq!(
                    grads[lane][s].to_bits(),
                    sg[s].to_bits(),
                    "lane {lane} symbol {s}"
                );
            }
        }
        // Empty batches stay well-formed.
        let empty = sim.bind_batch_with_tangents(&[], &symbols).unwrap();
        let (v, g) = empty.expectation_gradient(&obs);
        assert!(v.is_empty() && g.is_empty());
    }
}
