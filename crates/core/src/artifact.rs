//! Compiled-artifact serialization: the persistence and wire form of a
//! [`KcSimulator`].
//!
//! The paper's economics make the compiled artifact the precious resource —
//! one expensive knowledge compilation amortized over thousands of cheap
//! binds — so artifact stores (the engine's spill-to-disk eviction tier,
//! distributed sweep sharding) need a faithful byte form. The split here
//! mirrors the pipeline's own structure/parameter split:
//!
//! * **Serialized** — everything the expensive compilation produced: the
//!   unit-resolution fixings, the d-DNNF enum arena (the reference form),
//!   the flat execution tape ([`AcTape::to_bytes`], itself versioned and
//!   checksummed), and the [`PipelineMetrics`] (so a rehydrated artifact
//!   still reports its true compile cost — which cost-aware eviction
//!   policies weigh).
//! * **Recomputed** — everything that is a cheap deterministic function of
//!   the circuit: the Bayesian network, the CNF encoding, the query
//!   layout. [`KcSimulator::from_bytes`] takes the circuit and options and
//!   rebuilds these with the same code paths compilation uses, so a
//!   rehydrated simulator binds **bit-for-bit identically** to a freshly
//!   compiled one (regression-tested at the evaluator level in
//!   `tests/artifact_lifecycle.rs`).
//!
//! The payload carries the circuit's structural hash and an options
//! fingerprint: rehydration against the wrong circuit or options is
//! rejected rather than silently producing a mismatched simulator. A
//! trailing FNV-1a checksum rejects bit rot; truncated, corrupted, or
//! version-skewed payloads all decode to an error, never a panic.

use crate::pipeline::{KcOptions, KcSimulator, PhaseSeconds, PipelineMetrics};
use qkc_bayesnet::BayesNet;
use qkc_circuit::Circuit;
use qkc_cnf::encode;
use qkc_knowledge::{AcTape, CompileStats, Nnf, NnfNode, TapeDecodeError};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

const MAGIC: [u8; 4] = *b"QKCA";
/// Current artifact wire-format version; bumped on any layout change.
/// Version 2 added per-phase compile times ([`PhaseSeconds`]) and the
/// compiler's order/search split to the metrics section; version-1 spill
/// files decode to [`ArtifactDecodeError::UnsupportedVersion`] and become
/// clean recompiles.
pub const ARTIFACT_WIRE_VERSION: u16 = 2;

/// Why an artifact payload was rejected by [`KcSimulator::from_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactDecodeError {
    /// The payload does not start with the artifact magic.
    BadMagic,
    /// The payload's format version is not one this build reads.
    UnsupportedVersion(u16),
    /// The payload ends before its sections do.
    Truncated,
    /// The trailing checksum does not match the payload.
    ChecksumMismatch,
    /// The payload was serialized from a different circuit structure.
    CircuitMismatch,
    /// The payload was serialized under different pipeline options.
    OptionsMismatch,
    /// A section is internally inconsistent (the contained invariant).
    Malformed(&'static str),
    /// The embedded execution tape failed to decode.
    Tape(TapeDecodeError),
}

impl std::fmt::Display for ArtifactDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactDecodeError::BadMagic => write!(f, "not a KC artifact payload (bad magic)"),
            ArtifactDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported KC artifact wire version {v}")
            }
            ArtifactDecodeError::Truncated => write!(f, "truncated KC artifact payload"),
            ArtifactDecodeError::ChecksumMismatch => {
                write!(f, "KC artifact payload checksum mismatch")
            }
            ArtifactDecodeError::CircuitMismatch => {
                write!(f, "KC artifact was compiled from a different circuit")
            }
            ArtifactDecodeError::OptionsMismatch => {
                write!(f, "KC artifact was compiled under different options")
            }
            ArtifactDecodeError::Malformed(what) => {
                write!(f, "malformed KC artifact payload: {what}")
            }
            ArtifactDecodeError::Tape(e) => write!(f, "embedded tape rejected: {e}"),
        }
    }
}

impl std::error::Error for ArtifactDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactDecodeError::Tape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TapeDecodeError> for ArtifactDecodeError {
    fn from(e: TapeDecodeError) -> Self {
        ArtifactDecodeError::Tape(e)
    }
}

/// A deterministic 64-bit fingerprint of the pipeline options, written
/// into the payload so rehydration under different options is rejected.
/// Uses the options' own bit-exact [`Hash`] through the std `DefaultHasher`
/// (fixed-key SipHash — stable across processes of one build; a toolchain
/// that changes it merely turns old spill files into clean cache misses).
fn options_fingerprint(options: &KcOptions) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    options.hash(&mut h);
    h.finish()
}

use qkc_knowledge::wire_checksum as fnv1a;

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactDecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ArtifactDecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(ArtifactDecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ArtifactDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ArtifactDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ArtifactDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl KcSimulator {
    /// Serializes the compiled artifact into its versioned, checksummed
    /// wire form. See the [module docs](crate::artifact) for what is
    /// stored versus recomputed; [`KcSimulator::from_bytes`] is the
    /// inverse.
    pub fn to_bytes(&self, circuit: &Circuit, options: &KcOptions) -> Vec<u8> {
        let tape_bytes = self.tape.to_bytes();
        let mut out = Vec::with_capacity(tape_bytes.len() + self.nnf.num_nodes() * 8 + 256);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&ARTIFACT_WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        push_u64(&mut out, circuit.structural_hash());
        push_u64(&mut out, options_fingerprint(options));

        // Unit-resolution fixings, sorted for a canonical byte stream.
        let mut fixed: Vec<(u32, bool)> = self.fixed.iter().map(|(&v, &p)| (v, p)).collect();
        fixed.sort_unstable();
        push_u32(&mut out, fixed.len() as u32);
        for (var, polarity) in fixed {
            push_u32(&mut out, var);
            out.push(polarity as u8);
        }

        // Pipeline metrics: sizes, search stats, and the measured compile
        // cost (the recompile price a cost-aware eviction policy weighs).
        let m = &self.metrics;
        for v in [
            m.bn_nodes,
            m.cnf_vars,
            m.cnf_clauses,
            m.cnf_clauses_simplified,
            m.fixed_vars,
            m.nnf_nodes_raw,
            m.ac_nodes,
            m.ac_edges,
            m.ac_size_bytes,
        ] {
            push_u64(&mut out, v as u64);
        }
        push_u64(&mut out, m.compile_stats.decisions);
        push_u64(&mut out, m.compile_stats.cache_hits);
        push_u64(&mut out, m.compile_stats.components);
        push_u64(&mut out, m.compile_stats.order_seconds.to_bits());
        push_u64(&mut out, m.compile_stats.search_seconds.to_bits());
        push_u64(&mut out, m.compile_seconds.to_bits());
        // Per-phase wall times (version 2): a rehydrated artifact reports
        // the same measured phase breakdown as the compile that made it.
        let p = &m.phase_seconds;
        for secs in [
            p.bn_build,
            p.cnf_encode,
            p.simplify,
            p.var_order,
            p.ddnnf_search,
            p.postprocess,
            p.tape_lower,
        ] {
            push_u64(&mut out, secs.to_bits());
        }

        // The d-DNNF enum arena (reference form; the enum-walk paths and
        // c2d export of a rehydrated artifact keep working).
        push_u32(&mut out, self.nnf.num_nodes() as u32);
        push_u32(&mut out, self.nnf.root());
        for node in self.nnf.nodes() {
            match node {
                NnfNode::True => out.push(0),
                NnfNode::False => out.push(1),
                NnfNode::Lit(l) => {
                    out.push(2);
                    push_u32(&mut out, *l as u32);
                }
                NnfNode::And(cs) => {
                    out.push(3);
                    push_u32(&mut out, cs.len() as u32);
                    for &c in cs.iter() {
                        push_u32(&mut out, c);
                    }
                }
                NnfNode::Or(a, b) => {
                    out.push(4);
                    push_u32(&mut out, *a);
                    push_u32(&mut out, *b);
                }
            }
        }

        // The flat execution tape, length-prefixed (its own wire format
        // carries a nested version + checksum).
        push_u32(&mut out, tape_bytes.len() as u32);
        out.extend_from_slice(&tape_bytes);

        let sum = fnv1a(&out);
        push_u64(&mut out, sum);
        out
    }

    /// Rehydrates a compiled artifact from [`KcSimulator::to_bytes`]
    /// output: decodes the stored compilation products and recomputes the
    /// cheap circuit-derived state (Bayesian network, CNF encoding, query
    /// layout) with the same code paths compilation uses. The result binds
    /// bit-for-bit identically to the simulator that was serialized — and
    /// rehydration skips the d-DNNF search entirely, which is what makes a
    /// spill hit far cheaper than a recompile.
    ///
    /// # Errors
    ///
    /// [`ArtifactDecodeError`] on any corruption, version skew, structural
    /// violation, or a circuit/options pair that does not match the one
    /// the payload was serialized from.
    pub fn from_bytes(
        circuit: &Circuit,
        options: &KcOptions,
        bytes: &[u8],
    ) -> Result<Self, ArtifactDecodeError> {
        if bytes.len() < 4 {
            return Err(ArtifactDecodeError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(ArtifactDecodeError::BadMagic);
        }
        if bytes.len() < 8 + 8 {
            return Err(ArtifactDecodeError::Truncated);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != ARTIFACT_WIRE_VERSION {
            return Err(ArtifactDecodeError::UnsupportedVersion(version));
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        if fnv1a(body) != u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes")) {
            return Err(ArtifactDecodeError::ChecksumMismatch);
        }
        let mut rd = Reader { buf: body, pos: 8 };
        if rd.u64()? != circuit.structural_hash() {
            return Err(ArtifactDecodeError::CircuitMismatch);
        }
        if rd.u64()? != options_fingerprint(options) {
            return Err(ArtifactDecodeError::OptionsMismatch);
        }

        // Recomputed circuit-derived state: deterministic functions of the
        // circuit, rebuilt with the compilation code paths.
        let bn = BayesNet::from_circuit(circuit);
        let encoding = encode(&bn);
        let num_cnf_vars = encoding.cnf.num_vars();

        let n_fixed = rd.u32()? as usize;
        // Never preallocate from an untrusted count: each entry takes 5
        // bytes, so a count the body cannot possibly hold is malformed
        // before any allocation happens.
        if n_fixed > body.len() / 5 {
            return Err(ArtifactDecodeError::Truncated);
        }
        let mut fixed = HashMap::with_capacity(n_fixed);
        let mut prev_var = 0u32;
        for i in 0..n_fixed {
            let var = rd.u32()?;
            let polarity = match rd.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ArtifactDecodeError::Malformed("invalid polarity")),
            };
            if (i > 0 && var <= prev_var) || var == 0 || var as usize > num_cnf_vars {
                return Err(ArtifactDecodeError::Malformed("fixed-variable table"));
            }
            prev_var = var;
            fixed.insert(var, polarity);
        }

        let mut sizes = [0usize; 9];
        for s in &mut sizes {
            *s = rd.u64()? as usize;
        }
        let compile_stats = CompileStats {
            decisions: rd.u64()?,
            cache_hits: rd.u64()?,
            components: rd.u64()?,
            order_seconds: f64::from_bits(rd.u64()?),
            search_seconds: f64::from_bits(rd.u64()?),
        };
        let compile_seconds = f64::from_bits(rd.u64()?);
        let phase_seconds = PhaseSeconds {
            bn_build: f64::from_bits(rd.u64()?),
            cnf_encode: f64::from_bits(rd.u64()?),
            simplify: f64::from_bits(rd.u64()?),
            var_order: f64::from_bits(rd.u64()?),
            ddnnf_search: f64::from_bits(rd.u64()?),
            postprocess: f64::from_bits(rd.u64()?),
            tape_lower: f64::from_bits(rd.u64()?),
        };
        let metrics = PipelineMetrics {
            bn_nodes: sizes[0],
            cnf_vars: sizes[1],
            cnf_clauses: sizes[2],
            cnf_clauses_simplified: sizes[3],
            fixed_vars: sizes[4],
            nnf_nodes_raw: sizes[5],
            ac_nodes: sizes[6],
            ac_edges: sizes[7],
            ac_size_bytes: sizes[8],
            compile_stats,
            compile_seconds,
            phase_seconds,
        };

        let n_nodes = rd.u32()? as usize;
        let nnf_root = rd.u32()?;
        let mut nodes = Vec::new();
        // Guard the preallocation against hostile counts; the reads below
        // bound the real size.
        nodes.reserve_exact(n_nodes.min(body.len()));
        for _ in 0..n_nodes {
            let node = match rd.u8()? {
                0 => NnfNode::True,
                1 => NnfNode::False,
                2 => NnfNode::Lit(rd.u32()? as i32),
                3 => {
                    let len = rd.u32()? as usize;
                    if len > body.len() {
                        return Err(ArtifactDecodeError::Truncated);
                    }
                    let mut cs = Vec::with_capacity(len);
                    for _ in 0..len {
                        cs.push(rd.u32()?);
                    }
                    NnfNode::And(cs.into_boxed_slice())
                }
                4 => NnfNode::Or(rd.u32()?, rd.u32()?),
                _ => return Err(ArtifactDecodeError::Malformed("unknown NNF node tag")),
            };
            nodes.push(node);
        }
        let nnf = Nnf::from_parts(nodes, nnf_root).map_err(ArtifactDecodeError::Malformed)?;

        let tape_len = rd.u32()? as usize;
        let tape = AcTape::from_bytes(rd.take(tape_len)?)?;
        if !rd.done() {
            return Err(ArtifactDecodeError::Malformed("trailing bytes"));
        }
        // The stored footprint feeds cache budget accounting — cross-check
        // it against the decoded tape so a tampered size cannot make an
        // artifact look weightless (or enormous) to eviction.
        if metrics.ac_size_bytes != tape.size_bytes() {
            return Err(ArtifactDecodeError::Malformed(
                "stored ac_size_bytes disagrees with the decoded tape",
            ));
        }
        // The tape's literal slots must fit the weight vectors bind will
        // build for this encoding, or every query would panic.
        if tape.required_weight_slots() as usize > 2 * (num_cnf_vars + 1) {
            return Err(ArtifactDecodeError::Malformed(
                "tape reads weight slots beyond the circuit's encoding",
            ));
        }

        let query = Self::build_query(&bn, &encoding, &fixed);
        let (query_lit_vars, output_gray_order) =
            Self::derived_query_layout(&query, &tape, bn.outputs().len());
        Ok(Self {
            bn,
            encoding,
            fixed,
            nnf,
            tape,
            query,
            query_lit_vars,
            output_gray_order,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::{Param, ParamMap};

    fn noisy_parameterized() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0)
            .rx(1, Param::symbol("t"))
            .depolarize(0, 0.05)
            .cnot(0, 1)
            .zz(1, 2, Param::symbol("u"))
            .measure(2);
        c
    }

    fn bits_eq(a: qkc_math::Complex, b: qkc_math::Complex) -> bool {
        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
    }

    #[test]
    fn round_trip_binds_bit_for_bit() {
        let circuit = noisy_parameterized();
        let options = KcOptions::default();
        let sim = KcSimulator::compile(&circuit, &options);
        let bytes = sim.to_bytes(&circuit, &options);
        let back = KcSimulator::from_bytes(&circuit, &options, &bytes).expect("rehydrates");
        assert_eq!(back.metrics().ac_size_bytes, sim.metrics().ac_size_bytes);
        assert_eq!(
            back.metrics().compile_seconds.to_bits(),
            sim.metrics().compile_seconds.to_bits()
        );
        assert_eq!(back.nnf().num_nodes(), sim.nnf().num_nodes());
        for (t, u) in [(0.3, -1.1), (2.2, 0.7)] {
            let p = ParamMap::from_pairs([("t", t), ("u", u)]);
            let a = sim.bind(&p).unwrap();
            let b = back.bind(&p).unwrap();
            let rho_a = a.density_matrix();
            let rho_b = b.density_matrix();
            for r in 0..8 {
                for c in 0..8 {
                    assert!(
                        bits_eq(rho_a[(r, c)], rho_b[(r, c)]),
                        "rho[{r},{c}] differs after rehydration"
                    );
                }
            }
        }
        // Re-serialization is byte-identical: nothing was lost.
        assert_eq!(back.to_bytes(&circuit, &options), bytes);
    }

    #[test]
    fn wrong_circuit_or_options_is_rejected() {
        let circuit = noisy_parameterized();
        let options = KcOptions::default();
        let sim = KcSimulator::compile(&circuit, &options);
        let bytes = sim.to_bytes(&circuit, &options);

        let mut other = noisy_parameterized();
        other.h(2);
        assert_eq!(
            KcSimulator::from_bytes(&other, &options, &bytes).err(),
            Some(ArtifactDecodeError::CircuitMismatch)
        );
        let skewed = KcOptions {
            separator_balance: 0.5000001,
            ..Default::default()
        };
        assert_eq!(
            KcSimulator::from_bytes(&circuit, &skewed, &bytes).err(),
            Some(ArtifactDecodeError::OptionsMismatch)
        );
    }

    #[test]
    fn corruption_and_truncation_are_rejected_cleanly() {
        let circuit = noisy_parameterized();
        let options = KcOptions::default();
        let sim = KcSimulator::compile(&circuit, &options);
        let bytes = sim.to_bytes(&circuit, &options);
        for len in 0..bytes.len() {
            assert!(
                KcSimulator::from_bytes(&circuit, &options, &bytes[..len]).is_err(),
                "truncation at {len} accepted"
            );
        }
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                KcSimulator::from_bytes(&circuit, &options, &bad).is_err(),
                "flip at {i} accepted"
            );
        }
        let mut versioned = bytes.clone();
        versioned[4] = 0x7F;
        assert!(matches!(
            KcSimulator::from_bytes(&circuit, &options, &versioned).err(),
            Some(ArtifactDecodeError::UnsupportedVersion(_))
        ));
    }
}
