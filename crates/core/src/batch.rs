//! Batched parameter binding: `k` bindings share one arithmetic-circuit
//! traversal per query.
//!
//! [`KcSimulator::bind`] already makes re-binding cheap relative to
//! compilation; [`KcSimulator::bind_batch`] goes further and amortizes the
//! *evaluation* side of a sweep. The Bayes-net weight table is still
//! evaluated once per point (each point has its own parameter values), but
//! the fixed/unit-resolution walk over the parameter variables runs once
//! for the whole batch, and every amplitude / probability / expectation
//! query decodes the NNF once while updating `k` weight lanes
//! ([`qkc_knowledge::evaluate_batch`]).
//!
//! Lane `l` of every query is **bit-for-bit identical** to the same query
//! on `bind(&params[l])` — the engine's sweep executor relies on this to
//! keep sweep results byte-identical across batch widths.

use crate::pipeline::{KcSimulator, ValueState};
use qkc_circuit::{ParamMap, UnboundParam};
use qkc_knowledge::{AcWeightsBatch, TangentPlanBatch, TapeEvaluator, LANE_WIDTH};
use qkc_math::{Complex, C_ONE, C_ZERO};
use qkc_telemetry::count;
use std::cell::RefCell;

/// Records the lane occupancy of a batched bind: `kernel/batch/width`
/// accumulates requested lanes, `kernel/batch/remainder_lanes` the dead
/// lanes padding the last [`LaneBlock`](qkc_knowledge::LaneBlock) of every
/// row. The snapshot tree turns the pair into a SIMD occupancy percentage,
/// so ragged batch widths show up in `BENCH_telemetry.jsonl` instead of
/// silently wasting `(W - k % W) % W` of each remainder block.
pub(crate) fn note_batch_width(k: usize) {
    count("kernel/batch/width", k as u64);
    count(
        "kernel/batch/remainder_lanes",
        ((LANE_WIDTH - k % LANE_WIDTH) % LANE_WIDTH) as u64,
    );
}

impl KcSimulator {
    /// Binds `k` parameter maps at once, producing a batched query handle.
    /// The Bayes-net weight table is evaluated per point; the parameter
    /// walk (including unit-resolved global factors) is shared.
    ///
    /// # Errors
    ///
    /// The first binding error in input order, if any point omits a symbol
    /// the circuit mentions.
    pub fn bind_batch(&self, params: &[ParamMap]) -> Result<BoundKcBatch<'_>, UnboundParam> {
        let tables = params
            .iter()
            .map(|p| self.bayes_net().evaluate_weights(p))
            .collect::<Result<Vec<_>, _>>()?;
        let k = params.len();
        note_batch_width(k);
        let mut weights = AcWeightsBatch::uniform(self.encoding().cnf.num_vars(), k);
        let mut globals = vec![C_ONE; k];
        for (var, node, slot) in self.encoding().vars.params() {
            match self.fixed_vars().get(&var) {
                // Same split as the scalar bind: forced-true parameters
                // become per-lane global factors, forced-false contribute
                // w(¬P) = 1, free parameters land in the weight lanes.
                Some(&true) => {
                    for (g, table) in globals.iter_mut().zip(&tables) {
                        *g *= table.value(node, slot);
                    }
                }
                Some(&false) => {}
                None => {
                    for (lane, table) in tables.iter().enumerate() {
                        weights.set_lane(var, lane, table.value(node, slot), C_ONE);
                    }
                }
            }
        }
        Ok(BoundKcBatch {
            sim: self,
            weights,
            globals,
            scratch: RefCell::new(None),
            eval: RefCell::new(TapeEvaluator::new()),
            last_query: RefCell::new(Vec::new()),
            changed_vars: RefCell::new(Vec::new()),
        })
    }

    /// The batched analogue of
    /// [`bind_with_tangents`](KcSimulator::bind_with_tangents): `k`
    /// parameter maps bound at once, each lane carrying its own weight
    /// tangents for the shared symbol list. Lane `l` of every gradient
    /// query is bit-for-bit the scalar tangent bind of `params[l]`.
    ///
    /// # Errors
    ///
    /// The first binding error in input order, if any point omits a symbol
    /// the circuit mentions.
    pub fn bind_batch_with_tangents(
        &self,
        params: &[ParamMap],
        symbols: &[String],
    ) -> Result<BoundKcBatchTangents<'_>, UnboundParam> {
        let evaluated = params
            .iter()
            .map(|p| self.bayes_net().evaluate_weights_with_tangents(p, symbols))
            .collect::<Result<Vec<_>, _>>()?;
        let k = params.len();
        note_batch_width(k);
        let num_vars = self.encoding().cnf.num_vars();
        let mut weights = AcWeightsBatch::uniform(num_vars, k);
        let mut globals = vec![C_ONE; k];
        let mut dglobals = vec![vec![C_ZERO; k]; symbols.len()];
        let mut tangents: Vec<AcWeightsBatch> = symbols
            .iter()
            .map(|_| AcWeightsBatch::zeros(num_vars, k))
            .collect();
        for (var, node, slot) in self.encoding().vars.params() {
            match self.fixed_vars().get(&var) {
                Some(&true) => {
                    for (lane, (table, dtables)) in evaluated.iter().enumerate() {
                        let value = table.value(node, slot);
                        // Product rule, dg before g (see the scalar bind).
                        for (dgs, dt) in dglobals.iter_mut().zip(dtables) {
                            dgs[lane] = dgs[lane] * value + globals[lane] * dt.value(node, slot);
                        }
                        globals[lane] *= value;
                    }
                }
                Some(&false) => {}
                None => {
                    for (lane, (table, dtables)) in evaluated.iter().enumerate() {
                        weights.set_lane(var, lane, table.value(node, slot), C_ONE);
                        for (t, dt) in tangents.iter_mut().zip(dtables) {
                            t.set_lane(var, lane, dt.value(node, slot), C_ZERO);
                        }
                    }
                }
            }
        }
        let plans = tangents
            .iter()
            .map(|t| TangentPlanBatch::new(self.tape(), t))
            .collect();
        Ok(BoundKcBatchTangents {
            bound: BoundKcBatch {
                sim: self,
                weights,
                globals,
                scratch: RefCell::new(None),
                eval: RefCell::new(TapeEvaluator::new()),
                last_query: RefCell::new(Vec::new()),
                changed_vars: RefCell::new(Vec::new()),
            },
            dglobals,
            plans,
        })
    }
}

/// A compiled simulator bound to `k` concrete parameter vectors at once.
/// Every query answers for all `k` bindings in one AC traversal per
/// evidence assignment.
#[derive(Debug)]
pub struct BoundKcBatch<'a> {
    sim: &'a KcSimulator,
    weights: AcWeightsBatch,
    globals: Vec<Complex>,
    /// Reusable evidence buffer, cloned from the bound weights on first
    /// query (see [`BoundKc`](crate::BoundKc)): queries write
    /// query-variable evidence, evaluate, and restore.
    scratch: RefCell<Option<AcWeightsBatch>>,
    /// Persistent tape evaluator — one AC pass per basis state makes the
    /// per-call value-buffer allocation measurable, so the lane-strided
    /// buffers live here across queries.
    eval: RefCell<TapeEvaluator>,
    /// The previous amplitude query's assignment (empty = none yet):
    /// consecutive batched amplitude queries — Gray-ordered wavefunction
    /// sweeps, probability reconstructions, gradient lanes — differ in a
    /// few evidence values (shared across lanes), so the next query
    /// recomputes only the dirty cone of the changed variables, once per
    /// batch instead of once per lane.
    last_query: RefCell<Vec<usize>>,
    /// Reusable changed-variable buffer for the batch delta pass.
    changed_vars: RefCell<Vec<u32>>,
}

impl<'a> BoundKcBatch<'a> {
    /// The underlying compiled simulator.
    pub fn simulator(&self) -> &KcSimulator {
        self.sim
    }

    /// Number of bound parameter vectors (lanes).
    pub fn lanes(&self) -> usize {
        self.globals.len()
    }

    /// The amplitude of a full query assignment in every lane: `values`
    /// pairs with [`KcSimulator::query`] order.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong arity or an out-of-domain value.
    pub fn amplitude_assignment(&self, values: &[usize]) -> Vec<Complex> {
        let query = self.sim.query();
        assert_eq!(values.len(), query.len(), "query arity mismatch");
        let mut guard = self.scratch.borrow_mut();
        let w = guard.get_or_insert_with(|| self.weights.clone());
        let mut possible = true;
        for (spec, &value) in query.iter().zip(values) {
            assert!(value < spec.domain, "value {value} out of domain");
            if !set_evidence_batch(w, spec, value) {
                possible = false;
                break;
            }
        }
        let amps = if possible {
            let tape = self.sim.tape();
            let mut eval = self.eval.borrow_mut();
            let mut last = self.last_query.borrow_mut();
            let vals = if last.len() == values.len() {
                // Recompute only the cone of the query variables whose
                // evidence differs from the previous query — one decode
                // per dirty slot updates every lane (falls back to a full
                // batched pass internally if the cached buffer was
                // invalidated by another kernel or lane count).
                let mut changed = self.changed_vars.borrow_mut();
                changed.clear();
                for ((spec, &prev), &now) in query.iter().zip(last.iter()).zip(values) {
                    if prev != now {
                        for state in &spec.values {
                            if let ValueState::Lit(l) = state {
                                changed.push(l.unsigned_abs());
                            }
                        }
                    }
                }
                eval.evaluate_batch_delta(tape, w, &changed)
            } else {
                eval.evaluate_batch(tape, w)
            };
            last.clear();
            last.extend_from_slice(values);
            self.globals
                .iter()
                .zip(vals)
                .map(|(&g, &v)| g * v)
                .collect()
        } else {
            vec![C_ZERO; self.lanes()]
        };
        // Restore the touched query variables from the pristine weights.
        for &v in self.sim.query_lit_vars() {
            w.copy_var_from(&self.weights, v);
        }
        amps
    }

    /// The per-lane amplitude of output bitstring `outputs` (qubit 0 =
    /// most significant bit) with random events assigned `rvs`.
    ///
    /// # Panics
    ///
    /// Panics if `rvs` has the wrong arity.
    pub fn amplitude(&self, outputs: usize, rvs: &[usize]) -> Vec<Complex> {
        let n = self.sim.num_outputs();
        let mut values: Vec<usize> = (0..n).map(|i| (outputs >> (n - 1 - i)) & 1).collect();
        assert_eq!(
            rvs.len(),
            self.sim.num_random_events(),
            "random-event arity mismatch"
        );
        values.extend_from_slice(rvs);
        self.amplitude_assignment(&values)
    }

    /// The full output wavefunction of every lane (noise-free circuits).
    /// `result[lane][x]` is the amplitude of bitstring `x` under binding
    /// `lane`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has noise or measurement events.
    pub fn wavefunctions(&self) -> Vec<Vec<Complex>> {
        assert_eq!(
            self.sim.num_random_events(),
            0,
            "wavefunction is only defined for noise-free circuits"
        );
        let n = self.sim.num_outputs();
        let dim = 1usize << n;
        let mut out = vec![vec![C_ZERO; dim]; self.lanes()];
        let mut values = vec![0usize; n];
        // Gray-code order (see `BoundKc::wavefunction`): consecutive
        // queries differ in one output variable's evidence — shared across
        // lanes — so the batch delta kernel recomputes a single cone per
        // basis state, decoded once for all lanes. Each amplitude is
        // bit-identical to an independent query; only the visit order
        // changes.
        self.for_each_output_gray(&mut values, |this, values, x| {
            for (wf, amp) in out.iter_mut().zip(this.amplitude_assignment(values)) {
                wf[x] = amp;
            }
        });
        out
    }

    /// Enumerates all `2^n` output assignments in cone-ordered Gray-code
    /// order (the scalar bound handle's order), calling `f(self, values,
    /// x)` with `values[..n]` holding the bits of basis state `x`. Slots
    /// past the outputs are left untouched.
    fn for_each_output_gray(
        &self,
        values: &mut [usize],
        mut f: impl FnMut(&Self, &[usize], usize),
    ) {
        let n = self.sim.num_outputs();
        let order = self.sim.output_gray_order();
        for g in 0..1usize << n {
            let gc = g ^ (g >> 1);
            let mut x = 0usize;
            for (k, &oi) in order.iter().enumerate() {
                let bit = (gc >> k) & 1;
                values[oi] = bit;
                x |= bit << (n - 1 - oi);
            }
            f(self, values, x);
        }
    }

    /// Measurement probabilities of every output bitstring per lane:
    /// `result[lane][x] = Σ_K |amp(x, K)|²`. Enumerates random events —
    /// validation-scale, like the scalar variant.
    pub fn output_probabilities(&self) -> Vec<Vec<f64>> {
        let n = self.sim.num_outputs();
        let dim = 1usize << n;
        let mut probs = vec![vec![0.0; dim]; self.lanes()];
        let rv_specs = &self.sim.query()[self.sim.num_outputs()..];
        let domains: Vec<usize> = rv_specs.iter().map(|s| s.domain).collect();
        let mut values = vec![0usize; self.sim.query().len()];
        crate::bound::for_each_rv_assignment(&domains, |rvs| {
            values[n..].copy_from_slice(rvs);
            // Gray-code output order (see `wavefunctions`); per-x sums
            // still accumulate in the same random-event order, so each
            // probability is bitwise unchanged.
            self.for_each_output_gray(&mut values, |this, values, x| {
                for (row, amp) in probs.iter_mut().zip(this.amplitude_assignment(values)) {
                    row[x] += amp.norm_sqr();
                }
            });
        });
        probs
    }

    /// The exact expectation of a diagonal observable over the output
    /// distribution of every lane. Pure circuits avoid the random-event
    /// enumeration by writing `|amplitude|²` straight into the per-lane
    /// probability rows during the Gray sweep — no complex wavefunction
    /// buffer is materialized (gradient queries fold many lanes at once,
    /// where that buffer would dominate memory). The fold below runs in
    /// natural basis order either way, so each lane's expectation is
    /// bit-for-bit the scalar fold over that lane's distribution.
    pub fn expectations(&self, observable: &dyn Fn(usize) -> f64) -> Vec<f64> {
        let probs = if self.sim.num_random_events() == 0 {
            let n = self.sim.num_outputs();
            let dim = 1usize << n;
            let mut probs = vec![vec![0.0; dim]; self.lanes()];
            let mut values = vec![0usize; n];
            self.for_each_output_gray(&mut values, |this, values, x| {
                for (row, amp) in probs.iter_mut().zip(this.amplitude_assignment(values)) {
                    row[x] = amp.norm_sqr();
                }
            });
            probs
        } else {
            self.output_probabilities()
        };
        probs
            .iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .map(|(bits, &p)| p * observable(bits))
                    .sum()
            })
            .collect()
    }
}

/// A compiled simulator bound to `k` parameter vectors **and** their
/// per-lane weight tangents for a shared symbol list — the batched
/// analytic-gradient handle produced by
/// [`KcSimulator::bind_batch_with_tangents`].
#[derive(Debug)]
pub struct BoundKcBatchTangents<'a> {
    bound: BoundKcBatch<'a>,
    /// `d(global)/∂θ_s` per lane: `dglobals[symbol][lane]`.
    dglobals: Vec<Vec<Complex>>,
    /// One contraction plan per symbol, each spanning all lanes.
    plans: Vec<TangentPlanBatch>,
}

impl<'a> BoundKcBatchTangents<'a> {
    /// The underlying batched bound handle.
    pub fn bound(&self) -> &BoundKcBatch<'a> {
        &self.bound
    }

    /// Number of bound parameter vectors (lanes).
    pub fn lanes(&self) -> usize {
        self.bound.lanes()
    }

    /// Number of tangent symbols this handle differentiates against.
    pub fn num_symbols(&self) -> usize {
        self.plans.len()
    }

    /// Per-lane exact expectation and gradient of a diagonal observable:
    /// `(values, grads)` with `grads[lane][symbol]`. One batched
    /// upward+downward differentials pass per evidence assignment serves
    /// every lane and every symbol. Lane `l` is bit-for-bit the scalar
    /// [`BoundKcTangents::expectation_gradient`](crate::BoundKcTangents::expectation_gradient)
    /// of that lane's binding: the per-lane zero-tangent skip in the
    /// contraction kernel and the shared enumeration order reproduce the
    /// scalar floating-point sequence exactly.
    pub fn expectation_gradient(
        &self,
        observable: &dyn Fn(usize) -> f64,
    ) -> (Vec<f64>, Vec<Vec<f64>>) {
        let b = &self.bound;
        let k = b.lanes();
        if k == 0 {
            return (Vec::new(), Vec::new());
        }
        let n = b.sim.num_outputs();
        let dim = 1usize << n;
        // Per-basis-state accumulators folded in natural order at the end,
        // mirroring the scalar handle (and the `expectations` fold).
        let mut probs = vec![vec![0.0; dim]; k];
        let mut dprobs = vec![vec![vec![0.0; dim]; k]; self.plans.len()];
        let mut contracted = vec![C_ZERO; k];
        let mut values = vec![0usize; b.sim.query().len()];
        let rv_specs = &b.sim.query()[n..];
        let domains: Vec<usize> = rv_specs.iter().map(|s| s.domain).collect();
        crate::bound::for_each_rv_assignment(&domains, |rvs| {
            values[n..].copy_from_slice(rvs);
            b.for_each_output_gray(&mut values, |b, values, x| {
                let mut guard = b.scratch.borrow_mut();
                let w = guard.get_or_insert_with(|| b.weights.clone());
                let mut possible = true;
                for (spec, &value) in b.sim.query().iter().zip(values) {
                    if !set_evidence_batch(w, spec, value) {
                        possible = false;
                        break;
                    }
                }
                if possible {
                    let tape = b.sim.tape();
                    let mut eval = b.eval.borrow_mut();
                    eval.differentials_batch(tape, w);
                    for (l, row) in probs.iter_mut().enumerate() {
                        let amp = b.globals[l] * eval.value_lane(tape, l);
                        row[x] += amp.norm_sqr();
                    }
                    for ((dp, plan), dgs) in dprobs.iter_mut().zip(&self.plans).zip(&self.dglobals)
                    {
                        eval.contract_tangent_lanes(plan, &mut contracted);
                        for (l, row) in dp.iter_mut().enumerate() {
                            let raw = eval.value_lane(tape, l);
                            let amp = b.globals[l] * raw;
                            let damp = dgs[l] * raw + b.globals[l] * contracted[l];
                            row[x] += 2.0 * (amp.conj() * damp).re;
                        }
                    }
                }
                for &v in b.sim.query_lit_vars() {
                    w.copy_var_from(&b.weights, v);
                }
            });
        });
        let energies = probs
            .iter()
            .map(|p| p.iter().enumerate().map(|(x, &p)| p * observable(x)).sum())
            .collect();
        let grads = (0..k)
            .map(|l| {
                dprobs
                    .iter()
                    .map(|dp| {
                        dp[l]
                            .iter()
                            .enumerate()
                            .map(|(x, &d)| d * observable(x))
                            .sum()
                    })
                    .collect()
            })
            .collect();
        (energies, grads)
    }
}

/// Writes shared evidence `spec = value` into every lane of the weight
/// batch — the batched analogue of the scalar `set_evidence`. Returns
/// `false` if the value is impossible (forced false by unit resolution).
fn set_evidence_batch(
    w: &mut AcWeightsBatch,
    spec: &crate::pipeline::QuerySpec,
    value: usize,
) -> bool {
    if matches!(spec.values[value], ValueState::ForcedFalse) {
        return false;
    }
    if spec.domain == 2 {
        if let (ValueState::Lit(l0), ValueState::Lit(l1)) = (spec.values[0], spec.values[1]) {
            debug_assert_eq!(l0, -l1, "binary node literals must be complementary");
            let var = l1.unsigned_abs();
            let (pos, neg) = if value == 1 {
                (C_ONE, C_ZERO)
            } else {
                (C_ZERO, C_ONE)
            };
            w.set_all(var, pos, neg);
        }
        return true;
    }
    for (v, state) in spec.values.iter().enumerate() {
        if let ValueState::Lit(lit) = state {
            let var = lit.unsigned_abs();
            let chosen = if v == value { C_ONE } else { C_ZERO };
            w.set_all(var, chosen, C_ONE);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::KcOptions;
    use qkc_circuit::{Circuit, Param};

    fn bits_eq(a: Complex, b: Complex) -> bool {
        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
    }

    fn sweep_params(k: usize) -> Vec<ParamMap> {
        (0..k)
            .map(|i| {
                ParamMap::from_pairs([("a", 0.2 + 0.31 * i as f64), ("b", 1.7 - 0.53 * i as f64)])
            })
            .collect()
    }

    #[test]
    fn batched_wavefunctions_match_scalar_bind_bit_for_bit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .rx(1, Param::symbol("a"))
            .cnot(0, 1)
            .zz(1, 2, Param::symbol("b"))
            .ry(2, Param::symbol("a"));
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        for k in [1usize, 3, 8] {
            let params = sweep_params(k);
            let batch = sim.bind_batch(&params).unwrap();
            assert_eq!(batch.lanes(), k);
            let wfs = batch.wavefunctions();
            for (lane, p) in params.iter().enumerate() {
                let scalar = sim.bind(p).unwrap().wavefunction();
                for (x, (&got, &want)) in wfs[lane].iter().zip(&scalar).enumerate() {
                    assert!(
                        bits_eq(got, want),
                        "k={k} lane {lane} amp {x}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_noisy_probabilities_match_scalar_bind_bit_for_bit() {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("a"))
            .depolarize(0, 0.05)
            .cnot(0, 1)
            .rz(1, Param::symbol("b"));
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let params = sweep_params(4);
        let batch = sim.bind_batch(&params).unwrap();
        let probs = batch.output_probabilities();
        for (lane, p) in params.iter().enumerate() {
            let scalar = sim.bind(p).unwrap().output_probabilities();
            for (x, (&got, &want)) in probs[lane].iter().zip(&scalar).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "lane {lane} P({x}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn batched_expectations_match_scalar_fold() {
        let mut c = Circuit::new(2);
        c.rx(0, Param::symbol("a")).cnot(0, 1);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let params = sweep_params(3);
        let batch = sim.bind_batch(&params).unwrap();
        let obs = |bits: usize| bits as f64;
        let got = batch.expectations(&obs);
        for (lane, p) in params.iter().enumerate() {
            let want: f64 = sim
                .bind(p)
                .unwrap()
                .wavefunction()
                .iter()
                .map(|a| a.norm_sqr())
                .enumerate()
                .map(|(bits, p)| p * obs(bits))
                .sum();
            assert_eq!(got[lane].to_bits(), want.to_bits(), "lane {lane}");
        }
    }

    #[test]
    fn global_phase_factors_ride_per_lane() {
        // Rz on |0> is a pure global factor through unit resolution; each
        // lane must carry its own.
        let mut c = Circuit::new(1);
        c.rz(0, Param::symbol("t"));
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let params: Vec<ParamMap> = [0.8, -1.3]
            .iter()
            .map(|&t| ParamMap::from_pairs([("t", t)]))
            .collect();
        let batch = sim.bind_batch(&params).unwrap();
        let amps = batch.amplitude(0, &[]);
        assert!(amps[0].approx_eq(Complex::cis(-0.4), 1e-12));
        assert!(amps[1].approx_eq(Complex::cis(0.65), 1e-12));
    }

    #[test]
    fn empty_batch_binds_and_answers_empty() {
        let mut c = Circuit::new(1);
        c.h(0);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let batch = sim.bind_batch(&[]).unwrap();
        assert_eq!(batch.lanes(), 0);
        assert!(batch.wavefunctions().is_empty());
        assert!(batch.output_probabilities().is_empty());
        assert!(batch.expectations(&|b| b as f64).is_empty());
    }

    #[test]
    fn unbound_symbol_in_any_lane_is_reported() {
        let mut c = Circuit::new(1);
        c.rx(0, Param::symbol("t"));
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let params = vec![
            ParamMap::from_pairs([("t", 0.4)]),
            ParamMap::new(), // missing t
        ];
        assert!(sim.bind_batch(&params).is_err());
    }
}
