//! Model-layer lints and the simulator-level verification surface.
//!
//! The tape-level passes live in [`qkc_knowledge::verify_tape`]; this
//! module adds the checks that need the model layer — the Bayesian
//! network a circuit encodes into and the query specification the
//! artifact was smoothed over — and exposes one call,
//! [`KcSimulator::verify`], that runs everything.
//!
//! # Model lints ([`VerifyPass::ModelLints`])
//!
//! * **Shape / index integrity** (parameter-free): every CAT is exactly
//!   `rows × domain` for the node's parent radices, parents precede their
//!   child, and every [`CatEntry::Weight`] index points inside the node's
//!   weight table. Violations are errors — the encoder cannot be trusted
//!   to have produced a faithful CNF from a malformed network.
//! * **Row-stochasticity / unitarity within tolerance** (needs bound
//!   parameters): for every non-selector node, fixing the non-noise
//!   parent digits and summing `|amplitude|²` over the node's values and
//!   the noise-selector digits must give 1 — for gate nodes this is
//!   column-unitarity, for noise nodes trace preservation of the Kraus
//!   decomposition (Σₖ Kₖ†Kₖ = I), for measurement and initial nodes the
//!   indicator property. Drift beyond `1e-8` is a warning: the artifact
//!   still evaluates, but the model it encodes is not norm-preserving.
//!
//! Noise-selector nodes themselves are skipped: their CAT is the all-one
//! unit prior over Kraus branches (the branch "probability" lives in the
//! child's amplitudes), so the row sum is the branch count by design.

use crate::pipeline::KcSimulator;
use qkc_bayesnet::{BayesNet, CatEntry, Node, NodeRole, WeightTable};
use qkc_circuit::{ParamMap, UnboundParam};
use qkc_cnf::Lit;
use qkc_knowledge::{verify_tape, Finding, Severity, VerifyLevel, VerifyPass, VerifyReport};
use std::collections::HashMap;
use std::time::Instant;

/// Row-sum drift beyond this is reported (unitarity / trace preservation
/// holds to ~1e-15 for exactly-representable gates; 1e-8 leaves room for
/// parameterized rotations without hiding real drift).
const ROW_SUM_TOL: f64 = 1e-8;

/// Parameter-free structural lints over the network.
fn shape_lints(bn: &BayesNet, report: &mut VerifyReport) {
    for (id, node) in bn.nodes().iter().enumerate() {
        let mut rows = 1usize;
        let mut parents_ok = true;
        for &p in &node.parents {
            if p >= id {
                report.push(Finding {
                    pass: VerifyPass::ModelLints,
                    severity: Severity::Error,
                    slot: None,
                    message: format!("node {} has a parent that does not precede it", node.label),
                });
                parents_ok = false;
                break;
            }
            rows *= bn.node(p).domain;
        }
        if parents_ok && node.cat.len() != rows * node.domain {
            report.push(Finding {
                pass: VerifyPass::ModelLints,
                severity: Severity::Error,
                slot: None,
                message: format!(
                    "node {} CAT holds {} entries, expected {} ({} rows x {} values)",
                    node.label,
                    node.cat.len(),
                    rows * node.domain,
                    rows,
                    node.domain
                ),
            });
        }
        if node.cat.iter().any(|e| match e {
            CatEntry::Weight(w) => *w >= node.weights.len(),
            CatEntry::Zero | CatEntry::One => false,
        }) {
            report.push(Finding {
                pass: VerifyPass::ModelLints,
                severity: Severity::Error,
                slot: None,
                message: format!(
                    "node {} CAT references a weight slot out of range",
                    node.label
                ),
            });
        }
    }
}

/// `|amplitude|²` of one CAT entry under evaluated weights.
fn entry_norm_sqr(weights: &WeightTable, node_id: usize, entry: CatEntry) -> f64 {
    match entry {
        CatEntry::Zero => 0.0,
        CatEntry::One => 1.0,
        CatEntry::Weight(w) => weights.value(node_id, w).norm_sqr(),
    }
}

/// The mixed-radix digits of a CAT row index (first parent most
/// significant), restricted to parents whose role is *not* a noise
/// selector — the grouping key for the row-stochasticity lint.
fn non_noise_digits(bn: &BayesNet, node: &Node, row: usize) -> Vec<usize> {
    let mut r = row;
    let mut digits = vec![0usize; node.parents.len()];
    for (d, &p) in digits.iter_mut().zip(node.parents.iter()).rev() {
        let radix = bn.node(p).domain;
        *d = r % radix;
        r /= radix;
    }
    digits
        .iter()
        .zip(node.parents.iter())
        .filter(|&(_, &p)| !matches!(bn.node(p).role, NodeRole::NoiseSelector { .. }))
        .map(|(&d, _)| d)
        .collect()
}

/// Row-stochasticity / unitarity lint under one parameter binding.
fn stochasticity_lints(bn: &BayesNet, weights: &WeightTable, report: &mut VerifyReport) {
    for (id, node) in bn.nodes().iter().enumerate() {
        if matches!(node.role, NodeRole::NoiseSelector { .. }) {
            continue;
        }
        // Σ |amp|² over the node's values and noise-selector parent
        // digits, for each fixed assignment of the remaining parents.
        let mut sums: HashMap<Vec<usize>, f64> = HashMap::new();
        for row in 0..node.num_rows() {
            let s: f64 = (0..node.domain)
                .map(|v| entry_norm_sqr(weights, id, node.entry(row, v)))
                .sum();
            *sums.entry(non_noise_digits(bn, node, row)).or_insert(0.0) += s;
        }
        for (key, s) in sums {
            if (s - 1.0).abs() > ROW_SUM_TOL {
                report.push(Finding {
                    pass: VerifyPass::ModelLints,
                    severity: Severity::Warning,
                    slot: None,
                    message: format!(
                        "node {} row group {key:?} sums |amplitude|^2 to {s:.12} (expected 1): \
                         the encoded operation is not norm-preserving",
                        node.label
                    ),
                });
            }
        }
    }
}

impl KcSimulator {
    /// The query variable groups this artifact was smoothed over — the
    /// grouping [`verify_tape`]'s smoothness and determinism passes need.
    /// Recomputed from the query specification exactly as the compile
    /// pipeline built it.
    pub fn smoothness_groups(&self) -> Vec<Vec<Lit>> {
        self.query
            .iter()
            .filter_map(|spec| {
                let lits: Vec<Lit> = spec.free_values().iter().map(|&(_, l)| l).collect();
                if lits.is_empty() {
                    None
                } else {
                    Some(lits)
                }
            })
            .collect()
    }

    /// Runs the static verifier over this artifact: all tape passes at
    /// the given level, plus the parameter-free model lints at
    /// [`VerifyLevel::Full`]. Parameter-dependent lints (row
    /// stochasticity) need a binding — see
    /// [`KcSimulator::verify_with_params`].
    pub fn verify(&self, level: VerifyLevel) -> VerifyReport {
        let groups = self.smoothness_groups();
        let mut report = verify_tape(&self.tape, &groups, level);
        if level >= VerifyLevel::Full {
            let t = Instant::now();
            shape_lints(&self.bn, &mut report);
            report.record_pass(VerifyPass::ModelLints, t.elapsed().as_secs_f64());
        }
        report
    }

    /// [`KcSimulator::verify`] plus the parameter-dependent model lints
    /// evaluated under `params`.
    ///
    /// # Errors
    ///
    /// [`UnboundParam`] if the binding leaves a circuit parameter free.
    pub fn verify_with_params(
        &self,
        params: &ParamMap,
        level: VerifyLevel,
    ) -> Result<VerifyReport, UnboundParam> {
        let mut report = self.verify(level);
        if level >= VerifyLevel::Full {
            let t = Instant::now();
            let weights = self.bn.evaluate_weights(params)?;
            stochasticity_lints(&self.bn, &weights, &mut report);
            report.record_pass(VerifyPass::ModelLints, t.elapsed().as_secs_f64());
        }
        Ok(report)
    }
}

/// Mirrors a verification run into the global telemetry registry:
/// per-severity finding counters and per-pass latencies. The telemetry
/// API takes static paths, so the mapping is a closed match over the
/// passes this crate and `qkc_knowledge` emit.
pub fn record_verify_telemetry(report: &VerifyReport) {
    use qkc_telemetry::{count, record_span_secs};
    count("verify/runs", 1);
    for f in report.findings() {
        count(
            match f.severity {
                Severity::Error => "verify/finding/error",
                Severity::Warning => "verify/finding/warning",
                Severity::Unverified => "verify/finding/unverified",
            },
            1,
        );
    }
    for &(pass, secs) in report.pass_seconds() {
        record_span_secs(
            match pass {
                VerifyPass::TapeWellFormed => "verify/pass/tape_well_formed",
                VerifyPass::Decomposability => "verify/pass/decomposability",
                VerifyPass::Determinism => "verify/pass/determinism",
                VerifyPass::Smoothness => "verify/pass/smoothness",
                VerifyPass::SlotLiveness => "verify/pass/slot_liveness",
                VerifyPass::ModelLints => "verify/pass/model_lints",
            },
            secs,
        );
    }
}
