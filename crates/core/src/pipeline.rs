//! The end-to-end knowledge-compilation pipeline (paper Figure 4):
//! circuit → Bayesian network → CNF → (simplify) → d-DNNF → (elide,
//! smooth) → reusable arithmetic circuit.

use qkc_bayesnet::{BayesNet, NodeId};
use qkc_circuit::Circuit;
use qkc_cnf::{encode, simplify, Encoding, Lit, SimplifyError};
use qkc_knowledge::{
    compile, project_out, smooth, AcTape, CompileOptions, CompileStats, Nnf, VarOrder,
};
use std::collections::HashMap;
use std::time::Instant;

/// Pipeline configuration.
///
/// Every field participates in the compiled artifact's *identity*: two
/// option values that compare unequal may compile different (equally
/// correct) artifacts, so caches key on the whole struct. Float fields
/// compare and hash **by bit pattern** ([`f64::to_bits`]) — exactly the
/// bits that reach the pipeline — which keeps `Eq`/`Hash` consistent
/// without ever conflating two values the compiler could distinguish
/// (`0.0`/`-0.0` differ; a NaN equals itself).
#[derive(Debug, Clone)]
pub struct KcOptions {
    /// Decision order for the knowledge compiler.
    pub order: VarOrder,
    /// Component caching in the knowledge compiler.
    pub cache: bool,
    /// Unit-resolution CNF simplification (paper §3.2.1 optimizations).
    pub simplify_cnf: bool,
    /// Elide internal qubit-state variables from the compiled circuit
    /// (paper §3.2.2 optimization 1).
    pub elide_internal: bool,
    /// Bisection split fraction of the min-cut separator order (see
    /// [`qkc_knowledge::compute_ranks_balanced`]); `0.5` — the default —
    /// is the balanced split.
    pub separator_balance: f64,
}

impl Default for KcOptions {
    fn default() -> Self {
        Self {
            order: VarOrder::MinCutSeparator,
            cache: true,
            simplify_cnf: true,
            elide_internal: true,
            separator_balance: qkc_knowledge::DEFAULT_SEPARATOR_BALANCE,
        }
    }
}

impl PartialEq for KcOptions {
    fn eq(&self, other: &Self) -> bool {
        self.order == other.order
            && self.cache == other.cache
            && self.simplify_cnf == other.simplify_cnf
            && self.elide_internal == other.elide_internal
            && self.separator_balance.to_bits() == other.separator_balance.to_bits()
    }
}

impl Eq for KcOptions {}

impl std::hash::Hash for KcOptions {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.order.hash(state);
        self.cache.hash(state);
        self.simplify_cnf.hash(state);
        self.elide_internal.hash(state);
        state.write_u64(self.separator_balance.to_bits());
    }
}

/// Wall-clock seconds per compile phase, in pipeline order. Filled on
/// every compile (the clock reads are nanoseconds against phases that run
/// for micro- to milliseconds) and persisted into the artifact wire format,
/// so cached and rehydrated artifacts carry their true measured costs —
/// the per-host data the planner-calibration work fits against.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSeconds {
    /// Circuit → Bayesian network.
    pub bn_build: f64,
    /// Bayesian network → CNF (WMC encoding).
    pub cnf_encode: f64,
    /// Unit-resolution simplification.
    pub simplify: f64,
    /// Min-cut separator variable order.
    pub var_order: f64,
    /// Exhaustive DPLL search producing the d-DNNF.
    pub ddnnf_search: f64,
    /// Query build + internal-variable elision + smoothing.
    pub postprocess: f64,
    /// d-DNNF → flat execution tape.
    pub tape_lower: f64,
}

impl PhaseSeconds {
    /// Sum of all phases (excludes inter-phase glue, so it is at most
    /// [`PipelineMetrics::compile_seconds`]).
    pub fn total(&self) -> f64 {
        self.bn_build
            + self.cnf_encode
            + self.simplify
            + self.var_order
            + self.ddnnf_search
            + self.postprocess
            + self.tape_lower
    }
}

/// Sizes and timings of every pipeline stage — the quantities reported in
/// the paper's Tables 4 and 6 and Figures 1 and 6.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    /// Bayesian-network node count.
    pub bn_nodes: usize,
    /// CNF variable count (before simplification).
    pub cnf_vars: usize,
    /// CNF clause count before simplification.
    pub cnf_clauses: usize,
    /// CNF clause count after unit resolution.
    pub cnf_clauses_simplified: usize,
    /// Variables fixed by unit resolution.
    pub fixed_vars: usize,
    /// d-DNNF nodes straight out of the compiler.
    pub nnf_nodes_raw: usize,
    /// d-DNNF nodes after elision + smoothing (the evaluated AC).
    pub ac_nodes: usize,
    /// AC edges.
    pub ac_edges: usize,
    /// Exact resident size of the compiled execution tape in bytes (the
    /// paper's "AC file size" metric, now measured rather than estimated) —
    /// what the engine's artifact cache accounts per entry.
    pub ac_size_bytes: usize,
    /// Knowledge-compiler search statistics.
    pub compile_stats: CompileStats,
    /// Wall-clock seconds spent compiling (all stages).
    pub compile_seconds: f64,
    /// Per-phase wall times within `compile_seconds`.
    pub phase_seconds: PhaseSeconds,
}

impl PipelineMetrics {
    /// A multi-line human-readable report of every stage's sizes and
    /// measured phase times — the live-run equivalent of the paper's
    /// Table 6 rows.
    pub fn report(&self) -> String {
        fn ms(s: f64) -> String {
            if s >= 1.0 {
                format!("{s:.2}s")
            } else if s >= 1e-3 {
                format!("{:.1}ms", s * 1e3)
            } else {
                format!("{:.0}us", s * 1e6)
            }
        }
        fn kb(bytes: usize) -> String {
            if bytes >= 1 << 20 {
                format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
            } else if bytes >= 1 << 10 {
                format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
            } else {
                format!("{bytes} B")
            }
        }
        let p = &self.phase_seconds;
        format!(
            "  bn       {} nodes\n\
             \x20 cnf      {} vars, {} clauses -> {} after unit resolution ({} vars fixed)\n\
             \x20 d-DNNF   {} raw nodes -> {} AC nodes, {} edges, {} tape\n\
             \x20 search   {} decisions, {} components, {} cache hits\n\
             \x20 phases   bn {} | encode {} | simplify {} | order {} | search {} | post {} | lower {} | total {}\n",
            self.bn_nodes,
            self.cnf_vars,
            self.cnf_clauses,
            self.cnf_clauses_simplified,
            self.fixed_vars,
            self.nnf_nodes_raw,
            self.ac_nodes,
            self.ac_edges,
            kb(self.ac_size_bytes),
            self.compile_stats.decisions,
            self.compile_stats.components,
            self.compile_stats.cache_hits,
            ms(p.bn_build),
            ms(p.cnf_encode),
            ms(p.simplify),
            ms(p.var_order),
            ms(p.ddnnf_search),
            ms(p.postprocess),
            ms(p.tape_lower),
            ms(self.compile_seconds),
        )
    }
}

/// Compile phases, in pipeline order. A [`CompileCheckpoint`] fires at the
/// boundary *after* each phase completes — the same boundaries
/// [`PhaseSeconds`] times — so a caller can cancel a long compile
/// cooperatively without the pipeline ever observing a torn intermediate
/// state. (`var_order` and `ddnnf_search` run inside one compiler call, so
/// they share the [`CompilePhase::DdnnfSearch`] boundary.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilePhase {
    /// Circuit → Bayesian network.
    BnBuild,
    /// Bayesian network → CNF (WMC encoding).
    CnfEncode,
    /// Unit-resolution simplification.
    Simplify,
    /// Variable order + exhaustive DPLL search producing the d-DNNF.
    DdnnfSearch,
    /// Query build + internal-variable elision + smoothing.
    Postprocess,
    /// d-DNNF → flat execution tape.
    TapeLower,
}

impl CompilePhase {
    /// Stable lowercase name (used in telemetry paths and error text).
    pub fn name(&self) -> &'static str {
        match self {
            Self::BnBuild => "bn_build",
            Self::CnfEncode => "cnf_encode",
            Self::Simplify => "simplify",
            Self::DdnnfSearch => "ddnnf_search",
            Self::Postprocess => "postprocess",
            Self::TapeLower => "tape_lower",
        }
    }
}

/// A compile aborted by its checkpoint. Carries the boundary it stopped at
/// and the checkpoint's stated reason; the caller that installed the
/// checkpoint maps this back to its own richer error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileCancelled {
    /// The last phase that completed before cancellation.
    pub phase: CompilePhase,
    /// Why the checkpoint cancelled (e.g. `"compile timeout 0.5s"`).
    pub reason: String,
}

impl std::fmt::Display for CompileCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compile cancelled after phase `{}`: {}",
            self.phase.name(),
            self.reason
        )
    }
}

impl std::error::Error for CompileCancelled {}

/// Error from [`KcSimulator::try_compile_checked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The CNF encoding is unsatisfiable (malformed circuit).
    Unsat(SimplifyError),
    /// The installed checkpoint cancelled the compile between phases.
    Cancelled(CompileCancelled),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unsat(e) => write!(f, "{e}"),
            Self::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Cooperative-cancellation hook for [`KcSimulator::try_compile_checked`]:
/// called at each phase boundary with the phase that just finished; return
/// `Err(reason)` to abort the compile. Deliberately `Fn` + same-thread (no
/// `Send`/`Sync` bound) — callers capture local deadline state directly.
pub type CompileCheckpoint<'a> = &'a dyn Fn(CompilePhase) -> Result<(), String>;

/// How one value of a query variable is realized in the compiled circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueState {
    /// Evidence is set through this literal's weights.
    Lit(Lit),
    /// Unit resolution proved this value always holds.
    ForcedTrue,
    /// Unit resolution proved this value never holds.
    ForcedFalse,
}

/// A query variable (final qubit state or noise/measurement RV) as seen by
/// the evaluator.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The BN node.
    pub node: NodeId,
    /// The node's label (`q{i}m{t}` / `…rv`).
    pub label: String,
    /// Domain size.
    pub domain: usize,
    /// Per-value realization.
    pub values: Vec<ValueState>,
}

impl QuerySpec {
    /// The value forced by simplification, if the variable is fully
    /// determined.
    pub fn forced_value(&self) -> Option<usize> {
        let mut candidates = self
            .values
            .iter()
            .enumerate()
            .filter(|(_, v)| !matches!(v, ValueState::ForcedFalse));
        match (candidates.next(), candidates.next()) {
            (Some((v, _)), None) => Some(v),
            _ => None,
        }
    }

    /// Values that remain free (with their literals).
    pub fn free_values(&self) -> Vec<(usize, Lit)> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(v, s)| match s {
                ValueState::Lit(l) => Some((v, *l)),
                _ => None,
            })
            .collect()
    }
}

/// A compiled, reusable simulator for one circuit: the paper's headline
/// artifact. Compile once; re-bind parameters every variational iteration
/// with [`KcSimulator::bind`].
///
/// # Examples
///
/// ```
/// use qkc_circuit::{Circuit, ParamMap};
/// use qkc_core::KcSimulator;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// let sim = KcSimulator::compile(&c, &Default::default());
/// let bound = sim.bind(&ParamMap::new()).unwrap();
/// let amp = bound.amplitude(0b11, &[]);
/// assert!((amp.norm_sqr() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct KcSimulator {
    pub(crate) bn: BayesNet,
    pub(crate) encoding: Encoding,
    pub(crate) fixed: HashMap<u32, bool>,
    pub(crate) nnf: Nnf,
    /// The flat execution form of `nnf` — every query kernel runs on this;
    /// the enum arena is kept for serialization and as the reference
    /// implementation the tape is tested against.
    pub(crate) tape: AcTape,
    pub(crate) query: Vec<QuerySpec>,
    /// The CNF variables carrying free query-value literals — the only
    /// variables evidence ever touches (precomputed for the bind hot
    /// path's evidence save/restore).
    pub(crate) query_lit_vars: Vec<u32>,
    /// Output indices ordered by ascending tape-cone size: basis
    /// enumerations assign the most-frequently-flipped Gray bit to the
    /// output whose evidence change dirties the fewest tape slots.
    pub(crate) output_gray_order: Vec<usize>,
    pub(crate) metrics: PipelineMetrics,
}

impl KcSimulator {
    /// Runs the full compilation pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the encoding is unsatisfiable, which cannot happen for a
    /// well-formed circuit (see [`SimplifyError`]).
    pub fn compile(circuit: &Circuit, options: &KcOptions) -> Self {
        Self::try_compile(circuit, options).expect("valid circuits encode satisfiable CNFs")
    }

    /// Fallible variant of [`Self::compile`].
    ///
    /// # Errors
    ///
    /// Returns an error if the CNF is unsatisfiable (malformed circuit).
    pub fn try_compile(circuit: &Circuit, options: &KcOptions) -> Result<Self, SimplifyError> {
        Self::try_compile_checked(circuit, options, None).map_err(|e| match e {
            CompileError::Unsat(s) => s,
            // No checkpoint installed → nothing can cancel.
            CompileError::Cancelled(c) => unreachable!("cancelled without a checkpoint: {c}"),
        })
    }

    /// [`Self::try_compile`] with a cooperative-cancellation checkpoint
    /// fired at every phase boundary. With `checkpoint = None` this is
    /// exactly `try_compile` (the checkpoint costs nothing on that path).
    ///
    /// # Errors
    ///
    /// [`CompileError::Unsat`] if the CNF is unsatisfiable;
    /// [`CompileError::Cancelled`] if the checkpoint aborted the compile.
    pub fn try_compile_checked(
        circuit: &Circuit,
        options: &KcOptions,
        checkpoint: Option<CompileCheckpoint<'_>>,
    ) -> Result<Self, CompileError> {
        let check = |phase: CompilePhase| -> Result<(), CompileError> {
            match checkpoint {
                Some(cb) => cb(phase)
                    .map_err(|reason| CompileError::Cancelled(CompileCancelled { phase, reason })),
                None => Ok(()),
            }
        };
        let start = Instant::now();
        let bn = BayesNet::from_circuit(circuit);
        let mut phases = PhaseSeconds {
            bn_build: start.elapsed().as_secs_f64(),
            ..Default::default()
        };
        check(CompilePhase::BnBuild)?;

        let t = Instant::now();
        let encoding = encode(&bn);
        phases.cnf_encode = t.elapsed().as_secs_f64();
        check(CompilePhase::CnfEncode)?;
        let mut metrics = PipelineMetrics {
            bn_nodes: bn.num_nodes(),
            cnf_vars: encoding.cnf.num_vars(),
            cnf_clauses: encoding.cnf.num_clauses(),
            ..Default::default()
        };

        let t = Instant::now();
        let (work_cnf, fixed) = if options.simplify_cnf {
            let s = simplify(&encoding.cnf).map_err(CompileError::Unsat)?;
            (s.cnf, s.fixed)
        } else {
            (encoding.cnf.clone(), HashMap::new())
        };
        phases.simplify = t.elapsed().as_secs_f64();
        metrics.cnf_clauses_simplified = work_cnf.num_clauses();
        metrics.fixed_vars = fixed.len();
        check(CompilePhase::Simplify)?;

        let compiled = compile(
            &work_cnf,
            &CompileOptions {
                order: options.order,
                cache: options.cache,
                separator_balance: options.separator_balance,
            },
        );
        phases.var_order = compiled.stats.order_seconds;
        phases.ddnnf_search = compiled.stats.search_seconds;
        metrics.nnf_nodes_raw = compiled.nnf.num_nodes();
        metrics.compile_stats = compiled.stats;
        check(CompilePhase::DdnnfSearch)?;

        let t = Instant::now();
        // Build the query specification before transforming the circuit.
        let query = Self::build_query(&bn, &encoding, &fixed);

        // Elision: keep only query-variable literals and parameter
        // variables; internal qubit states are summed out structurally.
        let nnf = if options.elide_internal {
            let mut keep: Vec<bool> = vec![false; encoding.cnf.num_vars() + 1];
            for (v, _, _) in encoding.vars.params() {
                keep[v as usize] = true;
            }
            for spec in &query {
                for (_, lit) in spec.free_values() {
                    keep[lit.unsigned_abs() as usize] = true;
                }
            }
            project_out(&compiled.nnf, |v| keep[v as usize])
        } else {
            compiled.nnf
        };

        // Smooth over the free values of every query variable.
        let groups: Vec<Vec<Lit>> = query
            .iter()
            .filter_map(|spec| {
                let lits: Vec<Lit> = spec.free_values().iter().map(|&(_, l)| l).collect();
                if lits.is_empty() {
                    None
                } else {
                    Some(lits)
                }
            })
            .collect();
        let nnf = smooth(&nnf, &groups);
        phases.postprocess = t.elapsed().as_secs_f64();
        check(CompilePhase::Postprocess)?;

        // Lower once into the flat execution tape; every bind/query kernel
        // runs on it from here on.
        let t = Instant::now();
        let tape = AcTape::lower(&nnf);
        phases.tape_lower = t.elapsed().as_secs_f64();
        check(CompilePhase::TapeLower)?;

        // Debug builds certify every fresh compile: the static verifier
        // must find no error in an artifact this pipeline just produced.
        #[cfg(debug_assertions)]
        {
            let report =
                qkc_knowledge::verify_tape(&tape, &groups, qkc_knowledge::VerifyLevel::Full);
            debug_assert!(
                report.is_clean(),
                "freshly compiled artifact failed static verification:\n{}",
                report.render()
            );
        }

        metrics.ac_nodes = nnf.num_nodes();
        metrics.ac_edges = nnf.num_edges();
        metrics.ac_size_bytes = tape.size_bytes();
        metrics.compile_seconds = start.elapsed().as_secs_f64();
        metrics.phase_seconds = phases;
        Self::record_compile_telemetry(&metrics);

        let (query_lit_vars, output_gray_order) =
            Self::derived_query_layout(&query, &tape, bn.outputs().len());
        Ok(Self {
            bn,
            encoding,
            fixed,
            nnf,
            tape,
            query,
            query_lit_vars,
            output_gray_order,
            metrics,
        })
    }

    /// Mirrors a freshly measured compile into the global telemetry
    /// registry. Every call below is one relaxed load when telemetry is
    /// disabled; the phase times themselves are always measured because
    /// they are part of the product (`PipelineMetrics`), not just the
    /// instrumentation.
    fn record_compile_telemetry(metrics: &PipelineMetrics) {
        use qkc_telemetry::{count, record_size, record_span_secs};
        let p = &metrics.phase_seconds;
        record_span_secs("compile/bn_build", p.bn_build);
        record_span_secs("compile/cnf_encode", p.cnf_encode);
        record_span_secs("compile/simplify", p.simplify);
        record_span_secs("compile/order", p.var_order);
        record_span_secs("compile/ddnnf", p.ddnnf_search);
        record_span_secs("compile/postprocess", p.postprocess);
        record_span_secs("compile/tape_lower", p.tape_lower);
        record_span_secs("compile/total", metrics.compile_seconds);
        count("compile/runs", 1);
        record_size("compile/tape_bytes", metrics.ac_size_bytes as u64);
        record_size("compile/ac_nodes", metrics.ac_nodes as u64);
    }

    /// The two query-layout caches derived from the compiled tape: the
    /// deduplicated evidence-variable list and the cone-ordered Gray basis
    /// order. Deterministic in `(query, tape)`, so artifact rehydration
    /// (`crate::artifact`) recomputes them instead of serializing them.
    pub(crate) fn derived_query_layout(
        query: &[QuerySpec],
        tape: &AcTape,
        num_outputs: usize,
    ) -> (Vec<u32>, Vec<usize>) {
        let mut query_lit_vars: Vec<u32> = query
            .iter()
            .flat_map(|spec| {
                spec.free_values()
                    .into_iter()
                    .map(|(_, l)| l.unsigned_abs())
            })
            .collect();
        // Binary specs yield both polarities of one CNF variable — dedup
        // so the per-query evidence restore writes each variable once.
        query_lit_vars.sort_unstable();
        query_lit_vars.dedup();
        let mut output_gray_order: Vec<usize> = (0..num_outputs).collect();
        let cone_of = |i: &usize| {
            let lits: Vec<Lit> = query[*i].free_values().iter().map(|&(_, l)| l).collect();
            tape.cone_size(&lits)
        };
        // `sort_by_cached_key`: each cone traversal allocates and walks
        // the parent CSR, so compute it once per output.
        output_gray_order.sort_by_cached_key(cone_of);
        (query_lit_vars, output_gray_order)
    }

    pub(crate) fn build_query(
        bn: &BayesNet,
        encoding: &Encoding,
        fixed: &HashMap<u32, bool>,
    ) -> Vec<QuerySpec> {
        bn.query_nodes()
            .into_iter()
            .map(|node| {
                let domain = bn.node(node).domain;
                let values = (0..domain)
                    .map(|value| {
                        let lit = encoding.vars.value_lit(node, value);
                        let var = lit.unsigned_abs();
                        match fixed.get(&var) {
                            None => ValueState::Lit(lit),
                            Some(&polarity) => {
                                if polarity == (lit > 0) {
                                    ValueState::ForcedTrue
                                } else {
                                    ValueState::ForcedFalse
                                }
                            }
                        }
                    })
                    .collect();
                QuerySpec {
                    node,
                    label: bn.node(node).label.clone(),
                    domain,
                    values,
                }
            })
            .collect()
    }

    /// The Bayesian network this simulator was compiled from.
    pub fn bayes_net(&self) -> &BayesNet {
        &self.bn
    }

    /// The CNF encoding (pre-simplification).
    pub fn encoding(&self) -> &Encoding {
        &self.encoding
    }

    /// The compiled, smoothed arithmetic circuit (enum-arena reference
    /// form; kept for serialization and equivalence testing).
    pub fn nnf(&self) -> &Nnf {
        &self.nnf
    }

    /// The flat execution tape every query kernel runs on.
    pub fn tape(&self) -> &AcTape {
        &self.tape
    }

    /// Variables fixed by unit resolution (and their forced polarity).
    /// Public so reference implementations and tests can reconstruct the
    /// bind step's weight layout exactly.
    pub fn fixed_vars(&self) -> &HashMap<u32, bool> {
        &self.fixed
    }

    /// Query-variable layout: outputs first (one per qubit), then
    /// noise/measurement RVs in circuit order.
    pub fn query(&self) -> &[QuerySpec] {
        &self.query
    }

    /// Number of output qubits.
    pub fn num_outputs(&self) -> usize {
        self.bn.outputs().len()
    }

    /// Number of noise/measurement random events.
    pub fn num_random_events(&self) -> usize {
        self.bn.random_events().len()
    }

    /// Pipeline size/timing metrics.
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    pub(crate) fn output_gray_order(&self) -> &[usize] {
        &self.output_gray_order
    }

    pub(crate) fn query_lit_vars(&self) -> &[u32] {
        &self.query_lit_vars
    }
}
