//! Parameter binding and simulation queries on a compiled circuit.
//!
//! Binding is the cheap per-iteration step of variational simulation: the
//! arithmetic circuit is fixed; only literal weights (and the global factor
//! contributed by unit-resolved parameter variables) are recomputed.

use crate::pipeline::{KcSimulator, ValueState};
use qkc_circuit::{ParamMap, UnboundParam};
use qkc_knowledge::{evaluate, AcWeights, GibbsOptions, GibbsSampler, QueryVar};
use qkc_math::{CMatrix, Complex, C_ONE, C_ZERO};
use std::cell::RefCell;

impl KcSimulator {
    /// Binds parameter values, producing a query handle.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit mentions a symbol absent from
    /// `params`.
    pub fn bind(&self, params: &ParamMap) -> Result<BoundKc<'_>, UnboundParam> {
        let table = self.bayes_net().evaluate_weights(params)?;
        let mut weights = AcWeights::uniform(self.encoding().cnf.num_vars());
        let mut global = C_ONE;
        for (var, node, slot) in self.encoding().vars.params() {
            let value = table.value(node, slot);
            match self.fixed().get(&var) {
                // Unit resolution removed the variable: a forced-true
                // parameter multiplies every model, so it becomes a global
                // factor; forced-false contributes w(¬P) = 1.
                Some(&true) => global *= value,
                Some(&false) => {}
                None => weights.set(var, value, C_ONE),
            }
        }
        Ok(BoundKc {
            sim: self,
            weights,
            global,
            scratch: RefCell::new(None),
        })
    }
}

/// A compiled simulator bound to concrete parameter values.
#[derive(Debug)]
pub struct BoundKc<'a> {
    sim: &'a KcSimulator,
    weights: AcWeights,
    global: Complex,
    /// One reusable evidence buffer, cloned from the bound weights on the
    /// first query: amplitude queries write query-variable evidence here
    /// and restore it afterwards, instead of cloning the full weight
    /// vector per query (`output_probabilities` and `density_matrix`
    /// issue O(4ⁿ) of them). Lazy so query-free binds (raw sweep
    /// re-binding) pay nothing.
    scratch: RefCell<Option<AcWeights>>,
}

impl<'a> BoundKc<'a> {
    /// The underlying compiled simulator.
    pub fn simulator(&self) -> &KcSimulator {
        self.sim
    }

    /// The amplitude of a full query assignment: `values` pairs with
    /// [`KcSimulator::query`] order (outputs first, then random events).
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong arity or an out-of-domain value.
    pub fn amplitude_assignment(&self, values: &[usize]) -> Complex {
        let query = self.sim.query();
        assert_eq!(values.len(), query.len(), "query arity mismatch");
        let mut guard = self.scratch.borrow_mut();
        let w = guard.get_or_insert_with(|| self.weights.clone());
        let mut possible = true;
        for (spec, &value) in query.iter().zip(values) {
            assert!(value < spec.domain, "value {value} out of domain");
            if !set_evidence(w, spec, value) {
                possible = false;
                break;
            }
        }
        let amp = if possible {
            self.global * evaluate(self.sim.nnf(), w)
        } else {
            C_ZERO
        };
        self.restore_scratch(w);
        amp
    }

    /// Restores the touched query variables of the scratch buffer from the
    /// pristine bound weights.
    fn restore_scratch(&self, w: &mut AcWeights) {
        for &v in self.sim.query_lit_vars() {
            w.set(v, self.weights.get(v as i32), self.weights.get(-(v as i32)));
        }
    }

    /// The amplitude of output bitstring `outputs` (qubit 0 = most
    /// significant bit) with random events assigned `rvs` (circuit order).
    ///
    /// # Panics
    ///
    /// Panics if `rvs` has the wrong arity.
    pub fn amplitude(&self, outputs: usize, rvs: &[usize]) -> Complex {
        let n = self.sim.num_outputs();
        let mut values: Vec<usize> = (0..n).map(|i| (outputs >> (n - 1 - i)) & 1).collect();
        assert_eq!(
            rvs.len(),
            self.sim.num_random_events(),
            "random-event arity mismatch"
        );
        values.extend_from_slice(rvs);
        self.amplitude_assignment(&values)
    }

    /// The full output wavefunction of a noise-free circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has noise or measurement events.
    pub fn wavefunction(&self) -> Vec<Complex> {
        assert_eq!(
            self.sim.num_random_events(),
            0,
            "wavefunction is only defined for noise-free circuits"
        );
        let n = self.sim.num_outputs();
        (0..1usize << n).map(|x| self.amplitude(x, &[])).collect()
    }

    /// Measurement probabilities of every output bitstring:
    /// `P(x) = Σ_K |amp(x, K)|²`. Enumerates random events — intended for
    /// validation on small circuits.
    pub fn output_probabilities(&self) -> Vec<f64> {
        let n = self.sim.num_outputs();
        let mut probs = vec![0.0; 1usize << n];
        self.for_each_rv(|this, rvs| {
            for (x, p) in probs.iter_mut().enumerate() {
                *p += this.amplitude(x, rvs).norm_sqr();
            }
        });
        probs
    }

    /// The full density matrix `ρ[x, x'] = Σ_K amp(x,K)·conj(amp(x',K))`.
    /// Enumerates random events — validation-scale only.
    pub fn density_matrix(&self) -> CMatrix {
        let n = self.sim.num_outputs();
        let dim = 1usize << n;
        let mut rho = CMatrix::zeros(dim, dim);
        self.for_each_rv(|this, rvs| {
            let amps: Vec<Complex> = (0..dim).map(|x| this.amplitude(x, rvs)).collect();
            for r in 0..dim {
                for c in 0..dim {
                    rho[(r, c)] += amps[r] * amps[c].conj();
                }
            }
        });
        rho
    }

    fn for_each_rv(&self, mut f: impl FnMut(&Self, &[usize])) {
        let rv_specs = &self.sim.query()[self.sim.num_outputs()..];
        let domains: Vec<usize> = rv_specs.iter().map(|s| s.domain).collect();
        for_each_rv_assignment(&domains, |rvs| f(self, rvs));
    }

    /// Runs one upward+downward pass with evidence set to `(outputs, rvs)`
    /// and returns the differentials (used by sensitivity queries).
    pub(crate) fn differentials_for(
        &self,
        outputs: usize,
        rvs: &[usize],
    ) -> qkc_knowledge::Differentials {
        let n = self.sim.num_outputs();
        let mut values: Vec<usize> = (0..n).map(|i| (outputs >> (n - 1 - i)) & 1).collect();
        values.extend_from_slice(rvs);
        let query = self.sim.query();
        let mut guard = self.scratch.borrow_mut();
        let w = guard.get_or_insert_with(|| self.weights.clone());
        for (spec, &value) in query.iter().zip(&values) {
            set_evidence(w, spec, value);
        }
        let diffs = qkc_knowledge::evaluate_with_differentials(self.sim.nnf(), w);
        self.restore_scratch(w);
        diffs
    }

    /// The global factor from unit-resolved parameters.
    pub(crate) fn global(&self) -> Complex {
        self.global
    }

    /// The current weight bound to a CNF variable's positive literal.
    pub(crate) fn weight_of(&self, var: u32) -> Complex {
        self.weights.get(var as i32)
    }

    /// Creates a Gibbs sampler over outputs and random events
    /// (paper §3.3.2).
    pub fn sampler(&self, options: &GibbsOptions) -> KcSampler<'_> {
        let mut vars = Vec::new();
        let mut value_maps = Vec::new();
        for spec in self.sim.query() {
            let free = spec.free_values();
            if let Some(v) = spec.forced_value() {
                // Unit resolution removed this variable from the circuit:
                // it is pinned with no evidence to apply.
                vars.push(QueryVar {
                    label: spec.label.clone(),
                    value_lits: Vec::new(),
                    fixed: Some(0),
                });
                value_maps.push(vec![v]);
            } else {
                vars.push(QueryVar {
                    label: spec.label.clone(),
                    value_lits: free.iter().map(|&(_, l)| l).collect(),
                    fixed: None,
                });
                value_maps.push(free.iter().map(|&(v, _)| v).collect());
            }
        }
        let sampler = GibbsSampler::new(self.sim.nnf(), self.weights.clone(), vars, options);
        KcSampler {
            sampler,
            value_maps,
            num_outputs: self.sim.num_outputs(),
        }
    }
}

/// Calls `f` with every assignment of the random-event domains, in
/// odometer order (first domain fastest) — the enumeration order both the
/// scalar and batched probability reconstructions share.
pub(crate) fn for_each_rv_assignment(domains: &[usize], mut f: impl FnMut(&[usize])) {
    let mut rvs = vec![0usize; domains.len()];
    loop {
        f(&rvs);
        let mut i = 0;
        loop {
            if i == domains.len() {
                return;
            }
            rvs[i] += 1;
            if rvs[i] < domains[i] {
                break;
            }
            rvs[i] = 0;
            i += 1;
        }
    }
}

/// Writes evidence `spec = value` into the weight vector. Returns `false`
/// if the value is impossible (forced false by unit resolution).
fn set_evidence(w: &mut AcWeights, spec: &crate::pipeline::QuerySpec, value: usize) -> bool {
    if matches!(spec.values[value], ValueState::ForcedFalse) {
        return false;
    }
    // Binary nodes: one CNF variable carries both values.
    if spec.domain == 2 {
        if let (ValueState::Lit(l0), ValueState::Lit(l1)) = (spec.values[0], spec.values[1]) {
            debug_assert_eq!(l0, -l1, "binary node literals must be complementary");
            let var = l1.unsigned_abs();
            let (pos, neg) = if value == 1 {
                (C_ONE, C_ZERO)
            } else {
                (C_ZERO, C_ONE)
            };
            w.set(var, pos, neg);
        }
        // Fully forced binary node: nothing to set; consistency was checked.
        return true;
    }
    // Indicator-encoded nodes: chosen free indicator 1, other free
    // indicators 0, negative polarities 1.
    for (v, state) in spec.values.iter().enumerate() {
        if let ValueState::Lit(lit) = state {
            let var = lit.unsigned_abs();
            let chosen = if v == value { C_ONE } else { C_ZERO };
            w.set(var, chosen, C_ONE);
        }
    }
    true
}

/// A Gibbs sampler with query-variable value mapping back to circuit
/// semantics.
#[derive(Debug)]
pub struct KcSampler<'a> {
    sampler: GibbsSampler<'a>,
    /// For each query var: chain-state index → actual domain value.
    value_maps: Vec<Vec<usize>>,
    num_outputs: usize,
}

impl<'a> KcSampler<'a> {
    /// Draws `count` output bitstrings, taking `thin` coordinate updates
    /// between records.
    pub fn sample_outputs(&mut self, count: usize, thin: usize) -> Vec<usize> {
        let maps = self.value_maps.clone();
        let n = self.num_outputs;
        self.sampler.sample_with(count, thin, move |state| {
            let mut x = 0usize;
            for (i, map) in maps.iter().take(n).enumerate() {
                x |= map[state[i]] << (n - 1 - i);
            }
            x
        })
    }

    /// The chain's current full assignment in domain values
    /// (outputs then random events).
    pub fn current_assignment(&self) -> Vec<usize> {
        self.sampler
            .state()
            .iter()
            .zip(&self.value_maps)
            .map(|(&s, map)| map[s])
            .collect()
    }

    /// Fraction of coordinate updates that moved.
    pub fn acceptance_rate(&self) -> f64 {
        self.sampler.acceptance_rate()
    }
}
