//! Parameter binding and simulation queries on a compiled circuit.
//!
//! Binding is the cheap per-iteration step of variational simulation: the
//! arithmetic circuit is fixed; only literal weights (and the global factor
//! contributed by unit-resolved parameter variables) are recomputed.

use crate::pipeline::{KcSimulator, ValueState};
use qkc_circuit::{ParamMap, UnboundParam};
use qkc_knowledge::{
    AcWeights, AcWeightsBatch, DiffCone, GibbsOptions, GibbsSampler, QueryVar, TangentPlan,
    TapeEvaluator,
};
use qkc_math::{CMatrix, Complex, C_ONE, C_ZERO};
use std::cell::RefCell;

impl KcSimulator {
    /// Binds parameter values, producing a query handle.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit mentions a symbol absent from
    /// `params`.
    pub fn bind(&self, params: &ParamMap) -> Result<BoundKc<'_>, UnboundParam> {
        let table = self.bayes_net().evaluate_weights(params)?;
        let mut weights = AcWeights::uniform(self.encoding().cnf.num_vars());
        let mut global = C_ONE;
        for (var, node, slot) in self.encoding().vars.params() {
            let value = table.value(node, slot);
            match self.fixed_vars().get(&var) {
                // Unit resolution removed the variable: a forced-true
                // parameter multiplies every model, so it becomes a global
                // factor; forced-false contributes w(¬P) = 1.
                Some(&true) => global *= value,
                Some(&false) => {}
                None => weights.set(var, value, C_ONE),
            }
        }
        Ok(BoundKc {
            sim: self,
            weights,
            global,
            scratch: RefCell::new(None),
            eval: RefCell::new(TapeEvaluator::new()),
            last_query: RefCell::new(Vec::new()),
            changed_vars: RefCell::new(Vec::new()),
        })
    }

    /// Binds parameter values **with symbolic weight tangents**: alongside
    /// every literal weight, the bind lays out `d(weight)/dθ_s` for each
    /// symbol in `symbols` — in the same interleaved [`AcWeights`] slot
    /// layout, resolved once against the tape's literal→slot table. The
    /// handle answers exact expectation *gradients* for all symbols from a
    /// single differentials pass per evidence assignment
    /// ([`BoundKcTangents::expectation_gradient`]).
    ///
    /// Symbols may appear in any number of gates (shared parameters sum
    /// naturally through the chain rule); symbols absent from the circuit
    /// get an identically-zero gradient. Symbols driving *noise* channels
    /// are not differentiable here — callers route those components through
    /// finite differences.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit mentions a symbol absent from
    /// `params`.
    pub fn bind_with_tangents(
        &self,
        params: &ParamMap,
        symbols: &[String],
    ) -> Result<BoundKcTangents<'_>, UnboundParam> {
        let (table, dtables) = self
            .bayes_net()
            .evaluate_weights_with_tangents(params, symbols)?;
        let num_vars = self.encoding().cnf.num_vars();
        let mut weights = AcWeights::uniform(num_vars);
        let mut global = C_ONE;
        let mut dglobals = vec![C_ZERO; symbols.len()];
        let mut tangents: Vec<AcWeights> =
            symbols.iter().map(|_| AcWeights::zeros(num_vars)).collect();
        for (var, node, slot) in self.encoding().vars.params() {
            let value = table.value(node, slot);
            match self.fixed_vars().get(&var) {
                Some(&true) => {
                    // Product rule through the running global factor:
                    // d(g·v) = dg·v + g·dv — update dg before g.
                    for (dg, dt) in dglobals.iter_mut().zip(&dtables) {
                        *dg = *dg * value + global * dt.value(node, slot);
                    }
                    global *= value;
                }
                Some(&false) => {}
                None => {
                    weights.set(var, value, C_ONE);
                    // Only the positive literal carries the parameter:
                    // w(¬P) = 1 always, so its tangent is zero.
                    for (t, dt) in tangents.iter_mut().zip(&dtables) {
                        t.set(var, dt.value(node, slot), C_ZERO);
                    }
                }
            }
        }
        let plans: Vec<TangentPlan> = tangents
            .iter()
            .map(|t| TangentPlan::new(self.tape(), t))
            .collect();
        // The gradient loop only reads partials at the tangent-bearing
        // literal slots, so its downward sweeps can stay inside those
        // slots' ancestor cone — built once here, reused per assignment.
        let cone = DiffCone::new(
            self.tape(),
            plans.iter().flat_map(qkc_knowledge::TangentPlan::slots),
        );
        Ok(BoundKcTangents {
            bound: BoundKc {
                sim: self,
                weights,
                global,
                scratch: RefCell::new(None),
                eval: RefCell::new(TapeEvaluator::new()),
                last_query: RefCell::new(Vec::new()),
                changed_vars: RefCell::new(Vec::new()),
            },
            dglobals,
            plans,
            cone,
        })
    }
}

/// A compiled simulator bound to concrete parameter values.
#[derive(Debug)]
pub struct BoundKc<'a> {
    sim: &'a KcSimulator,
    weights: AcWeights,
    global: Complex,
    /// One reusable evidence buffer, cloned from the bound weights on the
    /// first query: amplitude queries write query-variable evidence here
    /// and restore it afterwards, instead of cloning the full weight
    /// vector per query (`output_probabilities` and `density_matrix`
    /// issue O(4ⁿ) of them). Lazy so query-free binds (raw sweep
    /// re-binding) pay nothing.
    scratch: RefCell<Option<AcWeights>>,
    /// Persistent tape evaluator: value/partial buffers are allocated on
    /// the first query and reused by every subsequent one (zero
    /// allocations per amplitude after warmup).
    eval: RefCell<TapeEvaluator>,
    /// The previous amplitude query's assignment (empty = none yet):
    /// consecutive amplitude queries — wavefunction sweeps, probability
    /// reconstructions — differ in a few evidence values, so the next
    /// query recomputes only the cone of the variables that changed
    /// (bit-for-bit equal to a full pass).
    last_query: RefCell<Vec<usize>>,
    /// Reusable changed-variable buffer for the delta pass.
    changed_vars: RefCell<Vec<u32>>,
}

impl<'a> BoundKc<'a> {
    /// The underlying compiled simulator.
    pub fn simulator(&self) -> &KcSimulator {
        self.sim
    }

    /// The amplitude of a full query assignment: `values` pairs with
    /// [`KcSimulator::query`] order (outputs first, then random events).
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong arity or an out-of-domain value.
    pub fn amplitude_assignment(&self, values: &[usize]) -> Complex {
        let query = self.sim.query();
        assert_eq!(values.len(), query.len(), "query arity mismatch");
        let mut guard = self.scratch.borrow_mut();
        let w = guard.get_or_insert_with(|| self.weights.clone());
        let mut possible = true;
        for (spec, &value) in query.iter().zip(values) {
            assert!(value < spec.domain, "value {value} out of domain");
            if !set_evidence(w, spec, value) {
                possible = false;
                break;
            }
        }
        let amp = if possible {
            let tape = self.sim.tape();
            let mut eval = self.eval.borrow_mut();
            let mut last = self.last_query.borrow_mut();
            let raw = if last.len() == values.len() {
                // Recompute only the cone of the query variables whose
                // evidence differs from the previous amplitude query
                // (falls back to a full pass internally if the cached
                // buffer was invalidated by another kernel).
                let mut changed = self.changed_vars.borrow_mut();
                changed.clear();
                for ((spec, &prev), &now) in query.iter().zip(last.iter()).zip(values) {
                    if prev != now {
                        for state in &spec.values {
                            if let ValueState::Lit(l) = state {
                                changed.push(l.unsigned_abs());
                            }
                        }
                    }
                }
                eval.evaluate_delta(tape, w, &changed)
            } else {
                eval.evaluate(tape, w)
            };
            last.clear();
            last.extend_from_slice(values);
            self.global * raw
        } else {
            C_ZERO
        };
        self.restore_scratch(w);
        amp
    }

    /// The enum-walk reference path for [`BoundKc::amplitude_assignment`]:
    /// identical evidence handling, evaluated on the [`Nnf`](qkc_knowledge::Nnf)
    /// arena instead of the tape. Kept for equivalence tests and the
    /// kernel benchmarks; results are bit-for-bit equal to the tape path.
    #[doc(hidden)]
    pub fn amplitude_assignment_enum_walk(&self, values: &[usize]) -> Complex {
        let query = self.sim.query();
        assert_eq!(values.len(), query.len(), "query arity mismatch");
        let mut guard = self.scratch.borrow_mut();
        let w = guard.get_or_insert_with(|| self.weights.clone());
        let mut possible = true;
        for (spec, &value) in query.iter().zip(values) {
            assert!(value < spec.domain, "value {value} out of domain");
            if !set_evidence(w, spec, value) {
                possible = false;
                break;
            }
        }
        let amp = if possible {
            self.global * qkc_knowledge::evaluate(self.sim.nnf(), w)
        } else {
            C_ZERO
        };
        self.restore_scratch(w);
        amp
    }

    /// Restores the touched query variables of the scratch buffer from the
    /// pristine bound weights.
    fn restore_scratch(&self, w: &mut AcWeights) {
        for &v in self.sim.query_lit_vars() {
            w.set(v, self.weights.get(v as i32), self.weights.get(-(v as i32)));
        }
    }

    /// The amplitude of output bitstring `outputs` (qubit 0 = most
    /// significant bit) with random events assigned `rvs` (circuit order).
    ///
    /// # Panics
    ///
    /// Panics if `rvs` has the wrong arity.
    pub fn amplitude(&self, outputs: usize, rvs: &[usize]) -> Complex {
        let n = self.sim.num_outputs();
        let mut values: Vec<usize> = (0..n).map(|i| (outputs >> (n - 1 - i)) & 1).collect();
        assert_eq!(
            rvs.len(),
            self.sim.num_random_events(),
            "random-event arity mismatch"
        );
        values.extend_from_slice(rvs);
        self.amplitude_assignment(&values)
    }

    /// The full output wavefunction of a noise-free circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has noise or measurement events.
    pub fn wavefunction(&self) -> Vec<Complex> {
        assert_eq!(
            self.sim.num_random_events(),
            0,
            "wavefunction is only defined for noise-free circuits"
        );
        let n = self.sim.num_outputs();
        let dim = 1usize << n;
        let mut out = vec![C_ZERO; dim];
        let mut values = vec![0usize; n];
        // Gray-code order: consecutive queries differ in one output
        // variable's evidence, so the tape evaluator's delta kernel
        // recomputes a single cone per amplitude — and the Gray bits are
        // assigned so the most-frequently-flipped one has the smallest
        // cone. Each amplitude is bit-identical to an independent query;
        // only the visit order changes.
        self.for_each_output_gray(&mut values, |this, values, x| {
            out[x] = this.amplitude_assignment(values);
        });
        out
    }

    /// Enumerates all `2^n` output assignments in cone-ordered Gray-code
    /// order, calling `f(self, values, x)` with `values[..n]` holding the
    /// bits of basis state `x`. `values` must have the full query arity;
    /// slots past the outputs are left untouched.
    fn for_each_output_gray(
        &self,
        values: &mut [usize],
        mut f: impl FnMut(&Self, &[usize], usize),
    ) {
        let n = self.sim.num_outputs();
        let order = self.sim.output_gray_order();
        for g in 0..1usize << n {
            let gc = g ^ (g >> 1);
            let mut x = 0usize;
            for (k, &oi) in order.iter().enumerate() {
                let bit = (gc >> k) & 1;
                values[oi] = bit;
                x |= bit << (n - 1 - oi);
            }
            f(self, values, x);
        }
    }

    /// Measurement probabilities of every output bitstring:
    /// `P(x) = Σ_K |amp(x, K)|²`. Enumerates random events — intended for
    /// validation on small circuits.
    pub fn output_probabilities(&self) -> Vec<f64> {
        let n = self.sim.num_outputs();
        let dim = 1usize << n;
        let mut probs = vec![0.0; dim];
        let mut values = vec![0usize; self.sim.query().len()];
        self.for_each_rv(|this, rvs| {
            values[n..].copy_from_slice(rvs);
            // Gray-code output order (see `wavefunction`); per-x sums
            // still accumulate in the same random-event order, so each
            // probability is bitwise unchanged.
            this.for_each_output_gray(&mut values, |this, values, x| {
                probs[x] += this.amplitude_assignment(values).norm_sqr();
            });
        });
        probs
    }

    /// The full density matrix `ρ[x, x'] = Σ_K amp(x,K)·conj(amp(x',K))`.
    /// Enumerates random events — validation-scale only.
    pub fn density_matrix(&self) -> CMatrix {
        let n = self.sim.num_outputs();
        let dim = 1usize << n;
        let mut rho = CMatrix::zeros(dim, dim);
        let mut values = vec![0usize; self.sim.query().len()];
        let mut amps: Vec<Complex> = vec![C_ZERO; dim];
        self.for_each_rv(|this, rvs| {
            values[n..].copy_from_slice(rvs);
            // Gray-code order (see `wavefunction`); amplitudes land at
            // their natural index.
            this.for_each_output_gray(&mut values, |this, values, x| {
                amps[x] = this.amplitude_assignment(values);
            });
            for r in 0..dim {
                for c in 0..dim {
                    rho[(r, c)] += amps[r] * amps[c].conj();
                }
            }
        });
        rho
    }

    fn for_each_rv(&self, mut f: impl FnMut(&Self, &[usize])) {
        let rv_specs = &self.sim.query()[self.sim.num_outputs()..];
        let domains: Vec<usize> = rv_specs.iter().map(|s| s.domain).collect();
        for_each_rv_assignment(&domains, |rvs| f(self, rvs));
    }

    /// Runs one upward+downward pass with evidence set to `(outputs, rvs)`
    /// and returns an owned differentials snapshot (used by sensitivity
    /// queries, which hold results past the evaluator borrow).
    pub(crate) fn differentials_for(
        &self,
        outputs: usize,
        rvs: &[usize],
    ) -> qkc_knowledge::TapeDifferentials<'a> {
        let n = self.sim.num_outputs();
        let mut values: Vec<usize> = (0..n).map(|i| (outputs >> (n - 1 - i)) & 1).collect();
        values.extend_from_slice(rvs);
        let query = self.sim.query();
        let mut guard = self.scratch.borrow_mut();
        let w = guard.get_or_insert_with(|| self.weights.clone());
        for (spec, &value) in query.iter().zip(&values) {
            set_evidence(w, spec, value);
        }
        let tape = self.sim.tape();
        let mut eval = self.eval.borrow_mut();
        let value = eval.differentials(tape, w);
        let diffs = eval.take_differentials(tape, value);
        self.restore_scratch(w);
        diffs
    }

    /// The global factor from unit-resolved parameters.
    pub(crate) fn global(&self) -> Complex {
        self.global
    }

    /// The current weight bound to a CNF variable's positive literal.
    pub(crate) fn weight_of(&self, var: u32) -> Complex {
        self.weights.get(var as i32)
    }

    /// Creates a Gibbs sampler over outputs and random events
    /// (paper §3.3.2). Transitions run on the flat tape through a
    /// persistent evaluator (delta cone per accepted move).
    pub fn sampler(&self, options: &GibbsOptions) -> KcSampler<'_> {
        let (vars, value_maps) = self.sampler_vars();
        let sampler = GibbsSampler::new(self.sim.tape(), self.weights.clone(), vars, options);
        KcSampler {
            sampler,
            value_maps,
            num_outputs: self.sim.num_outputs(),
        }
    }

    /// The enum-walk reference counterpart of [`BoundKc::sampler`]: same
    /// chain, bit for bit, on the arena kernels. For equivalence tests and
    /// kernel benchmarks.
    #[doc(hidden)]
    pub fn sampler_enum_walk(&self, options: &GibbsOptions) -> KcSampler<'_> {
        let (vars, value_maps) = self.sampler_vars();
        let sampler =
            GibbsSampler::new_enum_walk(self.sim.nnf(), self.weights.clone(), vars, options);
        KcSampler {
            sampler,
            value_maps,
            num_outputs: self.sim.num_outputs(),
        }
    }

    /// Query-variable layout shared by both sampler constructors.
    fn sampler_vars(&self) -> (Vec<QueryVar>, Vec<Vec<usize>>) {
        let mut vars = Vec::new();
        let mut value_maps = Vec::new();
        for spec in self.sim.query() {
            let free = spec.free_values();
            if let Some(v) = spec.forced_value() {
                // Unit resolution removed this variable from the circuit:
                // it is pinned with no evidence to apply.
                vars.push(QueryVar {
                    label: spec.label.clone(),
                    value_lits: Vec::new(),
                    fixed: Some(0),
                });
                value_maps.push(vec![v]);
            } else {
                vars.push(QueryVar {
                    label: spec.label.clone(),
                    value_lits: free.iter().map(|&(_, l)| l).collect(),
                    fixed: None,
                });
                value_maps.push(free.iter().map(|&(v, _)| v).collect());
            }
        }
        (vars, value_maps)
    }
}

/// A compiled simulator bound to concrete parameter values **and** their
/// weight tangents for a fixed symbol list — the analytic-gradient query
/// handle produced by [`KcSimulator::bind_with_tangents`].
#[derive(Debug)]
pub struct BoundKcTangents<'a> {
    bound: BoundKc<'a>,
    /// `d(global)/∂θ_s` — product rule over unit-resolved parameters.
    dglobals: Vec<Complex>,
    /// One contraction plan per symbol, in input order.
    plans: Vec<TangentPlan>,
    /// Ancestor cone of the union of all plans' slots: the downward sweep
    /// of every gradient pass stays inside it (bit-for-bit equal partials
    /// at every plan slot, none of the full-tape sweep cost).
    cone: DiffCone,
}

impl<'a> BoundKcTangents<'a> {
    /// The underlying bound handle (ordinary amplitude/probability queries
    /// ignore the tangents and behave exactly like [`KcSimulator::bind`]).
    pub fn bound(&self) -> &BoundKc<'a> {
        &self.bound
    }

    /// Number of tangent symbols this handle differentiates against.
    pub fn num_symbols(&self) -> usize {
        self.plans.len()
    }

    /// The exact expectation of a diagonal observable **and** its gradient
    /// with respect to every tangent symbol, from ONE upward+downward
    /// differentials pass per evidence assignment — independent of the
    /// number of parameters.
    ///
    /// Per assignment `(x, K)`: `amp = global · root`, and for each symbol
    /// the chain rule gives
    /// `damp_s = dglobal_s · root + global · Σ_lit ∂root/∂w(lit) · dw(lit)/dθ_s`,
    /// where the sum is the precomputed tangent contraction. Then
    /// `⟨O⟩ = Σ |amp|²·O(x)` and
    /// `∂⟨O⟩/∂θ_s = Σ 2·Re(conj(amp)·damp_s)·O(x)` — exact because the
    /// d-DNNF circuit is multilinear in its literal weights. Enumeration
    /// runs in the same Gray-output × random-event odometer order as the
    /// probability reconstructions, so the expectation value is bit-for-bit
    /// the plain [`BoundKcBatch::expectations`](crate::BoundKcBatch::expectations)
    /// fold. Zero allocations per assignment after warmup.
    ///
    /// Internally, consecutive Gray-code basis states ride as *weight
    /// lanes* of one batched differentials pass (up to 16 at a time): the
    /// sweep decodes each cone slot once and updates every lane in a
    /// contiguous loop, amortizing per-slot dispatch the same way the
    /// parameter-shift batch bind amortizes it over shifted parameter
    /// sets. Each lane is bit-for-bit the scalar pass for its assignment
    /// (full-product arithmetic is path-independent), so lane blocking
    /// changes visit grouping, not any accumulated value.
    pub fn expectation_gradient(&self, observable: &dyn Fn(usize) -> f64) -> (f64, Vec<f64>) {
        let b = &self.bound;
        let n = b.sim.num_outputs();
        let ns = self.plans.len();
        let dim = 1usize << n;
        // 32 lanes balance per-slot sweep amortization against the L1
        // working set of the wide product nodes (arity×lanes rows).
        let k = dim.min(32);
        crate::batch::note_batch_width(k);
        let query = b.sim.query();
        let tape = b.sim.tape();
        // Every lane starts from the pristine bound weights; evidence
        // writes below touch only the query variables they change.
        let mut wb = AcWeightsBatch::uniform(b.weights.num_vars(), k);
        for v in 1..=b.weights.num_vars() as u32 {
            wb.set_all(v, b.weights.get(v as i32), b.weights.get(-(v as i32)));
        }
        // opos[oi] = position of output oi in the Gray bit order, so each
        // lane can decode its basis state without re-walking `order`.
        let order = b.sim.output_gray_order();
        let mut opos = vec![0usize; n];
        for (j, &oi) in order.iter().enumerate() {
            opos[oi] = j;
        }
        // Per-basis-state accumulators, folded against the observable in
        // natural order at the end — the same shape as the probability
        // reconstructions, so the expectation value is bitwise identical
        // to the plain `expectations` fold.
        let mut probs = vec![0.0; dim];
        let mut dprobs = vec![vec![0.0; dim]; ns];
        // Last evidence value written into each lane, per query spec:
        // lanes revisit the same Gray positions every block, so most specs
        // are already correct and the delta cone stays small.
        let mut written: Vec<Vec<Option<usize>>> = vec![vec![None; query.len()]; k];
        let mut dead = vec![false; k];
        let mut changed: Vec<u32> = Vec::new();
        let mut xs = vec![0usize; k];
        let mut raws = vec![C_ZERO; k];
        let mut contracted = vec![C_ZERO; k];
        let mut first = true;
        let mut eval = b.eval.borrow_mut();
        let domains: Vec<usize> = query[n..].iter().map(|s| s.domain).collect();
        for_each_rv_assignment(&domains, |rvs| {
            for blk in 0..dim / k {
                changed.clear();
                dead.fill(false);
                'lane: for l in 0..k {
                    let g = blk * k + l;
                    let gc = g ^ (g >> 1);
                    let mut x = 0usize;
                    let mut apply = |written: &mut Vec<Option<usize>>, s: usize, value: usize| {
                        let spec = &query[s];
                        // An impossible value has no literal to set: mark
                        // the lane dead and leave its weights untouched
                        // (so `written` stays truthful for later blocks).
                        if matches!(spec.values[value], ValueState::ForcedFalse) {
                            return false;
                        }
                        if written[s] != Some(value) {
                            set_evidence_lane(&mut wb, spec, value, l);
                            written[s] = Some(value);
                            for state in &spec.values {
                                if let ValueState::Lit(lit) = state {
                                    changed.push(lit.unsigned_abs());
                                }
                            }
                        }
                        true
                    };
                    for (oi, &pos) in opos.iter().enumerate().take(n) {
                        let bit = (gc >> pos) & 1;
                        x |= bit << (n - 1 - oi);
                        if !apply(&mut written[l], oi, bit) {
                            dead[l] = true;
                            continue 'lane;
                        }
                    }
                    xs[l] = x;
                    for (s, &rv) in rvs.iter().enumerate() {
                        if !apply(&mut written[l], n + s, rv) {
                            dead[l] = true;
                            continue 'lane;
                        }
                    }
                }
                if first {
                    eval.differentials_cone_batch(tape, &wb, &self.cone);
                    first = false;
                } else {
                    eval.differentials_cone_batch_delta(tape, &wb, &changed, &self.cone);
                }
                for l in 0..k {
                    if dead[l] {
                        continue;
                    }
                    raws[l] = eval.value_lane(tape, l);
                    probs[xs[l]] += (b.global * raws[l]).norm_sqr();
                }
                for ((dp, plan), &dg) in dprobs.iter_mut().zip(&self.plans).zip(&self.dglobals) {
                    eval.contract_tangent_broadcast(plan, &mut contracted);
                    for l in 0..k {
                        if dead[l] {
                            continue;
                        }
                        let amp = b.global * raws[l];
                        let damp = dg * raws[l] + b.global * contracted[l];
                        dp[xs[l]] += 2.0 * (amp.conj() * damp).re;
                    }
                }
            }
        });
        let energy = probs
            .iter()
            .enumerate()
            .map(|(x, &p)| p * observable(x))
            .sum();
        let grad = dprobs
            .iter()
            .map(|dp| dp.iter().enumerate().map(|(x, &d)| d * observable(x)).sum())
            .collect();
        (energy, grad)
    }
}

/// Calls `f` with every assignment of the random-event domains, in
/// odometer order (first domain fastest) — the enumeration order both the
/// scalar and batched probability reconstructions share.
pub(crate) fn for_each_rv_assignment(domains: &[usize], mut f: impl FnMut(&[usize])) {
    let mut rvs = vec![0usize; domains.len()];
    loop {
        f(&rvs);
        let mut i = 0;
        loop {
            if i == domains.len() {
                return;
            }
            rvs[i] += 1;
            if rvs[i] < domains[i] {
                break;
            }
            rvs[i] = 0;
            i += 1;
        }
    }
}

/// Writes evidence `spec = value` into the weight vector. Returns `false`
/// if the value is impossible (forced false by unit resolution).
fn set_evidence(w: &mut AcWeights, spec: &crate::pipeline::QuerySpec, value: usize) -> bool {
    if matches!(spec.values[value], ValueState::ForcedFalse) {
        return false;
    }
    // Binary nodes: one CNF variable carries both values.
    if spec.domain == 2 {
        if let (ValueState::Lit(l0), ValueState::Lit(l1)) = (spec.values[0], spec.values[1]) {
            debug_assert_eq!(l0, -l1, "binary node literals must be complementary");
            let var = l1.unsigned_abs();
            let (pos, neg) = if value == 1 {
                (C_ONE, C_ZERO)
            } else {
                (C_ZERO, C_ONE)
            };
            w.set(var, pos, neg);
        }
        // Fully forced binary node: nothing to set; consistency was checked.
        return true;
    }
    // Indicator-encoded nodes: chosen free indicator 1, other free
    // indicators 0, negative polarities 1.
    for (v, state) in spec.values.iter().enumerate() {
        if let ValueState::Lit(lit) = state {
            let var = lit.unsigned_abs();
            let chosen = if v == value { C_ONE } else { C_ZERO };
            w.set(var, chosen, C_ONE);
        }
    }
    true
}

/// Lane-local [`set_evidence`] for batched gradient passes. The caller has
/// already rejected `ForcedFalse` values.
fn set_evidence_lane(
    wb: &mut AcWeightsBatch,
    spec: &crate::pipeline::QuerySpec,
    value: usize,
    lane: usize,
) {
    if spec.domain == 2 {
        if let (ValueState::Lit(l0), ValueState::Lit(l1)) = (spec.values[0], spec.values[1]) {
            debug_assert_eq!(l0, -l1, "binary node literals must be complementary");
            let var = l1.unsigned_abs();
            let (pos, neg) = if value == 1 {
                (C_ONE, C_ZERO)
            } else {
                (C_ZERO, C_ONE)
            };
            wb.set_lane(var, lane, pos, neg);
        }
        return;
    }
    for (v, state) in spec.values.iter().enumerate() {
        if let ValueState::Lit(lit) = state {
            let var = lit.unsigned_abs();
            let chosen = if v == value { C_ONE } else { C_ZERO };
            wb.set_lane(var, lane, chosen, C_ONE);
        }
    }
}

/// A Gibbs sampler with query-variable value mapping back to circuit
/// semantics.
#[derive(Debug)]
pub struct KcSampler<'a> {
    sampler: GibbsSampler<'a>,
    /// For each query var: chain-state index → actual domain value.
    value_maps: Vec<Vec<usize>>,
    num_outputs: usize,
}

impl<'a> KcSampler<'a> {
    /// Draws `count` output bitstrings, taking `thin` coordinate updates
    /// between records.
    pub fn sample_outputs(&mut self, count: usize, thin: usize) -> Vec<usize> {
        let maps = self.value_maps.clone();
        let n = self.num_outputs;
        self.sampler.sample_with(count, thin, move |state| {
            let mut x = 0usize;
            for (i, map) in maps.iter().take(n).enumerate() {
                x |= map[state[i]] << (n - 1 - i);
            }
            x
        })
    }

    /// The chain's current full assignment in domain values
    /// (outputs then random events).
    pub fn current_assignment(&self) -> Vec<usize> {
        self.sampler
            .state()
            .iter()
            .zip(&self.value_maps)
            .map(|(&s, map)| map[s])
            .collect()
    }

    /// Fraction of coordinate updates that moved.
    pub fn acceptance_rate(&self) -> f64 {
        self.sampler.acceptance_rate()
    }
}
