//! Noise-diagnosis queries: the paper's §5 research directions, realized.
//!
//! "MPE queries would answer what error event best explains a given
//! symptomatic observed outcome" — here [`BoundKc::most_probable_explanation`]
//! finds the noise-branch assignment maximizing `|amp(x, K)|²` for an
//! observed output `x`, and [`BoundKc::noise_posterior`] gives the posterior
//! distribution of a single noise event. The MAX operator is undefined for
//! complex amplitudes but well-defined for the real probabilities
//! `|amp|²` (exactly the caveat the paper raises), so both queries work on
//! squared magnitudes of the exact upward-pass amplitudes.

use crate::bound::BoundKc;
use crate::pipeline::QuerySpec;
use qkc_math::Complex;

/// One parameter-sensitivity record: how strongly an operation's amplitude
/// entry influences a queried output amplitude.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Index of the operation in the source circuit.
    pub op_index: usize,
    /// The Bayesian-network node whose table holds the entry.
    pub node_label: String,
    /// `∂ amp / ∂ w` for this entry's weight.
    pub derivative: Complex,
    /// The entry's current weight value.
    pub weight: Complex,
}

impl<'a> BoundKc<'a> {
    /// Sensitivity analysis (paper §5): the partial derivative of the
    /// amplitude of `(outputs, rvs)` with respect to every parameter weight
    /// in the circuit — one upward + one downward pass total.
    ///
    /// The amplitude is multilinear in the weights, so `derivative × δ` is
    /// the exact first-order amplitude change if a single table entry's
    /// value moved by `δ`. Entries eliminated by unit resolution (global
    /// factors) are not listed.
    pub fn parameter_sensitivities(&self, outputs: usize, rvs: &[usize]) -> Vec<Sensitivity> {
        let diffs = self.differentials_for(outputs, rvs);
        let mut out = Vec::new();
        for (var, node, slot) in self.simulator().encoding().vars.params() {
            if self.simulator().fixed_vars().contains_key(&var) {
                continue;
            }
            if let Some(d) = diffs.wrt_lit(var as i32) {
                let role_op = match self.simulator().bayes_net().node(node).role {
                    qkc_bayesnet::NodeRole::QubitState { op_index, .. }
                    | qkc_bayesnet::NodeRole::NoiseSelector { op_index, .. }
                    | qkc_bayesnet::NodeRole::MeasureOutcome { op_index, .. } => op_index,
                    qkc_bayesnet::NodeRole::Initial { qubit } => qubit,
                };
                out.push(Sensitivity {
                    op_index: role_op,
                    node_label: self.simulator().bayes_net().node(node).label.clone(),
                    derivative: self.global() * d,
                    weight: self.weight_of(var),
                });
                let _ = slot;
            }
        }
        out
    }
}

/// The result of an MPE (most probable explanation) query.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The noise/measurement random-event assignment, in circuit order.
    pub events: Vec<usize>,
    /// Its joint probability contribution `|amp(x, K)|²`.
    pub probability: f64,
}

impl<'a> BoundKc<'a> {
    fn rv_specs(&self) -> &[QuerySpec] {
        &self.simulator().query()[self.simulator().num_outputs()..]
    }

    /// Iterates every random-event assignment, calling `f` with the values
    /// and the resulting `|amp(outputs, K)|²`.
    fn for_each_explanation(&self, outputs: usize, mut f: impl FnMut(&[usize], f64)) {
        let domains: Vec<usize> = self.rv_specs().iter().map(|s| s.domain).collect();
        let mut rvs = vec![0usize; domains.len()];
        loop {
            let p = self.amplitude(outputs, &rvs).norm_sqr();
            f(&rvs, p);
            let mut i = 0;
            loop {
                if i == domains.len() {
                    return;
                }
                rvs[i] += 1;
                if rvs[i] < domains[i] {
                    break;
                }
                rvs[i] = 0;
                i += 1;
            }
        }
    }

    /// The most probable explanation of observing `outputs`: the noise /
    /// measurement branch assignment `K` maximizing `|amp(outputs, K)|²`
    /// (paper §5).
    ///
    /// Uses exact enumeration while the joint event space is at most
    /// `budget` assignments, and greedy coordinate ascent (restarted from
    /// the all-identity assignment) beyond that — the ascent is exact per
    /// coordinate thanks to the upward pass but may return a local optimum.
    ///
    /// Returns `None` if the output has probability zero under every
    /// explanation.
    pub fn most_probable_explanation(&self, outputs: usize, budget: usize) -> Option<Explanation> {
        let domains: Vec<usize> = self.rv_specs().iter().map(|s| s.domain).collect();
        if domains.is_empty() {
            let p = self.amplitude(outputs, &[]).norm_sqr();
            return (p > 0.0).then_some(Explanation {
                events: Vec::new(),
                probability: p,
            });
        }
        let combos: usize = domains.iter().product();
        if combos <= budget {
            let mut best: Option<Explanation> = None;
            self.for_each_explanation(outputs, |rvs, p| {
                if p > 0.0 && best.as_ref().is_none_or(|b| p > b.probability) {
                    best = Some(Explanation {
                        events: rvs.to_vec(),
                        probability: p,
                    });
                }
            });
            return best;
        }
        // Greedy coordinate ascent from the all-identity branch (value 0 is
        // the "no error" Kraus branch for every canonical noise model).
        let mut rvs = vec![0usize; domains.len()];
        let mut current = self.amplitude(outputs, &rvs).norm_sqr();
        loop {
            let mut improved = false;
            for i in 0..rvs.len() {
                let original = rvs[i];
                let mut best_v = original;
                let mut best_p = current;
                for v in 0..domains[i] {
                    if v == original {
                        continue;
                    }
                    rvs[i] = v;
                    let p = self.amplitude(outputs, &rvs).norm_sqr();
                    if p > best_p {
                        best_p = p;
                        best_v = v;
                    }
                }
                rvs[i] = best_v;
                if best_v != original {
                    current = best_p;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        (current > 0.0).then_some(Explanation {
            events: rvs,
            probability: current,
        })
    }

    /// The posterior distribution of random event `rv_index` given the
    /// observation: `P(K_i = k | x) ∝ Σ_{K₋ᵢ} |amp(x, K)|²`.
    ///
    /// Exact (enumerates the event space); intended for circuits with a
    /// moderate number of noise events.
    ///
    /// # Panics
    ///
    /// Panics if `rv_index` is out of range.
    pub fn noise_posterior(&self, outputs: usize, rv_index: usize) -> Vec<f64> {
        let domains: Vec<usize> = self.rv_specs().iter().map(|s| s.domain).collect();
        assert!(rv_index < domains.len(), "rv index out of range");
        let mut weights = vec![0.0; domains[rv_index]];
        self.for_each_explanation(outputs, |rvs, p| {
            weights[rvs[rv_index]] += p;
        });
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use crate::{KcOptions, KcSimulator};
    use qkc_circuit::{Circuit, ParamMap};

    /// Noisy Bell pair: observing |01⟩ or |10⟩ is impossible without a
    /// bit-flip; MPE must blame the flip branch.
    #[test]
    fn mpe_blames_the_bit_flip() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).bit_flip(1, 0.1);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let bound = sim.bind(&ParamMap::new()).unwrap();
        // |01> can only arise from the flip (branch 1).
        let exp = bound.most_probable_explanation(0b01, 1 << 12).unwrap();
        assert_eq!(exp.events, vec![1]);
        // |00> is best explained by no error (branch 0).
        let exp = bound.most_probable_explanation(0b00, 1 << 12).unwrap();
        assert_eq!(exp.events, vec![0]);
    }

    #[test]
    fn mpe_ranks_single_flips_over_double_flips() {
        // Two independent bit flips on a Bell pair: |01> is explained by a
        // single flip on either qubit (flip q1 from |00> or flip q0 from
        // |11> — equally probable), never by the double flip.
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).bit_flip(0, 0.05).bit_flip(1, 0.05);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let bound = sim.bind(&ParamMap::new()).unwrap();
        let exp = bound.most_probable_explanation(0b01, 1 << 12).unwrap();
        let flips: usize = exp.events.iter().sum();
        assert_eq!(flips, 1, "exactly one flip explains |01>: {:?}", exp.events);
        // The double-flip explanation has zero probability here (it maps
        // the Bell state onto |11>/|00>, not |01>).
        assert!(bound.amplitude(0b01, &[1, 1]).norm_sqr() < 1e-12);
    }

    #[test]
    fn posterior_is_certain_for_forced_events() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).bit_flip(1, 0.2);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let bound = sim.bind(&ParamMap::new()).unwrap();
        let post = bound.noise_posterior(0b10, 0);
        assert!((post[1] - 1.0).abs() < 1e-12, "flip is certain: {post:?}");
        // For |11>, no flip is far more likely (p=0.8 vs 0.2 is the prior,
        // and both branches can produce |11>... only no-flip can: flip maps
        // |11> -> |10>. So no-flip is certain.
        let post = bound.noise_posterior(0b11, 0);
        assert!((post[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn posterior_mixes_when_both_branches_explain() {
        // Depolarizing after H: outcome |0> is consistent with I and Z
        // branches (and X/Y map it from |1> which is also populated).
        let mut c = Circuit::new(1);
        c.h(0).depolarize(0, 0.3);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let bound = sim.bind(&ParamMap::new()).unwrap();
        let post = bound.noise_posterior(0, 0);
        assert_eq!(post.len(), 4);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Identity branch dominates (prior 0.7) but every branch has mass.
        assert!(post[0] > 0.6);
        assert!(post.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn sensitivities_are_exact_first_order_derivatives() {
        // amp(|11>) for Rx(t) . CNOT is -i·sin(t/2); its derivative w.r.t.
        // the Rx table's sin-entry weight is the CNOT path coefficient 1.
        let mut c = Circuit::new(2);
        c.rx(0, qkc_circuit::Param::symbol("t")).cnot(0, 1);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let bound = sim.bind(&ParamMap::from_pairs([("t", 0.8)])).unwrap();
        let sens = bound.parameter_sensitivities(0b11, &[]);
        assert!(!sens.is_empty());
        // Multilinearity: amp == Σ contributions is not generally true, but
        // for each weight w: amp = d·w + (terms without w). Verify against
        // the analytic amplitude for the entry equal to -i·sin(t/2).
        let amp = bound.amplitude(0b11, &[]);
        let target = sens
            .iter()
            .find(|s| {
                s.weight
                    .approx_eq(qkc_math::Complex::imag(-(0.4f64).sin()), 1e-12)
            })
            .expect("sin entry present");
        // amp = derivative · weight here because the |11> path uses the
        // sin entry exactly once and every other path is zero.
        assert!(
            (target.derivative * target.weight).approx_eq(amp, 1e-10),
            "d·w = {} vs amp = {amp}",
            target.derivative * target.weight
        );
    }

    #[test]
    fn ascent_matches_enumeration_on_small_instances() {
        let mut c = Circuit::new(2);
        c.h(0)
            .bit_flip(0, 0.1)
            .cnot(0, 1)
            .phase_flip(1, 0.2)
            .bit_flip(1, 0.15);
        let sim = KcSimulator::compile(&c, &KcOptions::default());
        let bound = sim.bind(&ParamMap::new()).unwrap();
        for outputs in 0..4 {
            let exact = bound.most_probable_explanation(outputs, 1 << 12);
            let ascent = bound.most_probable_explanation(outputs, 1);
            let (Some(exact), Some(ascent)) = (exact, ascent) else {
                panic!("both should find explanations");
            };
            // Ascent may hit a local optimum in general, but on these tiny
            // landscapes it matches.
            assert!(
                (exact.probability - ascent.probability).abs() < 1e-9,
                "output {outputs}: {exact:?} vs {ascent:?}"
            );
        }
    }
}
