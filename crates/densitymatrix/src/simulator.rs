//! Circuit-level driver over the density-matrix kernels.

use crate::density::DensityMatrix;
use qkc_circuit::{Circuit, CircuitError, GateLayout, Operation, ParamMap};
use qkc_math::AliasTable;
use rand::Rng;

/// A density-matrix circuit simulator in the style of Cirq's
/// `DensityMatrixSimulator`: the noisy-circuit baseline of the paper's
/// Figure 9.
///
/// # Examples
///
/// ```
/// use qkc_circuit::{Circuit, ParamMap};
/// use qkc_densitymatrix::DensityMatrixSimulator;
///
/// let mut c = Circuit::new(2);
/// c.h(0).depolarize(0, 0.01).cnot(0, 1);
/// let rho = DensityMatrixSimulator::new().run(&c, &ParamMap::new()).unwrap();
/// let p = rho.probabilities();
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DensityMatrixSimulator {}

impl DensityMatrixSimulator {
    /// Creates a simulator.
    pub fn new() -> Self {
        Self {}
    }

    /// Evolves `|0...0⟩⟨0...0|` through the circuit (gates, noise channels,
    /// and measurements — which dephase) and returns the final density
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns an unbound-parameter error if a symbol is missing from
    /// `params`.
    pub fn run(&self, circuit: &Circuit, params: &ParamMap) -> Result<DensityMatrix, CircuitError> {
        let mut rho = DensityMatrix::zero_state(circuit.num_qubits());
        for op in circuit.operations() {
            match op {
                Operation::Gate { gate, qubits } => match gate.layout() {
                    GateLayout::Permutation => {
                        rho.apply_permutation(&gate.permutation(), qubits);
                    }
                    _ => {
                        let u = gate.unitary(params).map_err(CircuitError::Unbound)?;
                        rho.apply_unitary(&u, qubits);
                    }
                },
                Operation::Permutation { perm, qubits } => {
                    rho.apply_permutation(perm.table(), qubits);
                }
                Operation::Diagonal { diag, qubits } => {
                    rho.apply_unitary(&qkc_circuit::reference::diagonal_unitary(diag), qubits);
                }
                Operation::Noise { channel, qubit } => {
                    let kraus = channel.kraus(params).map_err(CircuitError::Unbound)?;
                    rho.apply_kraus(&kraus, &[*qubit]);
                }
                Operation::Measure { qubit } => rho.dephase(*qubit),
            }
        }
        Ok(rho)
    }

    /// The exact measurement distribution over basis states.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn probabilities(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
    ) -> Result<Vec<f64>, CircuitError> {
        Ok(self.run(circuit, params)?.probabilities())
    }

    /// Draws `shots` measurement outcomes from the final distribution.
    ///
    /// The density matrix is computed once; sampling its diagonal is then
    /// O(1) per shot — exactly how the paper's density-matrix baseline
    /// draws its 1000 samples.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn sample<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &ParamMap,
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<usize>, CircuitError> {
        let mut probs = self.probabilities(circuit, params)?;
        // Clamp tiny negative diagonal values from floating-point noise.
        for p in &mut probs {
            if *p < 0.0 && *p > -1e-12 {
                *p = 0.0;
            }
        }
        let table = AliasTable::new(&probs).expect("density diagonal sums to 1");
        Ok((0..shots).map(|_| table.sample(rng)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_reference_on_noisy_circuit() {
        let mut c = qkc_circuit::Circuit::new(3);
        c.h(0)
            .cnot(0, 1)
            .depolarize(1, 0.05)
            .zz(1, 2, 0.7)
            .phase_damp(2, 0.3)
            .rx(0, 0.4)
            .bit_flip(0, 0.02)
            .measure(1);
        let params = ParamMap::new();
        let want = reference::run_density(&c, &params).unwrap();
        let got = DensityMatrixSimulator::new().run(&c, &params).unwrap();
        for r in 0..8 {
            for cc in 0..8 {
                assert!(
                    got.entry(r, cc).approx_eq(want[(r, cc)], 1e-10),
                    "entry ({r},{cc}): {} vs {}",
                    got.entry(r, cc),
                    want[(r, cc)]
                );
            }
        }
    }

    #[test]
    fn trace_is_preserved_through_channels() {
        let mut c = qkc_circuit::Circuit::new(2);
        c.h(0)
            .amplitude_damp(0, 0.3)
            .cnot(0, 1)
            .depolarize(1, 0.1)
            .phase_flip(0, 0.2);
        let rho = DensityMatrixSimulator::new()
            .run(&c, &ParamMap::new())
            .unwrap();
        assert!(rho.trace().approx_eq(qkc_math::C_ONE, 1e-10));
    }

    #[test]
    fn sampling_matches_diagonal() {
        let mut c = qkc_circuit::Circuit::new(2);
        c.h(0).bit_flip(0, 0.25).cnot(0, 1);
        let params = ParamMap::new();
        let sim = DensityMatrixSimulator::new();
        let probs = sim.probabilities(&c, &params).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let shots = 50_000;
        let samples = sim.sample(&c, &params, shots, &mut rng).unwrap();
        let mut counts = [0usize; 4];
        for s in samples {
            counts[s] += 1;
        }
        for i in 0..4 {
            assert!(
                (counts[i] as f64 / shots as f64 - probs[i]).abs() < 0.01,
                "outcome {i}"
            );
        }
    }

    #[test]
    fn parameterized_noisy_circuit_rebinding() {
        let mut c = qkc_circuit::Circuit::new(1);
        c.rx(0, qkc_circuit::Param::symbol("t")).depolarize(0, 0.01);
        let sim = DensityMatrixSimulator::new();
        for theta in [0.2, 1.5] {
            let params = ParamMap::from_pairs([("t", theta)]);
            let p = sim.probabilities(&c, &params).unwrap();
            let ideal = (theta / 2.0).sin().powi(2);
            // Depolarizing pulls slightly toward 1/2.
            let noisy = ideal * (1.0 - 2.0 * 0.01 / 1.5) + 0.01 / 1.5;
            assert!(
                (p[1] - noisy).abs() < 1e-6,
                "theta={theta}: {} vs {noisy}",
                p[1]
            );
        }
    }
}
