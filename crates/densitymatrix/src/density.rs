//! The density-matrix representation and its update kernels.

use qkc_math::{CMatrix, Complex, C_ONE, C_ZERO};

/// A mixed `n`-qubit quantum state: a `2^n × 2^n` complex density matrix,
/// big-endian (qubit 0 is the most significant index bit).
///
/// Density matrices represent noisy states as probabilistic ensembles of
/// pure states (`ρ = Σ_j p_j |ψ_j⟩⟨ψ_j|`, §2.2.1 of the paper) and are the
/// classical way to simulate noise *channels* that cannot be expressed as
/// unitary mixtures.
///
/// # Examples
///
/// ```
/// use qkc_densitymatrix::DensityMatrix;
/// use qkc_math::CMatrix;
///
/// let mut rho = DensityMatrix::zero_state(1);
/// rho.apply_unitary(&CMatrix::hadamard(), &[0]);
/// assert!((rho.probabilities()[1] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    dim: usize,
    /// Row-major `dim × dim` entries.
    data: Vec<Complex>,
}

impl DensityMatrix {
    /// The pure state `|0...0⟩⟨0...0|`.
    pub fn zero_state(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let mut data = vec![C_ZERO; dim * dim];
        data[0] = C_ONE;
        Self {
            num_qubits,
            dim,
            data,
        }
    }

    /// The projector `|ψ⟩⟨ψ|` of a pure state given by its amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the amplitude count is not a power of two.
    pub fn from_pure(amps: &[Complex]) -> Self {
        assert!(
            amps.len().is_power_of_two() && !amps.is_empty(),
            "amplitude count must be a nonzero power of two"
        );
        let dim = amps.len();
        let mut data = vec![C_ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                data[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        Self {
            num_qubits: dim.trailing_zeros() as usize,
            dim,
            data,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Matrix dimension (`2^n`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The entry `ρ[r, c]`.
    pub fn entry(&self, r: usize, c: usize) -> Complex {
        self.data[r * self.dim + c]
    }

    /// Measurement probabilities: the real diagonal.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.data[i * self.dim + i].re)
            .collect()
    }

    /// The trace (1 for a valid state).
    pub fn trace(&self) -> Complex {
        (0..self.dim).map(|i| self.data[i * self.dim + i]).sum()
    }

    /// The purity `Tr(ρ²)`; 1 for pure states, `1/2^n` for the maximally
    /// mixed state.
    pub fn purity(&self) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.dim {
            for c in 0..self.dim {
                // Tr(ρ²) = Σ_{r,c} ρ[r,c]·ρ[c,r] = Σ |ρ[r,c]|² for Hermitian ρ.
                acc += (self.entry(r, c) * self.entry(c, r)).re;
            }
        }
        acc
    }

    /// Converts to a dense [`CMatrix`] (for small-system comparisons).
    pub fn to_matrix(&self) -> CMatrix {
        CMatrix::from_rows(self.dim, self.dim, self.data.clone())
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &DensityMatrix, tol: f64) -> bool {
        self.dim == other.dim
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    #[inline]
    fn bit_pos(&self, qubit: usize) -> usize {
        self.num_qubits - 1 - qubit
    }

    /// Offsets of the `2^k` sub-basis states of `qubits` inside a full index.
    fn offsets(&self, qubits: &[usize]) -> Vec<usize> {
        let k = qubits.len();
        (0..1usize << k)
            .map(|y| {
                let mut off = 0usize;
                for (i, &q) in qubits.iter().enumerate() {
                    if (y >> (k - 1 - i)) & 1 == 1 {
                        off |= 1 << self.bit_pos(q);
                    }
                }
                off
            })
            .collect()
    }

    /// Iterates base indices whose `qubits` bits are all zero.
    fn bases(&self, qubits: &[usize]) -> Vec<usize> {
        let mut positions: Vec<usize> = qubits.iter().map(|&q| self.bit_pos(q)).collect();
        positions.sort_unstable();
        let outer = self.dim >> qubits.len();
        (0..outer)
            .map(|c| {
                let mut idx = c;
                for &p in &positions {
                    idx = ((idx >> p) << (p + 1)) | (idx & ((1 << p) - 1));
                }
                idx
            })
            .collect()
    }

    /// In-place `ρ ← (M ⊗ I) · ρ` where `M` acts on `qubits`' row indices.
    fn apply_matrix_rows(&mut self, m: &CMatrix, qubits: &[usize]) {
        let offsets = self.offsets(qubits);
        let bases = self.bases(qubits);
        let sub = offsets.len();
        let mut gathered = vec![C_ZERO; sub];
        for col in 0..self.dim {
            for &base in &bases {
                for (y, &off) in offsets.iter().enumerate() {
                    gathered[y] = self.data[(base | off) * self.dim + col];
                }
                for (row, &off) in offsets.iter().enumerate() {
                    let mut acc = C_ZERO;
                    for (k, &g) in gathered.iter().enumerate() {
                        acc += m[(row, k)] * g;
                    }
                    self.data[(base | off) * self.dim + col] = acc;
                }
            }
        }
    }

    /// In-place `ρ ← ρ · (M ⊗ I)†` where `M` acts on `qubits`' column
    /// indices.
    fn apply_matrix_cols_adjoint(&mut self, m: &CMatrix, qubits: &[usize]) {
        let offsets = self.offsets(qubits);
        let bases = self.bases(qubits);
        let sub = offsets.len();
        let mut gathered = vec![C_ZERO; sub];
        for row in 0..self.dim {
            let row_base = row * self.dim;
            for &base in &bases {
                for (y, &off) in offsets.iter().enumerate() {
                    gathered[y] = self.data[row_base + (base | off)];
                }
                // ρ'[r, c] = Σ_k ρ[r, k]·conj(M[c, k])
                for (colv, &off) in offsets.iter().enumerate() {
                    let mut acc = C_ZERO;
                    for (k, &g) in gathered.iter().enumerate() {
                        acc += g * m[(colv, k)].conj();
                    }
                    self.data[row_base + (base | off)] = acc;
                }
            }
        }
    }

    /// Applies a unitary: `ρ ← U ρ U†`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match `qubits.len()`.
    pub fn apply_unitary(&mut self, u: &CMatrix, qubits: &[usize]) {
        assert_eq!(u.rows(), 1 << qubits.len(), "gate dimension mismatch");
        self.apply_matrix_rows(u, qubits);
        self.apply_matrix_cols_adjoint(u, qubits);
    }

    /// Applies a channel given by Kraus operators:
    /// `ρ ← Σ_k E_k ρ E_k†`.
    ///
    /// # Panics
    ///
    /// Panics if any operator dimension does not match `qubits.len()`.
    pub fn apply_kraus(&mut self, kraus: &[CMatrix], qubits: &[usize]) {
        let mut acc: Option<DensityMatrix> = None;
        for e in kraus {
            assert_eq!(e.rows(), 1 << qubits.len(), "Kraus dimension mismatch");
            let mut branch = self.clone();
            branch.apply_matrix_rows(e, qubits);
            branch.apply_matrix_cols_adjoint(e, qubits);
            acc = Some(match acc {
                None => branch,
                Some(mut a) => {
                    for (x, y) in a.data.iter_mut().zip(&branch.data) {
                        *x += *y;
                    }
                    a
                }
            });
        }
        *self = acc.expect("at least one Kraus operator");
    }

    /// Applies a classical permutation of sub-basis states on `qubits` to
    /// both indices.
    pub fn apply_permutation(&mut self, table: &[usize], qubits: &[usize]) {
        let k = qubits.len();
        assert_eq!(table.len(), 1 << k, "permutation length mismatch");
        let mut u = CMatrix::zeros(table.len(), table.len());
        for (x, &y) in table.iter().enumerate() {
            u[(y, x)] = C_ONE;
        }
        self.apply_unitary(&u, qubits);
    }

    /// Dephases `qubit` (projects onto the computational basis): the density
    /// matrix semantics of a deferred measurement.
    pub fn dephase(&mut self, qubit: usize) {
        let p = self.bit_pos(qubit);
        for r in 0..self.dim {
            for c in 0..self.dim {
                if (r >> p) & 1 != (c >> p) & 1 {
                    self.data[r * self.dim + c] = C_ZERO;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::{Gate, NoiseChannel, ParamMap};

    fn gate(g: Gate) -> CMatrix {
        g.unitary(&ParamMap::new()).unwrap()
    }

    #[test]
    fn zero_state_is_valid() {
        let rho = DensityMatrix::zero_state(2);
        assert!(rho.trace().approx_eq(C_ONE, 1e-15));
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert_eq!(rho.probabilities()[0], 1.0);
    }

    #[test]
    fn unitary_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_unitary(&gate(Gate::H), &[0]);
        rho.apply_unitary(&gate(Gate::Cnot), &[0, 1]);
        assert!(rho.trace().approx_eq(C_ONE, 1e-12));
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        let p = rho.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matches_paper_equation_3() {
        // Figure 2: H, PD(0.36), CNOT on |00>.
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_unitary(&gate(Gate::H), &[0]);
        let kraus = NoiseChannel::phase_damping(0.36)
            .kraus(&ParamMap::new())
            .unwrap();
        rho.apply_kraus(&kraus, &[0]);
        rho.apply_unitary(&gate(Gate::Cnot), &[0, 1]);
        assert!(rho.entry(0, 0).approx_eq(Complex::real(0.5), 1e-12));
        assert!(rho.entry(0, 3).approx_eq(Complex::real(0.4), 1e-12));
        assert!(rho.entry(3, 0).approx_eq(Complex::real(0.4), 1e-12));
        assert!(rho.entry(3, 3).approx_eq(Complex::real(0.5), 1e-12));
    }

    #[test]
    fn depolarizing_reduces_purity() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_unitary(&gate(Gate::H), &[0]);
        let before = rho.purity();
        let kraus = NoiseChannel::depolarizing(0.2)
            .kraus(&ParamMap::new())
            .unwrap();
        rho.apply_kraus(&kraus, &[0]);
        assert!(rho.purity() < before);
        assert!(rho.trace().approx_eq(C_ONE, 1e-12));
    }

    #[test]
    fn kraus_on_embedded_qubit_matches_reference() {
        use qkc_circuit::reference;
        let mut c = qkc_circuit::Circuit::new(3);
        c.h(0).cnot(0, 2).amplitude_damp(2, 0.4).t(1);
        let want = reference::run_density(&c, &ParamMap::new()).unwrap();

        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_unitary(&gate(Gate::H), &[0]);
        rho.apply_unitary(&gate(Gate::Cnot), &[0, 2]);
        let kraus = NoiseChannel::amplitude_damping(0.4)
            .kraus(&ParamMap::new())
            .unwrap();
        rho.apply_kraus(&kraus, &[2]);
        rho.apply_unitary(&gate(Gate::T), &[1]);

        for r in 0..8 {
            for cc in 0..8 {
                assert!(
                    rho.entry(r, cc).approx_eq(want[(r, cc)], 1e-10),
                    "entry ({r},{cc})"
                );
            }
        }
    }

    #[test]
    fn dephase_kills_coherences() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_unitary(&gate(Gate::H), &[0]);
        rho.dephase(0);
        assert!(rho.entry(0, 1).approx_eq(C_ZERO, 1e-15));
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_pure_is_projector() {
        let s = Complex::real(std::f64::consts::FRAC_1_SQRT_2);
        let rho = DensityMatrix::from_pure(&[s, C_ZERO, C_ZERO, s]);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!(rho.entry(0, 3).approx_eq(Complex::real(0.5), 1e-12));
    }

    #[test]
    fn permutation_acts_on_both_sides() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_unitary(&gate(Gate::H), &[0]);
        rho.apply_permutation(&[0, 2, 1, 3], &[0, 1]); // SWAP
                                                       // H was on qubit 0; after SWAP superposition lives on qubit 1.
        let p = rho.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12 && (p[1] - 0.5).abs() < 1e-12);
    }
}
