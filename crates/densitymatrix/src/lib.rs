//! Density-matrix quantum circuit simulator — the workspace's analogue of
//! Cirq's `DensityMatrixSimulator`, the noisy-circuit baseline in the
//! paper's Figure 9.
//!
//! Mixed states are stored as dense `2^n × 2^n` matrices; gates conjugate
//! the matrix (`UρU†`) and noise applies Kraus sums (`Σ E_k ρ E_k†`).
//! Sampling draws from the final diagonal.
//!
//! # Examples
//!
//! ```
//! use qkc_circuit::{Circuit, ParamMap};
//! use qkc_densitymatrix::DensityMatrixSimulator;
//!
//! // Noisy Bell pair: the paper's running example (Figure 2).
//! let mut c = Circuit::new(2);
//! c.h(0).phase_damp(0, 0.36).cnot(0, 1);
//! let rho = DensityMatrixSimulator::new().run(&c, &ParamMap::new()).unwrap();
//! assert!((rho.entry(0, 3).re - 0.4).abs() < 1e-12); // Equation 3
//! ```

#![forbid(unsafe_code)]

mod density;
mod simulator;

pub use density::DensityMatrix;
pub use simulator::DensityMatrixSimulator;
