//! A fixed-size log-linear histogram over `u64` values with atomic buckets.
//!
//! The layout follows the HdrHistogram idea at its smallest useful
//! configuration: values 0..=3 get exact buckets, and every octave above
//! that is split into [`SUB_BUCKETS`] linear sub-buckets, bounding the
//! relative bucket width at `1 / SUB_BUCKETS` (25%, or 12.5% error when
//! reading from the midpoint). That is
//! plenty for latency and size distributions, costs a fixed 252 words, and
//! needs no allocation or locking on the record path — one `fetch_add` per
//! observation (plus one for the running sum).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power of two.
pub const SUB_BUCKETS: usize = 4;

/// Total bucket count: 4 exact small-value buckets plus 4 sub-buckets for
/// each octave `[2^e, 2^{e+1})`, `e` in `2..=63`.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - 2) * SUB_BUCKETS;

/// Maps a value to its bucket index. Monotone in `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as usize; // >= 2
        (exp - 1) * SUB_BUCKETS + ((value >> (exp - 2)) & (SUB_BUCKETS as u64 - 1)) as usize
    }
}

/// The smallest value that lands in bucket `index`.
#[inline]
pub fn bucket_low(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let exp = index / SUB_BUCKETS + 1;
        let sub = (index % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + sub) << (exp - 2)
    }
}

/// The largest value that lands in bucket `index`.
#[inline]
pub fn bucket_high(index: usize) -> u64 {
    if index + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

/// A lock-free log-linear histogram. The observation count is *derived*
/// from the bucket occupancies (there is no separate count cell), so any
/// snapshot's total always equals the sum of its buckets by construction —
/// the invariant the snapshot tests lean on.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Running sum of raw observed values (wrapping on overflow).
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram: all buckets zero, sum zero.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Two relaxed `fetch_add`s, nothing else.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Reads the occupied buckets as `(low, high, count)` triples, in value
    /// order, along with the derived total count and the running sum.
    pub fn read(&self) -> (Vec<(u64, u64, u64)>, u64, u64) {
        let mut out = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                out.push((bucket_low(i), bucket_high(i), n));
                count += n;
            }
        }
        (out, count, self.sum.load(Ordering::Relaxed))
    }

    /// Clears every bucket and the running sum.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_monotone_and_consistent_with_bounds() {
        let mut prev = 0usize;
        // Sweep a mix of exact small values and exponentially spaced ones.
        let mut probes: Vec<u64> = (0..64).collect();
        for e in 6..63 {
            for off in [0u64, 1, (1 << e) / 3, (1 << e) - 1] {
                probes.push((1u64 << e) + off);
            }
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        for v in probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(i >= prev, "index not monotone at {v}");
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "value {v} outside bucket {i}: [{}, {}]",
                bucket_low(i),
                bucket_high(i)
            );
            prev = i;
        }
    }

    #[test]
    fn bucket_bounds_tile_the_u64_line() {
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                bucket_high(i) + 1,
                bucket_low(i + 1),
                "gap after bucket {i}"
            );
        }
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 1_000, 50_000, 1 << 30, 1 << 50] {
            let i = bucket_index(v);
            let width = (bucket_high(i) - bucket_low(i)) as f64;
            assert!(
                width / v as f64 <= 0.25 + 1e-12,
                "bucket width {width} too wide for {v}"
            );
        }
    }

    #[test]
    fn count_is_derived_from_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 100, 100, 1 << 40] {
            h.record(v);
        }
        let (buckets, count, sum) = h.read();
        assert_eq!(count, 8);
        assert_eq!(sum, 1 + 2 + 3 + 4 + 100 + 100 + (1u64 << 40));
        assert_eq!(count, buckets.iter().map(|&(_, _, n)| n).sum::<u64>());
        h.reset();
        let (buckets, count, sum) = h.read();
        assert!(buckets.is_empty());
        assert_eq!((count, sum), (0, 0));
    }
}
