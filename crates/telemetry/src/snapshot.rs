//! Point-in-time telemetry snapshots and their two exporters: a
//! human-readable tree report and an appendable single-line JSONL record.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// One bucket of a snapshotted histogram: every observation in
/// `low..=high`, `count` of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Smallest value this bucket admits.
    pub low: u64,
    /// Largest value this bucket admits (inclusive).
    pub high: u64,
    /// Observations that landed in `low..=high`.
    pub count: u64,
}

/// A snapshotted histogram (span latencies in nanoseconds, or sizes in the
/// unit the recording site chose — bytes unless the path says otherwise).
///
/// `count` is derived from the bucket occupancies at read time, so
/// `count == buckets.iter().map(|b| b.count).sum()` holds for every
/// snapshot, even one taken mid-flight.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStats {
    /// The `/`-separated metric path this histogram was recorded under.
    pub path: String,
    /// Total observations across all buckets.
    pub count: u64,
    /// Sum of raw observed values (wrapping on overflow).
    pub sum: u64,
    /// Occupied buckets only, in value order.
    pub buckets: Vec<Bucket>,
}

impl HistogramStats {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower-bound estimate of the `q`-quantile (`0.0..=1.0`) from the
    /// bucket boundaries; exact to the histogram's 12.5% resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.low;
            }
        }
        self.buckets.last().map_or(0, |b| b.low)
    }
}

/// A monotone counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStats {
    /// The `/`-separated metric path this counter was recorded under.
    pub path: String,
    /// The counter's value at snapshot time.
    pub value: u64,
}

/// Everything the global recorder has accumulated, read at one point in
/// time. Paths within each family are sorted and unique.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Span latency histograms, values in nanoseconds.
    pub spans: Vec<HistogramStats>,
    /// Monotone counters.
    pub counters: Vec<CounterStats>,
    /// Size/value histograms.
    pub sizes: Vec<HistogramStats>,
}

impl Snapshot {
    /// The span-latency histogram recorded under exactly `path`, if any.
    pub fn span(&self, path: &str) -> Option<&HistogramStats> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The counter value recorded under exactly `path`, if any.
    pub fn counter(&self, path: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.path == path)
            .map(|c| c.value)
    }

    /// The size histogram recorded under exactly `path`, if any.
    pub fn size(&self, path: &str) -> Option<&HistogramStats> {
        self.sizes.iter().find(|s| s.path == path)
    }

    /// Total span observations whose path starts with `prefix` (segment
    /// aligned: `"compile"` matches `compile/order` but not `compiler/x`).
    pub fn span_count_under(&self, prefix: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| path_has_prefix(&s.path, prefix))
            .map(|s| s.count)
            .sum()
    }

    /// Sum of counters whose path starts with `prefix` (segment aligned).
    pub fn counter_total_under(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| path_has_prefix(&c.path, prefix))
            .map(|c| c.value)
            .sum()
    }

    /// True if any span, counter, or size under `prefix` recorded data.
    pub fn has_data_under(&self, prefix: &str) -> bool {
        self.span_count_under(prefix) > 0
            || self.counter_total_under(prefix) > 0
            || self
                .sizes
                .iter()
                .any(|s| path_has_prefix(&s.path, prefix) && s.count > 0)
    }

    /// Renders the snapshot as an indented tree keyed by `/`-separated
    /// path segments, with one metric line per leaf.
    pub fn render_tree(&self) -> String {
        #[derive(Default)]
        struct Node {
            children: BTreeMap<String, Node>,
            line: Option<String>,
        }
        fn insert(root: &mut Node, path: &str, line: String) {
            let mut node = root;
            for seg in path.split('/') {
                node = node.children.entry(seg.to_string()).or_default();
            }
            node.line = Some(line);
        }
        let mut root = Node::default();
        for s in &self.spans {
            insert(
                &mut root,
                &s.path,
                format!(
                    "span     n={:<8} total {:<10} mean {:<10} p50 {:<10} p99 {}",
                    s.count,
                    fmt_nanos(s.sum),
                    fmt_nanos(s.mean() as u64),
                    fmt_nanos(s.quantile(0.50)),
                    fmt_nanos(s.quantile(0.99)),
                ),
            );
        }
        for c in &self.counters {
            insert(&mut root, &c.path, format!("counter  {}", c.value));
        }
        for s in &self.sizes {
            insert(
                &mut root,
                &s.path,
                format!(
                    "size     n={:<8} sum {:<12} mean {:<12} p99 {}",
                    s.count,
                    s.sum,
                    s.mean() as u64,
                    s.quantile(0.99),
                ),
            );
        }
        fn render(node: &Node, name: &str, depth: usize, out: &mut String) {
            if depth > 0 {
                let pad = "  ".repeat(depth - 1);
                match &node.line {
                    Some(line) => {
                        out.push_str(&format!(
                            "{pad}{name:<width$} {line}\n",
                            width = 24usize.saturating_sub(pad.len())
                        ));
                    }
                    None => out.push_str(&format!("{pad}{name}\n")),
                }
            }
            for (child_name, child) in &node.children {
                render(child, child_name, depth + 1, out);
            }
        }
        let mut out = String::from("telemetry snapshot\n");
        render(&root, "", 0, &mut out);
        // Lane-occupancy footer: the batched kernels hold weights in
        // lane-blocked planes, so a batch of `k` lanes pads its last block
        // with `remainder_lanes` dead lanes that still burn SIMD work.
        // `width / (width + remainder)` is the fraction of each blocked
        // sweep that computed a live lane.
        let width = self.counter("kernel/batch/width").unwrap_or(0);
        let rem = self.counter("kernel/batch/remainder_lanes").unwrap_or(0);
        if width > 0 {
            let occupancy = 100.0 * width as f64 / (width + rem) as f64;
            out.push_str(&format!(
                "lane occupancy {occupancy:.1}% ({width} live lanes, {rem} dead remainder lanes)\n"
            ));
        }
        out
    }

    /// Serializes the snapshot as one JSON object on one line — the same
    /// appendable spirit as the `BENCH_*.json` files.
    pub fn to_json_line(&self) -> String {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut s = format!("{{\"telemetry\":1,\"unix_time\":{unix_time},\"spans\":[");
        for (i, sp) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":\"{}\",\"count\":{},\"total_nanos\":{},\"p50_nanos\":{},\"p99_nanos\":{}}}",
                escape(&sp.path),
                sp.count,
                sp.sum,
                sp.quantile(0.50),
                sp.quantile(0.99),
            ));
        }
        s.push_str("],\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":\"{}\",\"value\":{}}}",
                escape(&c.path),
                c.value
            ));
        }
        s.push_str("],\"sizes\":[");
        for (i, sz) in self.sizes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":\"{}\",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}}}",
                escape(&sz.path),
                sz.count,
                sz.sum,
                sz.quantile(0.50),
                sz.quantile(0.99),
            ));
        }
        s.push_str("]}");
        s
    }

    /// Appends [`Self::to_json_line`] plus a newline to `path`, creating
    /// the file if needed.
    pub fn append_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json_line())
    }
}

/// Segment-aligned prefix test: `compile` covers `compile` and
/// `compile/order/mincut` but not `compiler`.
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a nanosecond quantity with an adaptive unit.
pub fn fmt_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", n / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", n / 1e6)
    } else {
        format!("{:.2}s", n / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(path: &str, buckets: Vec<(u64, u64, u64)>) -> HistogramStats {
        let count = buckets.iter().map(|&(_, _, n)| n).sum();
        let sum = buckets.iter().map(|&(lo, _, n)| lo * n).sum();
        HistogramStats {
            path: path.to_string(),
            count,
            sum,
            buckets: buckets
                .into_iter()
                .map(|(low, high, count)| Bucket { low, high, count })
                .collect(),
        }
    }

    #[test]
    fn prefix_matching_is_segment_aligned() {
        assert!(path_has_prefix("compile/order/mincut", "compile"));
        assert!(path_has_prefix("compile", "compile"));
        assert!(!path_has_prefix("compiler/x", "compile"));
        assert!(!path_has_prefix("compile", "compile/order"));
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = hist("t", vec![(0, 3, 50), (4, 7, 40), (8, 9, 10)]);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.51), 4);
        assert_eq!(h.quantile(0.99), 8);
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn json_line_is_one_line_and_balanced() {
        let snap = Snapshot {
            spans: vec![hist("a/b", vec![(4, 7, 2)])],
            counters: vec![CounterStats {
                path: "c".into(),
                value: 9,
            }],
            sizes: vec![],
        };
        let line = snap.to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"telemetry\":1,"));
        assert!(line.ends_with("]}"));
        assert!(line.contains("\"path\":\"a/b\""));
        assert!(line.contains("\"value\":9"));
    }

    #[test]
    fn tree_render_groups_by_segment() {
        let snap = Snapshot {
            spans: vec![hist("cache/rehydrate/read", vec![(4, 7, 1)])],
            counters: vec![CounterStats {
                path: "cache/hit".into(),
                value: 3,
            }],
            sizes: vec![],
        };
        let tree = snap.render_tree();
        let cache_lines: Vec<&str> = tree.lines().filter(|l| l.contains("cache")).collect();
        assert_eq!(
            cache_lines.len(),
            1,
            "cache appears once as a group:\n{tree}"
        );
        assert!(tree.contains("hit"));
        assert!(tree.contains("rehydrate"));
        assert!(
            !tree.contains("lane occupancy"),
            "no occupancy note without batch counters:\n{tree}"
        );
    }

    #[test]
    fn tree_render_notes_lane_occupancy_from_batch_counters() {
        let snap = Snapshot {
            spans: vec![],
            counters: vec![
                CounterStats {
                    path: "kernel/batch/width".into(),
                    value: 21,
                },
                CounterStats {
                    path: "kernel/batch/remainder_lanes".into(),
                    value: 3,
                },
            ],
            sizes: vec![],
        };
        let tree = snap.render_tree();
        // 21 live of 24 swept lanes = 87.5%.
        assert!(
            tree.contains("lane occupancy 87.5% (21 live lanes, 3 dead remainder lanes)"),
            "occupancy footer missing or wrong:\n{tree}"
        );
    }
}
