//! `qkc-telemetry` — zero-dependency, std-only instrumentation for the QKC
//! stack: hierarchical span timers, monotone counters, and log-linear
//! latency/size histograms behind a [`Recorder`] trait with a global
//! in-process registry.
//!
//! # The overhead contract
//!
//! Telemetry is **disabled by default**, and while disabled every
//! instrumentation site costs exactly one relaxed atomic load — no clock
//! read, no lock, no allocation, and no change to any computed result.
//! Enabling it ([`set_enabled`]) turns the same sites into real
//! measurements: spans read the monotonic clock twice and record into an
//! atomic histogram; counters and sizes do one or two relaxed
//! `fetch_add`s behind a short registry lookup. Nothing on either path
//! touches the numerical code, so results stay byte-identical with
//! telemetry on or off (`tests/telemetry.rs` asserts this across thread
//! counts and batch widths, and `sweep_throughput` gates the disabled-path
//! overhead at 2%).
//!
//! # Phase paths
//!
//! Sites identify themselves with static `/`-separated paths, grouped by
//! subsystem: `compile/order`, `cache/rehydrate/read`,
//! `sweep/worker/chunk`, `gradient/scan`, `planner/chosen/kc`. Paths are
//! `&'static str` so the disabled path allocates nothing and the registry
//! can key on pointer-stable names.
//!
//! # Example
//!
//! ```
//! qkc_telemetry::set_enabled(true);
//! {
//!     let _span = qkc_telemetry::span("demo/work");
//!     qkc_telemetry::count("demo/items", 3);
//! }
//! let snap = qkc_telemetry::snapshot();
//! assert_eq!(snap.counter("demo/items"), Some(3));
//! assert_eq!(snap.span("demo/work").unwrap().count, 1);
//! qkc_telemetry::set_enabled(false);
//! qkc_telemetry::reset();
//! ```

#![forbid(unsafe_code)]

mod histogram;
mod snapshot;

pub use histogram::{bucket_high, bucket_index, bucket_low, Histogram, NUM_BUCKETS, SUB_BUCKETS};
pub use snapshot::{fmt_nanos, path_has_prefix, Bucket, CounterStats, HistogramStats, Snapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The global on/off switch. Relaxed is sufficient: the flag only gates
/// *whether* to measure, never the correctness of what is measured.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when instrumentation sites should record. One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide; returns the previous state.
/// Also honored at startup by anything calling [`init_from_env`].
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::Relaxed)
}

/// Enables telemetry if the `QKC_TELEMETRY` environment variable is set to
/// anything other than `0` or the empty string. Returns the resulting state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("QKC_TELEMETRY") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
    enabled()
}

/// The sink interface: spans, counters, and size histograms keyed by
/// static paths. The global registry implements it; tests can substitute
/// their own to capture records directly.
pub trait Recorder: Send + Sync {
    /// Records one span completion of `nanos` under `path`.
    fn record_span_nanos(&self, path: &'static str, nanos: u64);
    /// Adds `delta` to the monotone counter at `path`.
    fn add_counter(&self, path: &'static str, delta: u64);
    /// Records one size/value observation under `path`.
    fn record_size(&self, path: &'static str, value: u64);
    /// Reads everything recorded so far.
    fn snapshot(&self) -> Snapshot;
    /// Zeroes all metrics (for tests and benches).
    fn reset(&self);
}

/// The in-process metric store: three path-keyed families, each behind its
/// own short-held mutex that guards only the name→metric map — the metrics
/// themselves are atomic, so recording after the first lookup never blocks
/// a concurrent reader or writer of a different path.
#[derive(Default)]
pub struct Registry {
    spans: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    sizes: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry with no metrics recorded.
    pub fn new() -> Self {
        Self::default()
    }

    fn span_hist(&self, path: &'static str) -> Arc<Histogram> {
        debug_assert!(path_is_well_formed(path), "bad span path: {path:?}");
        Arc::clone(
            self.spans
                .lock()
                .unwrap()
                .entry(path)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    fn size_hist(&self, path: &'static str) -> Arc<Histogram> {
        debug_assert!(path_is_well_formed(path), "bad size path: {path:?}");
        Arc::clone(
            self.sizes
                .lock()
                .unwrap()
                .entry(path)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    fn counter_cell(&self, path: &'static str) -> Arc<AtomicU64> {
        debug_assert!(path_is_well_formed(path), "bad counter path: {path:?}");
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(path)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }
}

impl Recorder for Registry {
    fn record_span_nanos(&self, path: &'static str, nanos: u64) {
        self.span_hist(path).record(nanos);
    }

    fn add_counter(&self, path: &'static str, delta: u64) {
        self.counter_cell(path).fetch_add(delta, Ordering::Relaxed);
    }

    fn record_size(&self, path: &'static str, value: u64) {
        self.size_hist(path).record(value);
    }

    fn snapshot(&self) -> Snapshot {
        let read_family = |m: &Mutex<BTreeMap<&'static str, Arc<Histogram>>>| {
            let hists: Vec<(&'static str, Arc<Histogram>)> = m
                .lock()
                .unwrap()
                .iter()
                .map(|(&p, h)| (p, Arc::clone(h)))
                .collect();
            hists
                .into_iter()
                .map(|(path, h)| {
                    let (raw, count, sum) = h.read();
                    HistogramStats {
                        path: path.to_string(),
                        count,
                        sum,
                        buckets: raw
                            .into_iter()
                            .map(|(low, high, count)| Bucket { low, high, count })
                            .collect(),
                    }
                })
                .collect::<Vec<_>>()
        };
        let counters = {
            let cells: Vec<(&'static str, Arc<AtomicU64>)> = self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(&p, c)| (p, Arc::clone(c)))
                .collect();
            cells
                .into_iter()
                .map(|(path, c)| CounterStats {
                    path: path.to_string(),
                    value: c.load(Ordering::Relaxed),
                })
                .collect()
        };
        Snapshot {
            spans: read_family(&self.spans),
            counters,
            sizes: read_family(&self.sizes),
        }
    }

    fn reset(&self) {
        for h in self.spans.lock().unwrap().values() {
            h.reset();
        }
        for c in self.counters.lock().unwrap().values() {
            c.store(0, Ordering::Relaxed);
        }
        for h in self.sizes.lock().unwrap().values() {
            h.reset();
        }
    }
}

/// The process-wide registry every free function below records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// An RAII span timer. When telemetry is disabled the guard is inert: no
/// clock read on entry, a `None` check on drop. Drop it (or let it fall
/// out of scope) to record the elapsed time under its path.
#[must_use = "a span records on drop; binding it to _ discards the measurement immediately"]
pub struct SpanGuard {
    path: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// An inert guard that records nothing (used on the disabled path).
    pub fn inert(path: &'static str) -> Self {
        Self { path, start: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            global().record_span_nanos(self.path, nanos);
        }
    }
}

/// Starts a span at `path`. One relaxed load when disabled.
#[inline]
pub fn span(path: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard {
            path,
            start: Some(Instant::now()),
        }
    } else {
        SpanGuard::inert(path)
    }
}

/// Records an externally measured duration as one span completion at
/// `path` — for sites that already time themselves (e.g. the compile
/// pipeline, which persists its phase times into `PipelineMetrics`).
#[inline]
pub fn record_span_secs(path: &'static str, secs: f64) {
    if enabled() {
        let nanos = if secs <= 0.0 { 0.0 } else { secs * 1e9 };
        global().record_span_nanos(path, nanos as u64);
    }
}

/// Adds `delta` to the counter at `path`. One relaxed load when disabled.
#[inline]
pub fn count(path: &'static str, delta: u64) {
    if enabled() {
        global().add_counter(path, delta);
    }
}

/// Records a size/value observation at `path`. One relaxed load when
/// disabled.
#[inline]
pub fn record_size(path: &'static str, value: u64) {
    if enabled() {
        global().record_size(path, value);
    }
}

/// Snapshots the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Zeroes every metric in the global registry.
pub fn reset() {
    global().reset();
}

/// A well-formed path is non-empty `/`-separated segments with no leading,
/// trailing, or doubled slash.
pub fn path_is_well_formed(path: &str) -> bool {
    !path.is_empty() && path.split('/').all(|seg| !seg.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global enable flag is process-wide; serialize tests that flip it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _s = span("test/disabled/span");
            count("test/disabled/counter", 5);
            record_size("test/disabled/size", 100);
            record_span_secs("test/disabled/secs", 1.0);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("test/disabled/counter"), None);
        assert!(snap.span("test/disabled/span").is_none());
        assert!(snap.size("test/disabled/size").is_none());
    }

    #[test]
    fn enabled_sites_record_and_reset_clears() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _s = span("test/enabled/span");
            count("test/enabled/counter", 2);
            count("test/enabled/counter", 3);
            record_size("test/enabled/size", 4096);
            record_span_secs("test/enabled/secs", 0.001);
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("test/enabled/counter"), Some(5));
        let sp = snap.span("test/enabled/span").expect("span recorded");
        assert_eq!(sp.count, 1);
        let secs = snap.span("test/enabled/secs").expect("secs recorded");
        // 1ms recorded via record_span_secs lands within histogram error.
        assert!(
            (secs.mean() - 1e6).abs() / 1e6 < 0.2,
            "mean {}",
            secs.mean()
        );
        assert_eq!(snap.size("test/enabled/size").unwrap().count, 1);
        reset();
        let clean = snapshot();
        assert_eq!(clean.counter("test/enabled/counter"), Some(0));
        assert_eq!(clean.span("test/enabled/span").unwrap().count, 0);
    }

    #[test]
    fn concurrent_recording_keeps_totals_consistent() {
        let _g = lock();
        set_enabled(true);
        reset();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for i in 0..1000u64 {
                        count("test/concurrent/counter", 1);
                        record_size("test/concurrent/size", i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("test/concurrent/counter"), Some(4000));
        let sz = snap.size("test/concurrent/size").unwrap();
        assert_eq!(sz.count, 4000);
        assert_eq!(
            sz.count,
            sz.buckets.iter().map(|b| b.count).sum::<u64>(),
            "derived count must equal the bucket sum"
        );
        reset();
    }

    #[test]
    fn path_well_formedness() {
        assert!(path_is_well_formed("a"));
        assert!(path_is_well_formed("a/b/c"));
        assert!(!path_is_well_formed(""));
        assert!(!path_is_well_formed("/a"));
        assert!(!path_is_well_formed("a/"));
        assert!(!path_is_well_formed("a//b"));
    }

    #[test]
    fn init_from_env_respects_zero() {
        let _g = lock();
        set_enabled(false);
        std::env::set_var("QKC_TELEMETRY", "0");
        assert!(!init_from_env());
        std::env::set_var("QKC_TELEMETRY", "1");
        assert!(init_from_env());
        set_enabled(false);
        std::env::remove_var("QKC_TELEMETRY");
    }
}
