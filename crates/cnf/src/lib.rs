//! Bayesian-network-to-CNF encoding — stage 2 of the paper's toolchain
//! (Figure 4, §3.2.1).
//!
//! The encoder separates a quantum circuit's *structure* (which qubit-state
//! combinations are consistent with its semantics — the satisfying
//! assignments) from its *numerical parameters* (amplitudes and noise
//! probabilities — weights on parameter variables, resolved at evaluation
//! time). Unit-resolution simplification then folds known initial values
//! through deterministic tables, shrinking everything downstream.
//!
//! # Examples
//!
//! ```
//! use qkc_circuit::Circuit;
//! use qkc_bayesnet::BayesNet;
//! use qkc_cnf::{encode, simplify};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).phase_damp(0, 0.36).cnot(0, 1);
//! let enc = encode(&BayesNet::from_circuit(&c));
//! let simplified = simplify(&enc.cnf).unwrap();
//! assert!(simplified.cnf.num_clauses() < enc.cnf.num_clauses());
//! // Initial qubit states are unit-resolved away.
//! assert_eq!(simplified.fixed.get(&1), Some(&false));
//! ```

#![forbid(unsafe_code)]

mod encode;
mod formula;
mod simplify;

pub use encode::{encode, Encoding, VarKind, VarMap};
pub use formula::{lit_sign, lit_var, Cnf, Lit};
pub use simplify::{simplify, Simplified, SimplifyError};
