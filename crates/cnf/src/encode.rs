//! Encoding Bayesian networks as CNF with weighted-model-counting semantics
//! (paper §3.2.1, Table 3).
//!
//! * Binary nodes use one Boolean variable; `d`-valued nodes use `d`
//!   indicator variables plus exactly-one constraints.
//! * Deterministic CAT cells are factored directly into logic: amplitude-0
//!   cells become blocking clauses, amplitude-1 cells need nothing.
//! * Every other cell gets a *parameter variable* `P` with the biconditional
//!   `P ⟺ (parents-assignment ∧ child-value)`. Parameter variables stand in
//!   for numerical amplitudes that the simulator resolves at evaluation time
//!   — the separation of structure from parameters that makes repeated
//!   variational simulation cheap.
//!
//! Correctness contract: summing, over all satisfying assignments consistent
//! with evidence, the product of weights of the *true* parameter variables
//! equals the Bayesian network's evidence amplitude. The paper's caveat
//! (§3.2.1) applies here too: simplifications that assume weights sum to 1
//! are unsound for amplitudes, so none are used.

use crate::formula::{Cnf, Lit};
use qkc_bayesnet::{BayesNet, CatEntry, NodeId};

/// Where each CNF variable came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarKind {
    /// The single Boolean of a binary node (true ⇔ value 1).
    NodeBinary {
        /// The BN node.
        node: NodeId,
    },
    /// Indicator `λ_{node=value}` of a multi-valued node.
    NodeIndicator {
        /// The BN node.
        node: NodeId,
        /// The indicated value.
        value: usize,
    },
    /// A parameter (weight) variable for one CAT cell.
    Param {
        /// The BN node owning the CAT.
        node: NodeId,
        /// The node's weight-slot index.
        slot: usize,
    },
}

/// Variable layout of an encoded network.
#[derive(Debug, Clone)]
pub struct VarMap {
    /// For each node: its variable ids (length 1 for binary, `d` for
    /// multi-valued).
    node_vars: Vec<Vec<u32>>,
    /// Whether each node is binary-encoded.
    binary: Vec<bool>,
    /// For each node: param variable of each weight slot (0 = none).
    param_vars: Vec<Vec<u32>>,
    /// Kind of every variable (index `v - 1`).
    kinds: Vec<VarKind>,
}

impl VarMap {
    /// Total number of variables.
    pub fn num_vars(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of variable `v` (1-based).
    pub fn kind(&self, v: u32) -> &VarKind {
        &self.kinds[(v - 1) as usize]
    }

    /// The literal asserting `node = value`.
    pub fn value_lit(&self, node: NodeId, value: usize) -> Lit {
        if self.binary[node] {
            let v = self.node_vars[node][0] as Lit;
            if value == 1 {
                v
            } else {
                -v
            }
        } else {
            self.node_vars[node][value] as Lit
        }
    }

    /// The literal asserting `node ≠ value` (sound under exactly-one for
    /// indicator groups).
    pub fn not_value_lit(&self, node: NodeId, value: usize) -> Lit {
        -self.value_lit(node, value)
    }

    /// The variables carrying a node's value (1 for binary, `d` otherwise).
    pub fn node_vars(&self, node: NodeId) -> &[u32] {
        &self.node_vars[node]
    }

    /// Whether `node` uses the single-Boolean encoding.
    pub fn is_binary(&self, node: NodeId) -> bool {
        self.binary[node]
    }

    /// The parameter variable of `(node, slot)`, if that slot is used.
    pub fn param_var(&self, node: NodeId, slot: usize) -> Option<u32> {
        match self.param_vars[node].get(slot) {
            Some(&0) | None => None,
            Some(&v) => Some(v),
        }
    }

    /// Iterates all `(var, node, slot)` parameter variables.
    pub fn params(&self) -> impl Iterator<Item = (u32, NodeId, usize)> + '_ {
        self.kinds.iter().enumerate().filter_map(|(i, k)| match k {
            VarKind::Param { node, slot } => Some((i as u32 + 1, *node, *slot)),
            _ => None,
        })
    }
}

/// The result of encoding: the formula plus the variable layout.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// The CNF formula.
    pub cnf: Cnf,
    /// Variable provenance.
    pub vars: VarMap,
}

/// Encodes a Bayesian network into CNF.
///
/// # Examples
///
/// ```
/// use qkc_circuit::Circuit;
/// use qkc_bayesnet::BayesNet;
/// use qkc_cnf::encode;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// let enc = encode(&BayesNet::from_circuit(&c));
/// assert!(enc.cnf.num_clauses() > 0);
/// ```
pub fn encode(bn: &BayesNet) -> Encoding {
    let mut kinds: Vec<VarKind> = Vec::new();
    let mut fresh = |kind: VarKind| -> u32 {
        kinds.push(kind);
        kinds.len() as u32
    };
    let mut node_vars: Vec<Vec<u32>> = Vec::with_capacity(bn.num_nodes());
    let mut binary: Vec<bool> = Vec::with_capacity(bn.num_nodes());
    for (id, node) in bn.nodes().iter().enumerate() {
        if node.domain == 2 {
            node_vars.push(vec![fresh(VarKind::NodeBinary { node: id })]);
            binary.push(true);
        } else {
            node_vars.push(
                (0..node.domain)
                    .map(|value| fresh(VarKind::NodeIndicator { node: id, value }))
                    .collect(),
            );
            binary.push(false);
        }
    }
    let mut param_vars: Vec<Vec<u32>> = Vec::with_capacity(bn.num_nodes());
    for (id, node) in bn.nodes().iter().enumerate() {
        param_vars.push(
            (0..node.weights.len())
                .map(|slot| fresh(VarKind::Param { node: id, slot }))
                .collect(),
        );
    }
    let vars = VarMap {
        node_vars,
        binary,
        param_vars,
        kinds,
    };

    let mut cnf = Cnf::new(vars.num_vars());
    // Exactly-one constraints for indicator groups.
    for (id, node) in bn.nodes().iter().enumerate() {
        if !vars.is_binary(id) {
            let group: Vec<Lit> = vars.node_vars(id).iter().map(|&v| v as Lit).collect();
            cnf.add_clause(group.clone()); // at least one
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    cnf.add_clause(vec![-group[i], -group[j]]); // at most one
                }
            }
        }
        // CAT clauses.
        let parent_domains: Vec<usize> = node.parents.iter().map(|&p| bn.node(p).domain).collect();
        let rows: usize = parent_domains.iter().product::<usize>().max(1);
        for row in 0..rows {
            // Decode mixed-radix row into parent values (first parent most
            // significant).
            let mut parent_values = vec![0usize; node.parents.len()];
            let mut rem = row;
            for i in (0..node.parents.len()).rev() {
                parent_values[i] = rem % parent_domains[i];
                rem /= parent_domains[i];
            }
            for value in 0..node.domain {
                let mut cond: Vec<Lit> = node
                    .parents
                    .iter()
                    .zip(&parent_values)
                    .map(|(&p, &pv)| vars.value_lit(p, pv))
                    .collect();
                cond.push(vars.value_lit(id, value));
                match node.entry(row, value) {
                    CatEntry::One => {}
                    CatEntry::Zero => {
                        cnf.add_clause(cond.iter().map(|&l| -l).collect());
                    }
                    CatEntry::Weight(slot) => {
                        let p = vars
                            .param_var(id, slot)
                            .expect("weight slot has a parameter variable")
                            as Lit;
                        // cond ⟹ P
                        let mut fwd: Vec<Lit> = cond.iter().map(|&l| -l).collect();
                        fwd.push(p);
                        cnf.add_clause(fwd);
                        // P ⟹ each literal of cond
                        for &l in &cond {
                            cnf.add_clause(vec![-p, l]);
                        }
                    }
                }
            }
        }
    }
    Encoding { cnf, vars }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::{Circuit, ParamMap};
    use qkc_math::{Complex, C_ONE, C_ZERO};

    /// Brute-force weighted model count over all CNF assignments: the
    /// ground-truth semantics the knowledge compiler must preserve.
    pub fn wmc_enumerate(
        enc: &Encoding,
        bn: &BayesNet,
        weights: &qkc_bayesnet::WeightTable,
        evidence: &[(NodeId, usize)],
    ) -> Complex {
        let n = enc.cnf.num_vars();
        assert!(n <= 22, "enumeration oracle limited to small formulas");
        let mut total = C_ZERO;
        for mask in 0..1u64 << n {
            let assignment: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            if !enc.cnf.is_satisfied_by(&assignment) {
                continue;
            }
            // Evidence filter.
            let ok = evidence.iter().all(|&(node, value)| {
                let l = enc.vars.value_lit(node, value);
                assignment[(l.unsigned_abs() - 1) as usize] == (l > 0)
            });
            if !ok {
                continue;
            }
            let mut w = C_ONE;
            for (v, node, slot) in enc.vars.params() {
                if assignment[(v - 1) as usize] {
                    w *= weights.value(node, slot);
                }
            }
            total += w;
        }
        let _ = bn;
        total
    }

    fn check_against_brute_force(c: &Circuit, params: &ParamMap) {
        let bn = BayesNet::from_circuit(c);
        let enc = encode(&bn);
        let table = bn.evaluate_weights(params).unwrap();
        let query = bn.query_nodes();
        // Iterate a few query assignments (all, if small).
        let domains: Vec<usize> = query.iter().map(|&q| bn.node(q).domain).collect();
        let combos: usize = domains.iter().product();
        for idx in 0..combos {
            let mut rem = idx;
            let mut values = Vec::with_capacity(query.len());
            for &d in domains.iter().rev() {
                values.push(rem % d);
                rem /= d;
            }
            values.reverse();
            let evidence: Vec<(NodeId, usize)> =
                query.iter().copied().zip(values.iter().copied()).collect();
            let want = bn.amplitude_brute_force(&values, &table);
            let got = wmc_enumerate(&enc, &bn, &table, &evidence);
            assert!(
                got.approx_eq(want, 1e-9),
                "query {values:?}: WMC {got} vs BN {want}"
            );
        }
    }

    #[test]
    fn wmc_matches_bn_for_noisy_bell() {
        let mut c = Circuit::new(2);
        c.h(0).phase_damp(0, 0.36).cnot(0, 1);
        check_against_brute_force(&c, &ParamMap::new());
    }

    #[test]
    fn wmc_matches_bn_for_parameterized_circuit() {
        let mut c = Circuit::new(2);
        c.rx(0, qkc_circuit::Param::symbol("a"))
            .zz(0, 1, qkc_circuit::Param::symbol("b"))
            .h(1);
        check_against_brute_force(&c, &ParamMap::from_pairs([("a", 0.7), ("b", 1.9)]));
    }

    #[test]
    fn wmc_matches_bn_with_amplitude_damping() {
        let mut c = Circuit::new(1);
        c.h(0).amplitude_damp(0, 0.4).t(0);
        check_against_brute_force(&c, &ParamMap::new());
    }

    #[test]
    fn wmc_matches_bn_with_depolarizing_indicators() {
        // Exercises multi-valued (4-branch) selector indicators.
        let mut c = Circuit::new(1);
        c.h(0).depolarize(0, 0.3);
        check_against_brute_force(&c, &ParamMap::new());
    }

    #[test]
    fn clause_counts_for_bell_are_small() {
        let mut c = Circuit::new(2);
        c.h(0).phase_damp(0, 0.36).cnot(0, 1);
        let bn = BayesNet::from_circuit(&c);
        let enc = encode(&bn);
        // 5 binary nodes + 6 params (4 H + 2 PD) = 11 vars.
        assert_eq!(enc.cnf.num_vars(), 11);
        assert!(enc.cnf.num_clauses() < 40);
    }

    #[test]
    fn var_kinds_are_consistent() {
        let mut c = Circuit::new(1);
        c.h(0).depolarize(0, 0.1);
        let bn = BayesNet::from_circuit(&c);
        let enc = encode(&bn);
        let mut saw_indicator = false;
        for v in 1..=enc.cnf.num_vars() as u32 {
            match enc.vars.kind(v) {
                VarKind::NodeIndicator { node, value } => {
                    saw_indicator = true;
                    assert_eq!(enc.vars.value_lit(*node, *value), v as Lit);
                }
                VarKind::NodeBinary { node } => {
                    assert_eq!(enc.vars.value_lit(*node, 1), v as Lit);
                    assert_eq!(enc.vars.value_lit(*node, 0), -(v as Lit));
                }
                VarKind::Param { node, slot } => {
                    assert_eq!(enc.vars.param_var(*node, *slot), Some(v));
                }
            }
        }
        assert!(saw_indicator, "depolarizing selector should use indicators");
    }
}
