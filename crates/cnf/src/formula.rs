//! CNF formulas with DIMACS-compatible literals.

use std::fmt;

/// A literal: DIMACS convention, `±v` with 1-based variable `v`.
pub type Lit = i32;

/// The variable of a literal.
#[inline]
pub fn lit_var(l: Lit) -> u32 {
    l.unsigned_abs()
}

/// `true` if the literal is positive.
#[inline]
pub fn lit_sign(l: Lit) -> bool {
    l > 0
}

/// A formula in conjunctive normal form.
///
/// # Examples
///
/// ```
/// use qkc_cnf::Cnf;
///
/// let mut f = Cnf::new(2);
/// f.add_clause(vec![1, 2]);
/// f.add_clause(vec![-1, 2]);
/// assert_eq!(f.num_clauses(), 2);
/// assert!(f.to_dimacs().starts_with("p cnf 2 2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Appends a clause.
    ///
    /// # Panics
    ///
    /// Panics if the clause is empty or mentions an out-of-range variable.
    pub fn add_clause(&mut self, clause: Vec<Lit>) {
        assert!(!clause.is_empty(), "empty clause makes the formula UNSAT");
        for &l in &clause {
            let v = lit_var(l) as usize;
            assert!(
                l != 0 && v >= 1 && v <= self.num_vars,
                "literal {l} out of range for {} variables",
                self.num_vars
            );
        }
        self.clauses.push(clause);
    }

    /// Serializes in DIMACS CNF format (the interchange format the paper's
    /// toolchain feeds to the c2d knowledge compiler).
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for &l in c {
                out.push_str(&l.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses DIMACS CNF text.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line.
    pub fn from_dimacs(text: &str) -> Result<Self, String> {
        let mut cnf: Option<Cnf> = None;
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("p cnf") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 2 {
                    return Err(format!("malformed problem line: {line}"));
                }
                let nv: usize = parts[0].parse().map_err(|e| format!("{e}"))?;
                cnf = Some(Cnf::new(nv));
                continue;
            }
            let cnf_ref = cnf.as_mut().ok_or("clause before problem line")?;
            for tok in line.split_whitespace() {
                let l: Lit = tok.parse().map_err(|e| format!("{e}"))?;
                if l == 0 {
                    if !current.is_empty() {
                        cnf_ref.add_clause(std::mem::take(&mut current));
                    }
                } else {
                    current.push(l);
                }
            }
        }
        cnf.ok_or_else(|| "missing problem line".to_string())
    }

    /// Evaluates the formula under a total assignment (`assignment[v-1]` for
    /// variable `v`). Test oracle.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|&l| assignment[(lit_var(l) - 1) as usize] == lit_sign(l))
        })
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cnf({} vars, {} clauses)",
            self.num_vars,
            self.clauses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_round_trip() {
        let mut f = Cnf::new(3);
        f.add_clause(vec![1, -2]);
        f.add_clause(vec![2, 3]);
        f.add_clause(vec![-1, -3]);
        let text = f.to_dimacs();
        let g = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn satisfaction_oracle() {
        let mut f = Cnf::new(2);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1, 2]);
        assert!(f.is_satisfied_by(&[true, true]));
        assert!(f.is_satisfied_by(&[false, true]));
        assert!(!f.is_satisfied_by(&[true, false]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_literal() {
        Cnf::new(1).add_clause(vec![2]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cnf::from_dimacs("p cnf x y").is_err());
        assert!(Cnf::from_dimacs("1 2 0").is_err());
    }

    #[test]
    fn lit_helpers() {
        assert_eq!(lit_var(-7), 7);
        assert!(lit_sign(3));
        assert!(!lit_sign(-3));
    }
}
