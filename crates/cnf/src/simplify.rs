//! CNF simplification by unit resolution (paper §3.2.1, optimization list).
//!
//! Known values — initial qubit states, and anything deterministic CATs
//! propagate from them — appear as unit clauses. Propagating them to fixpoint
//! "combines initial value sentences into binary constraint sentences" and
//! shrinks every downstream compilation stage linearly, exactly the effect
//! the paper reports.
//!
//! Fixed variables are *removed* from the formula but reported to the
//! caller: fixed parameter variables still contribute their weight as a
//! global factor, and fixed query variables constrain admissible evidence.

use crate::formula::{lit_sign, lit_var, Cnf, Lit};
use std::collections::HashMap;

/// The result of unit-propagation simplification.
#[derive(Debug, Clone)]
pub struct Simplified {
    /// The simplified formula (same variable numbering; fixed variables no
    /// longer appear in any clause).
    pub cnf: Cnf,
    /// Variables forced by unit resolution, with their forced polarity.
    pub fixed: HashMap<u32, bool>,
}

/// Errors from simplification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimplifyError {
    /// Unit propagation derived a contradiction: the formula is
    /// unsatisfiable (a malformed encoding — cannot arise from a valid
    /// circuit).
    Unsatisfiable,
}

impl std::fmt::Display for SimplifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplifyError::Unsatisfiable => write!(f, "formula is unsatisfiable"),
        }
    }
}

impl std::error::Error for SimplifyError {}

/// Runs unit propagation to fixpoint and rewrites the formula.
///
/// # Errors
///
/// Returns [`SimplifyError::Unsatisfiable`] if propagation derives an empty
/// clause.
///
/// # Examples
///
/// ```
/// use qkc_cnf::{Cnf, simplify};
///
/// let mut f = Cnf::new(3);
/// f.add_clause(vec![1]);          // unit: v1
/// f.add_clause(vec![-1, 2]);      // ⇒ v2
/// f.add_clause(vec![-2, 3, -1]);  // ⇒ v3
/// let s = simplify(&f).unwrap();
/// assert_eq!(s.cnf.num_clauses(), 0);
/// assert_eq!(s.fixed.get(&3), Some(&true));
/// ```
pub fn simplify(cnf: &Cnf) -> Result<Simplified, SimplifyError> {
    let n = cnf.num_vars();
    let mut assign: Vec<Option<bool>> = vec![None; n + 1]; // 1-based
    let mut queue: Vec<Lit> = Vec::new();
    let mut clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
    let mut alive: Vec<bool> = vec![true; clauses.len()];

    // Index clauses by variable for efficient propagation.
    let mut occurs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (ci, c) in clauses.iter().enumerate() {
        for &l in c {
            occurs[lit_var(l) as usize].push(ci);
        }
    }

    // Seed with existing unit clauses.
    for (ci, c) in clauses.iter().enumerate() {
        if c.len() == 1 {
            queue.push(c[0]);
            alive[ci] = false;
        }
    }

    while let Some(unit) = queue.pop() {
        let v = lit_var(unit) as usize;
        let want = lit_sign(unit);
        match assign[v] {
            Some(prev) if prev != want => return Err(SimplifyError::Unsatisfiable),
            Some(_) => continue,
            None => assign[v] = Some(want),
        }
        for &ci in &occurs[v] {
            if !alive[ci] {
                continue;
            }
            let clause = &mut clauses[ci];
            if clause
                .iter()
                .any(|&l| assign[lit_var(l) as usize] == Some(lit_sign(l)))
            {
                alive[ci] = false;
                continue;
            }
            clause.retain(|&l| assign[lit_var(l) as usize].is_none());
            match clause.len() {
                0 => return Err(SimplifyError::Unsatisfiable),
                1 => {
                    queue.push(clause[0]);
                    alive[ci] = false;
                }
                _ => {}
            }
        }
    }

    let mut out = Cnf::new(n);
    for (ci, c) in clauses.into_iter().enumerate() {
        if !alive[ci] {
            continue;
        }
        // Drop clauses satisfied by the final assignment and falsified
        // literals (a clause may have been edited before its satisfying
        // variable was assigned).
        if c.iter()
            .any(|&l| assign[lit_var(l) as usize] == Some(lit_sign(l)))
        {
            continue;
        }
        let filtered: Vec<Lit> = c
            .into_iter()
            .filter(|&l| assign[lit_var(l) as usize].is_none())
            .collect();
        if filtered.is_empty() {
            return Err(SimplifyError::Unsatisfiable);
        }
        out.add_clause(filtered);
    }
    let fixed = assign
        .iter()
        .enumerate()
        .filter_map(|(v, a)| a.map(|b| (v as u32, b)))
        .collect();
    Ok(Simplified { cnf: out, fixed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagates_chains() {
        let mut f = Cnf::new(4);
        f.add_clause(vec![-1]);
        f.add_clause(vec![1, 2]); // ⇒ v2
        f.add_clause(vec![-2, -3]); // ⇒ ¬v3
        f.add_clause(vec![3, 4]); // ⇒ v4
        let s = simplify(&f).unwrap();
        assert_eq!(s.cnf.num_clauses(), 0);
        assert!(!s.fixed[&1]);
        assert!(s.fixed[&2]);
        assert!(!s.fixed[&3]);
        assert!(s.fixed[&4]);
    }

    #[test]
    fn leaves_unforced_structure() {
        let mut f = Cnf::new(3);
        f.add_clause(vec![1]);
        f.add_clause(vec![-1, 2, 3]); // shrinks to (2 ∨ 3)
        let s = simplify(&f).unwrap();
        assert_eq!(s.cnf.num_clauses(), 1);
        assert_eq!(s.cnf.clauses()[0], vec![2, 3]);
        assert!(!s.fixed.contains_key(&2));
    }

    #[test]
    fn detects_conflict() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![1]);
        f.add_clause(vec![-1]);
        assert!(matches!(simplify(&f), Err(SimplifyError::Unsatisfiable)));
    }

    #[test]
    fn no_units_is_identity() {
        let mut f = Cnf::new(2);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1, -2]);
        let s = simplify(&f).unwrap();
        assert_eq!(s.cnf.num_clauses(), 2);
        assert!(s.fixed.is_empty());
    }
}
