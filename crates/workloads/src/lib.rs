//! Quantum workloads for the QKC toolchain: the paper's benchmark
//! variational algorithms, its validation algorithm suite, and its
//! unstructured random-circuit instances.
//!
//! * [`QaoaMaxCut`] — QAOA for Max-Cut on random 3-regular graphs
//!   (Figures 3, 7, 8a/c, 9a/c).
//! * [`VqeIsing`] — VQE for a 2-D transverse-field Ising grid
//!   (Figures 8b/d, 9b/d).
//! * [`algorithms`] — Bell/CHSH, Deutsch–Jozsa, Bernstein–Vazirani, Simon,
//!   hidden shift, QFT, Grover, teleportation (§3.3.1 validation suite).
//! * [`ShorPeriodFinding`] — period finding / factoring (Figure 6, Table 4).
//! * [`RandomCircuit`] — GRCS-style random circuit sampling (Figure 6).
//!
//! # Examples
//!
//! ```
//! use qkc_workloads::{Graph, QaoaMaxCut};
//!
//! let qaoa = QaoaMaxCut::new(Graph::random_regular(8, 3, 1), 1);
//! let circuit = qaoa.circuit();
//! let params = qaoa.default_params();
//! assert_eq!(circuit.symbols().len(), 2); // gamma0, beta0
//! assert_eq!(params.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod algorithms;
pub mod arithmetic;
mod graph;
mod qaoa;
mod rcs;
mod shor;
mod vqe;

pub use graph::Graph;
pub use qaoa::QaoaMaxCut;
pub use rcs::RandomCircuit;
pub use shor::{
    continued_fraction_denominator, controlled_modmul, gcd, mod_pow, multiplicative_order,
    ShorPeriodFinding,
};
pub use vqe::VqeIsing;
