//! Shor's period-finding / factoring workload (paper Figure 6, Table 4).
//!
//! The circuit uses a counting register (phase estimation) over a work
//! register holding the modular-exponentiation state. Controlled
//! multiplication by `a^(2^k) mod N` is encoded directly as a reversible
//! permutation on (control ⊗ work) — the substitution DESIGN.md documents
//! for Beauregard's adder-based construction, preserving exactly the same
//! entanglement structure between counting and work registers.

use crate::algorithms::append_qft;
use qkc_circuit::{Circuit, PermutationOp};

/// Greatest common divisor.
pub fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Modular exponentiation `base^exp mod modulus`.
pub fn mod_pow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc = 1u64;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    acc
}

/// The multiplicative order of `a` modulo `n` (brute force; classical
/// reference for validation).
pub fn multiplicative_order(a: u64, n: u64) -> u64 {
    assert_eq!(gcd(a, n), 1, "a must be coprime to n");
    let mut x = a % n;
    let mut r = 1;
    while x != 1 {
        x = x * a % n;
        r += 1;
    }
    r
}

/// The controlled modular-multiplication permutation
/// `|c, x⟩ → |c, (mult·x mod modulus)⟩ if c = 1 and x < modulus`.
///
/// # Panics
///
/// Panics if `mult` is not coprime to `modulus` (the map would not be a
/// bijection).
pub fn controlled_modmul(modulus: u64, mult: u64, work_bits: usize) -> PermutationOp {
    assert_eq!(gcd(mult, modulus), 1, "multiplier must be coprime");
    assert!(1u64 << work_bits >= modulus, "work register too small");
    let dim = 1usize << (1 + work_bits);
    let table: Vec<usize> = (0..dim)
        .map(|idx| {
            let c = idx >> work_bits;
            let x = (idx & ((1 << work_bits) - 1)) as u64;
            if c == 1 && x < modulus {
                ((c << work_bits) as u64 | (x * mult % modulus)) as usize
            } else {
                idx
            }
        })
        .collect();
    PermutationOp::new(format!("c-mul{mult}mod{modulus}"), table)
        .expect("modular multiplication is bijective")
}

/// A Shor period-finding instance for `a^x mod n`.
#[derive(Debug, Clone)]
pub struct ShorPeriodFinding {
    modulus: u64,
    base: u64,
    counting_bits: usize,
    work_bits: usize,
}

impl ShorPeriodFinding {
    /// Creates an instance with `counting_bits` phase-estimation qubits.
    ///
    /// # Panics
    ///
    /// Panics if `base` shares a factor with `modulus` (in that case the
    /// factor is found classically and no quantum step is needed).
    pub fn new(modulus: u64, base: u64, counting_bits: usize) -> Self {
        assert!(modulus >= 3);
        assert_eq!(
            gcd(base, modulus),
            1,
            "gcd(base, modulus) > 1: factor found classically"
        );
        let work_bits = (64 - (modulus - 1).leading_zeros()) as usize;
        Self {
            modulus,
            base,
            counting_bits,
            work_bits,
        }
    }

    /// Total qubits (counting + work).
    pub fn num_qubits(&self) -> usize {
        self.counting_bits + self.work_bits
    }

    /// Number of counting (phase) qubits.
    pub fn counting_bits(&self) -> usize {
        self.counting_bits
    }

    /// The period-finding circuit: Hadamards on the counting register,
    /// controlled `×a^(2^k) mod N` cascades, inverse QFT.
    ///
    /// Counting qubits are `0..t` (qubit 0 reads the most significant phase
    /// bit after the inverse QFT); work qubits follow.
    pub fn circuit(&self) -> Circuit {
        let t = self.counting_bits;
        let w = self.work_bits;
        let mut c = Circuit::new(t + w);
        for q in 0..t {
            c.h(q);
        }
        // Work register starts at |1⟩.
        c.x(t + w - 1);
        for k in 0..t {
            // Counting qubit t-1-k controls multiplication by a^(2^k):
            // qubit t-1 is the least significant phase bit.
            let control = t - 1 - k;
            let mult = mod_pow(self.base, 1 << k, self.modulus);
            if mult == 1 {
                continue;
            }
            let perm = controlled_modmul(self.modulus, mult, w);
            let mut qubits = vec![control];
            qubits.extend(t..t + w);
            c.permutation(perm, qubits);
        }
        let counting: Vec<usize> = (0..t).collect();
        append_qft(&mut c, &counting, true);
        c
    }

    /// Extracts the counting-register reading from a full measurement
    /// outcome.
    pub fn counting_value(&self, outcome: usize) -> usize {
        outcome >> self.work_bits
    }

    /// Classical post-processing: recover a candidate period from one
    /// counting-register outcome via continued fractions, then try to
    /// factor.
    pub fn factor_from_outcome(&self, counting: usize) -> Option<(u64, u64)> {
        let r = continued_fraction_denominator(
            counting as u64,
            1u64 << self.counting_bits,
            self.modulus,
        )?;
        // The recovered denominator may be a divisor of the true period:
        // try small multiples.
        for mult in 1..=4u64 {
            let r = r * mult;
            if r == 0 || mod_pow(self.base, r, self.modulus) != 1 {
                continue;
            }
            if r % 2 == 1 {
                continue;
            }
            let half = mod_pow(self.base, r / 2, self.modulus);
            if half == self.modulus - 1 {
                continue;
            }
            let f1 = gcd(half + 1, self.modulus);
            let f2 = gcd(half + self.modulus - 1, self.modulus);
            for f in [f1, f2] {
                if f > 1 && f < self.modulus {
                    return Some((f, self.modulus / f));
                }
            }
        }
        None
    }
}

/// The denominator `r ≤ bound` of the continued-fraction convergent of
/// `y / q` (phase estimation read-out `y` over `q = 2^t`).
pub fn continued_fraction_denominator(y: u64, q: u64, bound: u64) -> Option<u64> {
    if y == 0 {
        return None;
    }
    let (mut num, mut den) = (y, q);
    // Convergent denominators k: k_{-2} = 1, k_{-1} = 0.
    let (mut k_prev, mut k_cur) = (1u64, 0u64);
    let mut best: Option<u64> = None;
    while den != 0 {
        let a = num / den;
        let k_next = a * k_cur + k_prev;
        if k_next > bound {
            break;
        }
        k_prev = k_cur;
        k_cur = k_next;
        if k_cur > 0 {
            best = Some(k_cur);
        }
        let rem = num % den;
        num = den;
        den = rem;
    }
    best.filter(|&r| r > 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::ParamMap;
    use qkc_statevector::StateVectorSimulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classical_helpers() {
        assert_eq!(gcd(48, 18), 6);
        assert_eq!(mod_pow(7, 4, 15), 1);
        assert_eq!(multiplicative_order(7, 15), 4);
        assert_eq!(multiplicative_order(2, 15), 4);
        assert_eq!(multiplicative_order(4, 15), 2);
    }

    #[test]
    fn controlled_modmul_is_identity_when_control_clear() {
        let p = controlled_modmul(15, 7, 4);
        for x in 0..16 {
            assert_eq!(p.apply(x), x, "control clear must be identity");
        }
        // Control set: 1 -> 7 -> 4 (7*7=49=4 mod 15) ...
        assert_eq!(p.apply(16 + 1), 16 + 7);
        assert_eq!(p.apply(16 + 7), 16 + 4);
        // Out-of-range work values are fixed points.
        assert_eq!(p.apply(16 + 15), 16 + 15);
    }

    #[test]
    fn counting_register_peaks_at_multiples_of_q_over_r() {
        // a=7, N=15: period r=4. With t=4 counting bits, q/r = 4 exactly:
        // the counting register concentrates on {0, 4, 8, 12}.
        let shor = ShorPeriodFinding::new(15, 7, 4);
        let probs = StateVectorSimulator::new()
            .probabilities(&shor.circuit(), &ParamMap::new())
            .unwrap();
        let mut counting_probs = [0.0; 16];
        for (s, &p) in probs.iter().enumerate() {
            counting_probs[shor.counting_value(s)] += p;
        }
        let peak_mass: f64 = [0, 4, 8, 12].iter().map(|&k| counting_probs[k]).sum();
        assert!(
            peak_mass > 0.999,
            "peaks should carry all mass, got {peak_mass}"
        );
        // Each peak is 1/4.
        for k in [0, 4, 8, 12] {
            assert!((counting_probs[k] - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn factors_fifteen_from_samples() {
        let shor = ShorPeriodFinding::new(15, 7, 4);
        let sim = StateVectorSimulator::new();
        let mut rng = StdRng::seed_from_u64(21);
        let samples = sim
            .sample(&shor.circuit(), &ParamMap::new(), 64, &mut rng)
            .unwrap();
        let mut found = None;
        for s in samples {
            if let Some((f1, f2)) = shor.factor_from_outcome(shor.counting_value(s)) {
                found = Some((f1.min(f2), f1.max(f2)));
                break;
            }
        }
        assert_eq!(found, Some((3, 5)));
    }

    #[test]
    fn continued_fractions_recover_small_denominators() {
        // 12/16 = 3/4: denominator 4.
        assert_eq!(continued_fraction_denominator(12, 16, 15), Some(4));
        // 8/16 = 1/2.
        assert_eq!(continued_fraction_denominator(8, 16, 15), Some(2));
        assert_eq!(continued_fraction_denominator(0, 16, 15), None);
    }

    #[test]
    fn other_bases_also_factor() {
        for base in [2, 7, 8, 11, 13] {
            let shor = ShorPeriodFinding::new(15, base, 4);
            let probs = StateVectorSimulator::new()
                .probabilities(&shor.circuit(), &ParamMap::new())
                .unwrap();
            // At least one outcome with nonzero probability must factor.
            let mut any = false;
            for (s, &p) in probs.iter().enumerate() {
                if p > 1e-6 {
                    if let Some((f1, f2)) = shor.factor_from_outcome(shor.counting_value(s)) {
                        assert_eq!(f1 * f2, 15);
                        any = true;
                    }
                }
            }
            assert!(any, "base {base} should produce a factoring outcome");
        }
    }
}
