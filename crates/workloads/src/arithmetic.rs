//! Gate-level quantum arithmetic in the Fourier basis (Draper adders).
//!
//! The paper's Shor instances follow Beauregard's qubit-count-minimizing
//! construction, whose workhorse is the *Draper adder*: adding a classical
//! constant to a register held in the Fourier basis costs only single-qubit
//! phase gates, and controlled addition costs controlled phases. This module
//! provides those building blocks at the gate level (no permutation
//! oracles), enabling Shor circuits whose size is measured in *elementary
//! gates* like the paper's Table 4, plus adder-based modular arithmetic for
//! power-of-two moduli.

use crate::algorithms::append_qft;
use qkc_circuit::Circuit;

/// Appends `QFT` (without swaps) over `qubits`: the Fourier-basis encoding
/// used by Draper arithmetic, where qubit `i` (first = most significant)
/// accumulates phase at rate `2π/2^{i+1}`.
fn fourier_basis(c: &mut Circuit, qubits: &[usize], inverse: bool) {
    // Reuse the full QFT with its swap reversal; the adder phases below are
    // written for the standard (swapped) order produced by `append_qft`.
    append_qft(c, qubits, inverse);
}

/// Appends the phase rotations that add the classical constant `a`
/// (mod `2^n`) to an `n`-qubit register currently in the Fourier basis.
///
/// Each qubit receives a single `P(2π·a / 2^{k})` phase — no entangling
/// gates at all, which is the Draper trick.
pub fn fourier_add_const(c: &mut Circuit, qubits: &[usize], a: u64) {
    let n = qubits.len();
    let a = a % (1u64 << n);
    for (i, &q) in qubits.iter().enumerate() {
        // QFT|k⟩ = Σ_x e^{2πikx/2^n}|x⟩; adding `a` multiplies |x⟩ by
        // e^{2πiax/2^n}. Qubit i carries bit weight 2^{n-1-i}, so its phase
        // is 2π·a / 2^{i+1} — an exact no-op whenever 2^{i+1} divides a.
        let denom = 1u64 << (i + 1);
        if a.is_multiple_of(denom) {
            continue;
        }
        let theta = 2.0 * std::f64::consts::PI * a as f64 / denom as f64;
        c.phase(q, theta);
    }
}

/// Appends the *controlled* Draper addition of constant `a` (mod `2^n`),
/// applying the phases only when `control` is set.
pub fn fourier_add_const_controlled(c: &mut Circuit, control: usize, qubits: &[usize], a: u64) {
    let n = qubits.len();
    let a = a % (1u64 << n);
    for (i, &q) in qubits.iter().enumerate() {
        let denom = 1u64 << (i + 1);
        if a.is_multiple_of(denom) {
            continue;
        }
        let theta = 2.0 * std::f64::consts::PI * a as f64 / denom as f64;
        c.cphase(control, q, theta);
    }
}

/// Builds a gate-level circuit computing `|x⟩ → |x + a mod 2^n⟩` on
/// `qubits` via QFT → phases → inverse QFT.
pub fn add_const_circuit(n: usize, a: u64) -> Circuit {
    let mut c = Circuit::new(n);
    let qubits: Vec<usize> = (0..n).collect();
    fourier_basis(&mut c, &qubits, false);
    fourier_add_const(&mut c, &qubits, a);
    fourier_basis(&mut c, &qubits, true);
    c
}

/// Builds a gate-level circuit computing
/// `|ctrl, x⟩ → |ctrl, x + ctrl·a mod 2^n⟩` with the control as qubit 0.
pub fn controlled_add_const_circuit(n: usize, a: u64) -> Circuit {
    let mut c = Circuit::new(n + 1);
    let qubits: Vec<usize> = (1..=n).collect();
    fourier_basis(&mut c, &qubits, false);
    fourier_add_const_controlled(&mut c, 0, &qubits, a);
    fourier_basis(&mut c, &qubits, true);
    c
}

/// A gate-level doubling-and-adding multiplier for power-of-two moduli:
/// `|x⟩|0⟩ → |x⟩|(a·x) mod 2^n⟩`, built from controlled Draper adders —
/// one controlled addition of `a·2^k` per source bit.
pub fn times_const_circuit(n: usize, a: u64) -> Circuit {
    let mut c = Circuit::new(2 * n);
    let target: Vec<usize> = (n..2 * n).collect();
    fourier_basis(&mut c, &target, false);
    for k in 0..n {
        // Source qubit n-1-k holds bit k (weight 2^k).
        let control = n - 1 - k;
        let addend = (a << k) % (1u64 << n);
        fourier_add_const_controlled(&mut c, control, &target, addend);
    }
    fourier_basis(&mut c, &target, true);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::{reference, ParamMap};
    use qkc_statevector::StateVectorSimulator;
    use qkc_workloads_test_util::prepare_basis_state;

    /// Local helper: prepare `|value⟩` on the first `n` qubits.
    mod qkc_workloads_test_util {
        use qkc_circuit::Circuit;

        pub fn prepare_basis_state(c: &mut Circuit, n: usize, value: u64) {
            for q in 0..n {
                if (value >> (n - 1 - q)) & 1 == 1 {
                    c.x(q);
                }
            }
        }
    }

    fn run_deterministic(c: &Circuit) -> usize {
        let probs = StateVectorSimulator::new()
            .probabilities(c, &ParamMap::new())
            .unwrap();
        let (best, &p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(p > 0.999, "arithmetic circuits must act classically: {p}");
        best
    }

    #[test]
    fn draper_adder_adds_constants() {
        let n = 4;
        for x in [0u64, 3, 7, 15] {
            for a in [0u64, 1, 5, 11] {
                let mut c = Circuit::new(n);
                prepare_basis_state(&mut c, n, x);
                let add = add_const_circuit(n, a);
                for op in add.operations() {
                    c.push(op.clone());
                }
                let got = run_deterministic(&c);
                assert_eq!(got as u64, (x + a) % 16, "{x} + {a} mod 16");
            }
        }
    }

    #[test]
    fn controlled_adder_respects_control() {
        let n = 3;
        for ctrl in [0u64, 1] {
            let mut c = Circuit::new(n + 1);
            if ctrl == 1 {
                c.x(0);
            }
            prepare_basis_state_offset(&mut c, 1, n, 5);
            let add = controlled_add_const_circuit(n, 6);
            for op in add.operations() {
                c.push(op.clone());
            }
            let got = run_deterministic(&c);
            let reg = got & ((1 << n) - 1);
            let want = if ctrl == 1 { (5 + 6) % 8 } else { 5 };
            assert_eq!(reg as u64, want, "control = {ctrl}");
        }
    }

    fn prepare_basis_state_offset(c: &mut Circuit, offset: usize, n: usize, value: u64) {
        for q in 0..n {
            if (value >> (n - 1 - q)) & 1 == 1 {
                c.x(offset + q);
            }
        }
    }

    #[test]
    fn multiplier_computes_products_mod_power_of_two() {
        let n = 3;
        for x in [1u64, 2, 5] {
            for a in [1u64, 3, 5] {
                let mut c = Circuit::new(2 * n);
                prepare_basis_state(&mut c, n, x);
                let mul = times_const_circuit(n, a);
                for op in mul.operations() {
                    c.push(op.clone());
                }
                let got = run_deterministic(&c);
                let product = (got as u64) & ((1 << n) - 1);
                assert_eq!(product, (a * x) % 8, "{a}·{x} mod 8");
                // Source register unchanged.
                assert_eq!((got >> n) as u64, x);
            }
        }
    }

    #[test]
    fn adder_in_superposition_stays_coherent() {
        // (|0⟩+|3⟩)/√2 plus 2 must give (|2⟩+|5⟩)/√2 with no phase damage.
        let n = 3;
        let mut c = Circuit::new(n);
        // Prepare (|000⟩ + |011⟩)/√2 with an H and a fan-out CNOT.
        c.h(1).cnot(1, 2);
        let add = add_const_circuit(n, 2);
        for op in add.operations() {
            c.push(op.clone());
        }
        let state = reference::run_pure(&c, &ParamMap::new()).unwrap();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((state[2].norm() - s).abs() < 1e-9);
        assert!((state[5].norm() - s).abs() < 1e-9);
        // Relative phase must be zero (both real-positive up to global).
        let rel = state[5] / state[2];
        assert!((rel.re - 1.0).abs() < 1e-9 && rel.im.abs() < 1e-9);
    }

    #[test]
    fn gate_counts_scale_quadratically_like_beauregard() {
        // QFT + n phases + inverse QFT: O(n²) elementary gates.
        let g4 = add_const_circuit(4, 5).num_gates();
        let g8 = add_const_circuit(8, 5).num_gates();
        assert!(g8 > 2 * g4, "quadratic growth: {g4} -> {g8}");
    }
}
