//! QAOA for Max-Cut (paper §4.1, Figures 3, 7, 8a/c, 9a/c).
//!
//! Each qubit encodes a graph vertex; each algorithm iteration applies the
//! cost unitary `exp(-iγ·C)` (a `ZZ` interaction per edge) followed by the
//! mixer `exp(-iβ·Σ X)` (an `Rx` per qubit). The circuit is *wide and
//! shallow* — the regime where the paper's compiled approach outperforms
//! state-vector and tensor-network baselines.

use crate::graph::Graph;
use qkc_circuit::{Circuit, Param, ParamMap};

/// A QAOA Max-Cut instance: graph + iteration count.
///
/// # Examples
///
/// ```
/// use qkc_workloads::{Graph, QaoaMaxCut};
///
/// let qaoa = QaoaMaxCut::new(Graph::cycle(4), 1);
/// let c = qaoa.circuit();
/// assert_eq!(c.num_qubits(), 4);
/// // H layer + one ZZ per edge + one Rx per qubit.
/// assert_eq!(c.num_gates(), 4 + 4 + 4);
/// ```
#[derive(Debug, Clone)]
pub struct QaoaMaxCut {
    graph: Graph,
    iterations: usize,
}

impl QaoaMaxCut {
    /// Creates an instance with `iterations` QAOA layers (the paper
    /// benchmarks p = 1 and p = 2).
    pub fn new(graph: Graph, iterations: usize) -> Self {
        assert!(iterations > 0, "need at least one QAOA iteration");
        Self { graph, iterations }
    }

    /// The problem graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of QAOA layers.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The parameterized circuit with symbols `gamma{k}`, `beta{k}`.
    pub fn circuit(&self) -> Circuit {
        let n = self.graph.num_vertices();
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for k in 0..self.iterations {
            for &(a, b) in self.graph.edges() {
                // Standard QAOA cost unitary e^{-iγ(1-Z_aZ_b)/2}: up to
                // global phase this is ZZ(-γ) in our e^{-i(θ/2)Z⊗Z}
                // convention. The symbol carries the *standard* γ; the sign
                // is absorbed at bind time in `params`.
                c.zz(a, b, Param::symbol(format!("gamma{k}")));
            }
            for q in 0..n {
                // Mixer e^{-iβX} = Rx(2β); the symbol carries 2β directly.
                c.rx(q, Param::symbol(format!("beta{k}")));
            }
        }
        c
    }

    /// Binds angles: `gammas` and `betas` must each have one entry per
    /// iteration.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn params(&self, gammas: &[f64], betas: &[f64]) -> ParamMap {
        assert_eq!(gammas.len(), self.iterations, "one gamma per iteration");
        assert_eq!(betas.len(), self.iterations, "one beta per iteration");
        let mut m = ParamMap::new();
        for (k, (&g, &b)) in gammas.iter().zip(betas).enumerate() {
            // Map standard QAOA angles onto our gate conventions:
            // cost e^{-iγ(1-ZZ)/2} = ZZ(-γ)·phase, mixer e^{-iβX} = Rx(2β).
            m.bind(format!("gamma{k}"), -g);
            m.bind(format!("beta{k}"), 2.0 * b);
        }
        m
    }

    /// A reasonable fixed angle schedule for smoke tests and benchmarks:
    /// the known p=1 optimum for 3-regular graphs
    /// (γ* = arctan(1/√2) ≈ 0.6155, β* = π/8), staggered across layers.
    pub fn default_params(&self) -> ParamMap {
        let gammas: Vec<f64> = (0..self.iterations)
            .map(|k| 0.6155 + 0.08 * k as f64)
            .collect();
        let betas: Vec<f64> = (0..self.iterations)
            .map(|k| std::f64::consts::FRAC_PI_8 - 0.04 * k as f64)
            .collect();
        self.params(&gammas, &betas)
    }

    /// The negative expected cut over a set of measured bitstrings — the
    /// objective a classical optimizer minimizes.
    pub fn objective_from_samples(&self, samples: &[usize]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let total: usize = samples.iter().map(|&s| self.graph.cut_value(s)).sum();
        -(total as f64) / samples.len() as f64
    }

    /// The exact expected cut under a full output distribution (for
    /// validation against sampled objectives).
    pub fn exact_expected_cut(&self, probabilities: &[f64]) -> f64 {
        probabilities
            .iter()
            .enumerate()
            .map(|(bits, &p)| p * self.graph.cut_value(bits) as f64)
            .sum()
    }

    // ---- engine entry points ----

    /// The diagonal Max-Cut observable: bitstring → cut value.
    pub fn cut_observable(&self) -> impl Fn(usize) -> f64 + Sync + '_ {
        move |bits| self.graph.cut_value(bits) as f64
    }

    /// The expected cut at the given angles, evaluated through the engine
    /// (exact where the planned backend allows, sampled otherwise). The
    /// circuit structure is compiled at most once per engine, however many
    /// angle settings are evaluated.
    ///
    /// # Errors
    ///
    /// Engine-level errors from the selected backend.
    pub fn expected_cut_via(
        &self,
        engine: &qkc_engine::Engine,
        gammas: &[f64],
        betas: &[f64],
        shots: usize,
        seed: u64,
    ) -> Result<f64, qkc_engine::EngineError> {
        engine.expectation(
            &self.circuit(),
            &self.params(gammas, betas),
            &self.cut_observable(),
            shots,
            seed,
        )
    }

    /// Runs the full variational loop through the engine: compile once,
    /// re-bind per optimizer evaluation, candidate batches fanned out over
    /// worker threads. The parameter vector is `[gamma0.., beta0..]`; the
    /// objective is the *negative* expected cut (minimized).
    ///
    /// # Errors
    ///
    /// Engine-level errors from the selected backend.
    pub fn optimize_via(
        &self,
        engine: &qkc_engine::Engine,
        config: &qkc_engine::VariationalConfig,
    ) -> Result<qkc_engine::VariationalResult, qkc_engine::EngineError> {
        let p = self.iterations;
        let x0: Vec<f64> = (0..2 * p).map(|i| if i < p { 0.5 } else { 0.35 }).collect();
        let obs = self.cut_observable();
        qkc_engine::minimize_variational(
            engine,
            &self.circuit(),
            |x| self.params(&x[..p], &x[p..]),
            &move |bits| -obs(bits),
            &x0,
            config,
        )
    }

    /// The gradient-based variational loop
    /// ([`qkc_engine::minimize_variational_gradient`]): Adam rides exact
    /// parameter-shift gradients — each layer's shared `gamma`/`beta`
    /// symbol gets the general shift rule of order equal to its gate count,
    /// every shifted binding a lane of one batched bind on the same cached
    /// artifact — while SPSA estimates descent directions from two-point
    /// value sweeps. Same parameter vector and objective as
    /// [`QaoaMaxCut::optimize_via`].
    ///
    /// # Errors
    ///
    /// Engine-level errors from the selected backend.
    pub fn optimize_gradient_via(
        &self,
        engine: &qkc_engine::Engine,
        config: &qkc_engine::VariationalGradientConfig,
    ) -> Result<qkc_engine::VariationalResult, qkc_engine::EngineError> {
        let p = self.iterations;
        let x0: Vec<f64> = (0..2 * p).map(|i| if i < p { 0.5 } else { 0.35 }).collect();
        let obs = self.cut_observable();
        let neg_obs = move |bits: usize| -obs(bits);
        let circuit = self.circuit();
        qkc_engine::minimize_variational_gradient(
            engine,
            &[qkc_engine::VariationalTerm {
                circuit: &circuit,
                observable: &neg_obs,
                weight: 1.0,
            }],
            |x| self.params(&x[..p], &x[p..]),
            &x0,
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_statevector::StateVectorSimulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn circuit_shape_matches_formula() {
        let g = Graph::random_regular(8, 3, 3);
        let qaoa = QaoaMaxCut::new(g.clone(), 2);
        let c = qaoa.circuit();
        assert_eq!(c.num_qubits(), 8);
        assert_eq!(c.num_gates(), 8 + 2 * (g.num_edges() + 8));
        // Symbols gamma0, gamma1, beta0, beta1.
        assert_eq!(c.symbols().len(), 4);
    }

    #[test]
    fn uniform_angles_zero_gives_uniform_distribution() {
        // γ=0, β=0: circuit is just Hadamards; all outcomes equally likely.
        let qaoa = QaoaMaxCut::new(Graph::cycle(4), 1);
        let params = qaoa.params(&[0.0], &[0.0]);
        let probs = StateVectorSimulator::new()
            .probabilities(&qaoa.circuit(), &params)
            .unwrap();
        for p in probs {
            assert!((p - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn optimized_angles_beat_random_guessing() {
        // On C4, expected cut of a uniformly random assignment is |E|/2 = 2;
        // QAOA p=1 with a coarse angle scan must clearly exceed it.
        let qaoa = QaoaMaxCut::new(Graph::cycle(4), 1);
        let sim = StateVectorSimulator::new();
        let mut best = f64::MIN;
        for gi in 0..8 {
            for bi in 0..8 {
                let gamma = 0.15 * (gi as f64 + 1.0);
                let beta = 0.1 * (bi as f64 + 1.0);
                let params = qaoa.params(&[gamma], &[beta]);
                let probs = sim.probabilities(&qaoa.circuit(), &params).unwrap();
                best = best.max(qaoa.exact_expected_cut(&probs));
            }
        }
        assert!(best > 2.5, "QAOA should beat random guessing, got {best}");
        // And the canonical 3-regular angles are themselves decent on C4.
        let probs = sim
            .probabilities(&qaoa.circuit(), &qaoa.default_params())
            .unwrap();
        assert!(qaoa.exact_expected_cut(&probs) > 2.2);
    }

    #[test]
    fn sampled_objective_approaches_exact() {
        let qaoa = QaoaMaxCut::new(Graph::cycle(4), 1);
        let params = qaoa.default_params();
        let sim = StateVectorSimulator::new();
        let probs = sim.probabilities(&qaoa.circuit(), &params).unwrap();
        let exact = qaoa.exact_expected_cut(&probs);
        let mut rng = StdRng::seed_from_u64(5);
        let samples = sim
            .sample(&qaoa.circuit(), &params, 20_000, &mut rng)
            .unwrap();
        let sampled = -qaoa.objective_from_samples(&samples);
        assert!((sampled - exact).abs() < 0.05, "{sampled} vs {exact}");
    }

    #[test]
    #[should_panic(expected = "one gamma per iteration")]
    fn params_arity_checked() {
        QaoaMaxCut::new(Graph::cycle(4), 2).params(&[0.1], &[0.2, 0.3]);
    }

    #[test]
    fn engine_expected_cut_matches_state_vector() {
        let qaoa = QaoaMaxCut::new(Graph::cycle(4), 1);
        let engine = qkc_engine::Engine::new();
        for (g, b) in [(0.4, 0.3), (0.9, 0.2)] {
            let want = qaoa.exact_expected_cut(
                &StateVectorSimulator::new()
                    .probabilities(&qaoa.circuit(), &qaoa.params(&[g], &[b]))
                    .unwrap(),
            );
            let got = qaoa.expected_cut_via(&engine, &[g], &[b], 0, 1).unwrap();
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        // Both evaluations re-bound one compiled artifact.
        assert!(engine.cache().misses() <= 1);
    }

    #[test]
    fn engine_variational_loop_beats_random_guessing() {
        let graph = Graph::random_regular(6, 3, 11);
        let qaoa = QaoaMaxCut::new(graph.clone(), 1);
        let engine = qkc_engine::Engine::new();
        let result = qaoa
            .optimize_via(
                &engine,
                &qkc_engine::VariationalConfig {
                    optimizer: qkc_optim::NelderMead::new().with_max_iterations(40),
                    shots: 0, // exact objective
                    seed: 3,
                },
            )
            .unwrap();
        let best_cut = -result.optim.value;
        assert!(
            best_cut > graph.num_edges() as f64 / 2.0,
            "cut {best_cut} should beat random guessing"
        );
        assert_eq!(engine.cache().misses(), 1, "whole loop compiles once");
    }
}
