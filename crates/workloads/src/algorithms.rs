//! The validation algorithm suite (paper §3.3.1 and artifact appendix
//! A.6.1): Bell states, CHSH, Deutsch–Jozsa, Bernstein–Vazirani, Simon,
//! hidden shift, QFT, Grover, and teleportation.

use qkc_circuit::{Circuit, DiagonalOp, Gate, PermutationOp};

/// The 2-qubit Bell-state circuit (`H`, `CNOT`).
pub fn bell_circuit() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).cnot(0, 1);
    c
}

/// The noisy Bell-state circuit of the paper's Figure 2
/// (`H`, phase damping γ=0.36, `CNOT`).
pub fn noisy_bell_circuit(gamma: f64) -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).phase_damp(0, gamma).cnot(0, 1);
    c
}

/// One CHSH measurement-setting circuit: Bell pair plus local rotations
/// `Ry(-2a)` on Alice and `Ry(-2b)` on Bob before Z-basis measurement.
///
/// With the canonical angles `a ∈ {0, π/4}`, `b ∈ {π/8, -π/8}`, the CHSH
/// correlation `S = E00 + E01 + E10 - E11` reaches `2√2 > 2`.
pub fn chsh_setting_circuit(a: f64, b: f64) -> Circuit {
    let mut c = bell_circuit();
    c.ry(0, -2.0 * a).ry(1, -2.0 * b);
    c
}

/// The four canonical CHSH settings `(a, b)`.
pub fn chsh_settings() -> [(f64, f64); 4] {
    use std::f64::consts::PI;
    [
        (0.0, PI / 8.0),
        (0.0, -PI / 8.0),
        (PI / 4.0, PI / 8.0),
        (PI / 4.0, -PI / 8.0),
    ]
}

/// The correlation `E = P(same) - P(different)` of qubits 0 and 1 under an
/// output distribution.
pub fn parity_correlation(probs: &[f64], num_qubits: usize) -> f64 {
    let n = num_qubits;
    probs
        .iter()
        .enumerate()
        .map(|(s, &p)| {
            let a = (s >> (n - 1)) & 1;
            let b = (s >> (n - 2)) & 1;
            if a == b {
                p
            } else {
                -p
            }
        })
        .sum()
}

/// A Deutsch–Jozsa oracle: constant (`f(x) = bit`) or balanced
/// (`f(x) = parity(x & mask)` for a non-zero mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DjOracle {
    /// `f(x) = bit` for every input.
    Constant {
        /// The constant output bit.
        bit: bool,
    },
    /// `f(x) = popcount(x & mask) mod 2`; balanced for `mask != 0`.
    BalancedParity {
        /// The parity mask (must be non-zero).
        mask: usize,
    },
}

impl DjOracle {
    fn evaluate(&self, x: usize) -> bool {
        match self {
            DjOracle::Constant { bit } => *bit,
            DjOracle::BalancedParity { mask } => (x & mask).count_ones() % 2 == 1,
        }
    }
}

/// The Deutsch–Jozsa circuit on `n` input qubits plus one ancilla
/// (qubit `n`). Measuring the input register all-zeros ⇔ constant oracle.
pub fn deutsch_jozsa_circuit(n: usize, oracle: DjOracle) -> Circuit {
    let mut c = Circuit::new(n + 1);
    c.x(n);
    for q in 0..=n {
        c.h(q);
    }
    // Bit-flip oracle |x, b> -> |x, b ^ f(x)> as one permutation.
    let table: Vec<usize> = (0..1usize << (n + 1))
        .map(|idx| {
            let x = idx >> 1;
            let b = idx & 1;
            (x << 1) | (b ^ usize::from(oracle.evaluate(x)))
        })
        .collect();
    let perm = PermutationOp::new("dj-oracle", table).expect("bijective oracle");
    let qubits: Vec<usize> = (0..=n).collect();
    c.permutation(perm, qubits);
    for q in 0..n {
        c.h(q);
    }
    c
}

/// The Bernstein–Vazirani circuit recovering `secret` (an `n`-bit string,
/// bit `n-1-q` for qubit `q`) in one query. Uses `n` input qubits plus an
/// ancilla.
pub fn bernstein_vazirani_circuit(n: usize, secret: usize) -> Circuit {
    assert!(secret < 1 << n, "secret out of range");
    deutsch_jozsa_circuit(n, DjOracle::BalancedParity { mask: secret })
}

/// Simon's problem circuit: `f(x) = f(y) ⇔ y = x ⊕ secret`. Uses `n` input
/// qubits and `n` output qubits; input-register measurements are orthogonal
/// to `secret`.
pub fn simon_circuit(n: usize, secret: usize) -> Circuit {
    assert!(secret != 0 && secret < 1 << n, "secret must be non-zero");
    let mut c = Circuit::new(2 * n);
    for q in 0..n {
        c.h(q);
    }
    // Two-to-one oracle: f(x) = min(x, x ^ secret); |x, y> -> |x, y ⊕ f(x)>.
    let table: Vec<usize> = (0..1usize << (2 * n))
        .map(|idx| {
            let x = idx >> n;
            let y = idx & ((1 << n) - 1);
            let fx = x.min(x ^ secret);
            (x << n) | (y ^ fx)
        })
        .collect();
    let perm = PermutationOp::new("simon-oracle", table).expect("bijective oracle");
    let qubits: Vec<usize> = (0..2 * n).collect();
    c.permutation(perm, qubits);
    for q in 0..n {
        c.h(q);
    }
    c
}

/// The hidden-shift circuit for the Maiorana–McFarland bent function
/// `f(x, y) = x·y` on `2m` qubits (van Dam–Hallgren–Ip style, and the Cirq
/// example the paper validates against): measuring recovers `shift`.
pub fn hidden_shift_circuit(m: usize, shift: usize) -> Circuit {
    let n = 2 * m;
    assert!(shift < 1 << n, "shift out of range");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    // Oracle for the shifted function g(x) = f(x ⊕ s): conjugate the phase
    // oracle with X gates on the shifted positions.
    let apply_f = |c: &mut Circuit| {
        // f(x, y) = x·y: a CZ between each paired qubit (i, i+m).
        for i in 0..m {
            c.cz(i, i + m);
        }
    };
    for q in 0..n {
        if (shift >> (n - 1 - q)) & 1 == 1 {
            c.x(q);
        }
    }
    apply_f(&mut c);
    for q in 0..n {
        if (shift >> (n - 1 - q)) & 1 == 1 {
            c.x(q);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    // Phase oracle of the dual bent function (same f for Maiorana–McFarland
    // with this pairing).
    apply_f(&mut c);
    for q in 0..n {
        c.h(q);
    }
    c
}

/// The quantum Fourier transform on `n` qubits (no final swap reversal;
/// callers account for the reversed output order).
pub fn qft_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    append_qft(&mut c, &(0..n).collect::<Vec<_>>(), false);
    c
}

/// Appends the QFT (or its inverse) on the given qubits, including the
/// final qubit-order reversal swaps.
pub fn append_qft(c: &mut Circuit, qubits: &[usize], inverse: bool) {
    let n = qubits.len();
    let mut ops: Vec<(usize, Option<(usize, f64)>)> = Vec::new();
    for i in 0..n {
        ops.push((qubits[i], None)); // H
        for j in (i + 1)..n {
            let angle = std::f64::consts::PI / (1 << (j - i)) as f64;
            ops.push((qubits[i], Some((qubits[j], angle))));
        }
    }
    if inverse {
        // Inverse of [rotations..., swaps]: swaps first (self-inverse,
        // disjoint pairs), then the rotations reversed with negated angles.
        for i in 0..n / 2 {
            c.swap(qubits[i], qubits[n - 1 - i]);
        }
        for (target, op) in ops.into_iter().rev() {
            match op {
                None => {
                    c.h(target);
                }
                Some((ctrl, angle)) => {
                    c.cphase(ctrl, target, -angle);
                }
            }
        }
    } else {
        for (target, op) in ops {
            match op {
                None => {
                    c.h(target);
                }
                Some((ctrl, angle)) => {
                    c.cphase(ctrl, target, angle);
                }
            }
        }
        for i in 0..n / 2 {
            c.swap(qubits[i], qubits[n - 1 - i]);
        }
    }
}

/// Grover search over `n` qubits for the given marked states, running the
/// optimal number of iterations (≈ π/4·√(N/M)).
///
/// The oracle and the diffusion reflection are diagonal operations — the
/// paper's Grover instances likewise search small abstract spaces (2–16
/// elements).
pub fn grover_circuit(n: usize, marked: &[usize]) -> Circuit {
    assert!(!marked.is_empty(), "need at least one marked state");
    let dim = 1usize << n;
    let iterations = ((std::f64::consts::FRAC_PI_4) * (dim as f64 / marked.len() as f64).sqrt())
        .floor()
        .max(1.0) as usize;
    grover_circuit_with_iterations(n, marked, iterations)
}

/// Grover with an explicit iteration count.
pub fn grover_circuit_with_iterations(n: usize, marked: &[usize], iterations: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let qubits: Vec<usize> = (0..n).collect();
    for q in 0..n {
        c.h(q);
    }
    let oracle = DiagonalOp::phase_oracle("grover-oracle", n, marked).expect("marked in range");
    for _ in 0..iterations {
        c.diagonal(oracle.clone(), qubits.clone());
        for q in 0..n {
            c.h(q);
        }
        c.diagonal(DiagonalOp::reflection_about_zero(n), qubits.clone());
        for q in 0..n {
            c.h(q);
        }
    }
    c
}

/// Grover searching for the square roots of `target` modulo `2^n` — the
/// "square root of a number in a simple abstract algebra setting" instance
/// family of the paper's Figure 6.
pub fn grover_sqrt_circuit(n: usize, target: usize) -> Circuit {
    let dim = 1usize << n;
    let marked: Vec<usize> = (0..dim)
        .filter(|&x| (x * x) % dim == target % dim)
        .collect();
    assert!(
        !marked.is_empty(),
        "{target} has no square root modulo {dim}"
    );
    grover_circuit(n, &marked)
}

/// Quantum teleportation of the state `Ry(theta)|0⟩` from qubit 0 to
/// qubit 2, using deferred measurement (quantum-controlled corrections after
/// the mid-circuit measurements).
pub fn teleportation_circuit(theta: f64) -> Circuit {
    let mut c = Circuit::new(3);
    c.ry(0, theta); // message
    c.h(1).cnot(1, 2); // Bell pair between 1 (Alice) and 2 (Bob)
    c.cnot(0, 1).h(0); // Bell measurement basis
    c.measure(0).measure(1);
    // Corrections, deferred: X^{m1} then Z^{m0}.
    c.cnot(1, 2);
    c.cz(0, 2);
    c
}

/// Applies `Gate::X` to selected qubits — helper for preparing basis states
/// in tests.
pub fn prepare_basis(c: &mut Circuit, bits: usize) {
    let n = c.num_qubits();
    for q in 0..n {
        if (bits >> (n - 1 - q)) & 1 == 1 {
            c.gate(Gate::X, [q]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::ParamMap;
    use qkc_statevector::StateVectorSimulator;

    fn probabilities(c: &Circuit) -> Vec<f64> {
        StateVectorSimulator::new()
            .probabilities(c, &ParamMap::new())
            .unwrap()
    }

    #[test]
    fn chsh_violates_classical_bound() {
        let mut s = 0.0;
        for (i, (a, b)) in chsh_settings().into_iter().enumerate() {
            let probs = probabilities(&chsh_setting_circuit(a, b));
            let e = parity_correlation(&probs, 2);
            s += if i == 3 { -e } else { e };
        }
        assert!(
            (s - 2.0 * std::f64::consts::SQRT_2).abs() < 1e-9,
            "CHSH S = {s}"
        );
    }

    #[test]
    fn deutsch_jozsa_separates_constant_and_balanced() {
        for n in [2, 3, 4] {
            for oracle in [
                DjOracle::Constant { bit: false },
                DjOracle::Constant { bit: true },
            ] {
                let probs = probabilities(&deutsch_jozsa_circuit(n, oracle));
                // Input register all-zeros: sum over ancilla values.
                let p0: f64 = probs[0] + probs[1];
                assert!((p0 - 1.0).abs() < 1e-9, "constant oracle n={n}");
            }
            for mask in [1, (1 << n) - 1, 0b10] {
                let probs =
                    probabilities(&deutsch_jozsa_circuit(n, DjOracle::BalancedParity { mask }));
                let p0: f64 = probs[0] + probs[1];
                assert!(p0 < 1e-9, "balanced oracle n={n} mask={mask}");
            }
        }
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        for n in [3, 5] {
            for secret in [0b101 & ((1 << n) - 1), (1 << n) - 1, 1] {
                let probs = probabilities(&bernstein_vazirani_circuit(n, secret));
                // Input register must read exactly `secret` (ancilla free).
                let p: f64 = probs[secret << 1] + probs[(secret << 1) | 1];
                assert!((p - 1.0).abs() < 1e-9, "n={n} secret={secret:b}");
            }
        }
    }

    #[test]
    fn simon_samples_are_orthogonal_to_secret() {
        let n = 3;
        let secret = 0b101;
        let probs = probabilities(&simon_circuit(n, secret));
        for (state, &p) in probs.iter().enumerate() {
            if p > 1e-12 {
                let x = state >> n; // input register
                let dot = (x & secret).count_ones() % 2;
                assert_eq!(dot, 0, "sampled {x:b} not orthogonal to {secret:b}");
            }
        }
    }

    #[test]
    fn hidden_shift_recovers_shift() {
        for (m, shift) in [(1, 0b01), (2, 0b1011), (2, 0b0110)] {
            let probs = probabilities(&hidden_shift_circuit(m, shift));
            let (best, &p) = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap();
            assert_eq!(best, shift, "m={m}");
            assert!((p - 1.0).abs() < 1e-9, "deterministic recovery, got {p}");
        }
    }

    #[test]
    fn qft_of_basis_state_is_fourier_mode() {
        let n = 3;
        let k = 5;
        let mut c = Circuit::new(n);
        prepare_basis(&mut c, k);
        append_qft(&mut c, &[0, 1, 2], false);
        let state = StateVectorSimulator::new()
            .run_pure(&c, &ParamMap::new())
            .unwrap();
        let dim = 1 << n;
        for x in 0..dim {
            let want =
                qkc_math::Complex::cis(2.0 * std::f64::consts::PI * (k * x) as f64 / dim as f64)
                    .scale(1.0 / (dim as f64).sqrt());
            assert!(
                state.amplitude(x).approx_eq(want, 1e-9),
                "amp {x}: {} vs {want}",
                state.amplitude(x)
            );
        }
    }

    #[test]
    fn qft_then_inverse_is_identity() {
        let n = 4;
        let mut c = Circuit::new(n);
        prepare_basis(&mut c, 0b1010);
        let qs: Vec<usize> = (0..n).collect();
        append_qft(&mut c, &qs, false);
        append_qft(&mut c, &qs, true);
        let probs = probabilities(&c);
        assert!((probs[0b1010] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grover_amplifies_marked_states() {
        for n in [2, 3, 4] {
            let marked = [(1 << n) - 2];
            let probs = probabilities(&grover_circuit(n, &marked));
            let p = probs[marked[0]];
            // Success probability far above uniform 1/2^n.
            assert!(p > 0.75, "n={n}: marked probability {p} should dominate");
        }
    }

    #[test]
    fn grover_sqrt_finds_square_roots() {
        // x² ≡ 4 (mod 16): roots 2, 6, 10, 14.
        let c = grover_sqrt_circuit(4, 4);
        let probs = probabilities(&c);
        let root_mass: f64 = [2, 6, 10, 14].iter().map(|&r| probs[r]).sum();
        assert!(root_mass > 0.9, "root mass {root_mass}");
    }

    #[test]
    fn teleportation_transfers_the_state() {
        use qkc_circuit::reference;
        let theta = 0.9;
        let rho = reference::run_density(&teleportation_circuit(theta), &ParamMap::new()).unwrap();
        // Qubit 2 marginal: P(|1>) = sin²(θ/2).
        let want = (theta / 2.0_f64).sin().powi(2);
        let p1: f64 = (0..8).filter(|s| s & 1 == 1).map(|s| rho[(s, s)].re).sum();
        assert!((p1 - want).abs() < 1e-9, "{p1} vs {want}");
        // And coherence: the off-diagonal of qubit 2's reduced state must
        // match the pure Ry(θ) state (teleportation preserves phase).
        let mut off = qkc_math::C_ZERO;
        for s in 0..4 {
            off += rho[(2 * s, 2 * s + 1)];
        }
        let want_off = (theta / 2.0).cos() * (theta / 2.0).sin();
        assert!(off.approx_eq(qkc_math::Complex::real(want_off), 1e-9));
    }
}
