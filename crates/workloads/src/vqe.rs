//! VQE for the 2-D transverse-field Ising model (paper §4.1, Figures 8b/d,
//! 9b/d).
//!
//! Each qubit encodes one grid point; the Hamiltonian is
//! `H = -J·Σ_{⟨ij⟩} Z_i Z_j - h·Σ_i X_i`. The ansatz alternates `Ry`
//! rotation layers with `ZZ` entanglers along the grid edges. Energy is
//! estimated from samples in two measurement settings: the computational
//! basis for the `ZZ` terms, and a Hadamard-rotated basis for the `X` terms
//! — exactly how a hardware run (or a sampling simulator) evaluates the
//! objective.

use crate::graph::Graph;
use qkc_circuit::{Circuit, Param, ParamMap};

/// A VQE instance on a `width × height` Ising grid.
///
/// # Examples
///
/// ```
/// use qkc_workloads::VqeIsing;
///
/// let vqe = VqeIsing::new(2, 2, 1);
/// assert_eq!(vqe.num_qubits(), 4);
/// let c = vqe.circuit();
/// assert_eq!(c.num_qubits(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct VqeIsing {
    grid: Graph,
    width: usize,
    height: usize,
    layers: usize,
    /// ZZ coupling strength.
    pub coupling_j: f64,
    /// Transverse field strength.
    pub field_h: f64,
}

impl VqeIsing {
    /// Creates an instance with `layers` ansatz repetitions (the paper
    /// benchmarks 1 and 2 iterations), `J = 1`, `h = 0.5`.
    pub fn new(width: usize, height: usize, layers: usize) -> Self {
        assert!(layers > 0);
        Self {
            grid: Graph::grid(width, height),
            width,
            height,
            layers,
            coupling_j: 1.0,
            field_h: 0.5,
        }
    }

    /// Number of qubits (grid points).
    pub fn num_qubits(&self) -> usize {
        self.width * self.height
    }

    /// The grid graph.
    pub fn grid(&self) -> &Graph {
        &self.grid
    }

    /// Number of ansatz layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The parameterized ansatz with symbols `theta{k}_{q}` (rotations) and
    /// `phi{k}` (entangler angles).
    pub fn circuit(&self) -> Circuit {
        let n = self.num_qubits();
        let mut c = Circuit::new(n);
        for k in 0..self.layers {
            for q in 0..n {
                c.ry(q, Param::symbol(format!("theta{k}_{q}")));
            }
            let phi = Param::symbol(format!("phi{k}"));
            for &(a, b) in self.grid.edges() {
                c.zz(a, b, phi.clone());
            }
        }
        c
    }

    /// The circuit measured in the X basis: the ansatz followed by a
    /// Hadamard on every qubit.
    pub fn circuit_x_basis(&self) -> Circuit {
        let mut c = self.circuit();
        for q in 0..self.num_qubits() {
            c.h(q);
        }
        c
    }

    /// Binds a full parameter vector: `layers·(n+1)` values, per layer the
    /// `n` rotation angles then the entangler angle.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn params(&self, values: &[f64]) -> ParamMap {
        let n = self.num_qubits();
        assert_eq!(
            values.len(),
            self.layers * (n + 1),
            "expected layers·(n+1) parameters"
        );
        let mut m = ParamMap::new();
        for k in 0..self.layers {
            let base = k * (n + 1);
            for q in 0..n {
                m.bind(format!("theta{k}_{q}"), values[base + q]);
            }
            m.bind(format!("phi{k}"), values[base + n]);
        }
        m
    }

    /// Number of free parameters.
    pub fn num_params(&self) -> usize {
        self.layers * (self.num_qubits() + 1)
    }

    /// A fixed generic starting point.
    pub fn default_params(&self) -> ParamMap {
        let values: Vec<f64> = (0..self.num_params())
            .map(|i| 0.4 + 0.13 * (i as f64).sin())
            .collect();
        self.params(&values)
    }

    /// Energy estimate from samples in the two measurement settings:
    /// `E = -J·⟨Σ Z_i Z_j⟩ (from z_samples) - h·⟨Σ X_i⟩ (from x_samples)`.
    pub fn energy_from_samples(&self, z_samples: &[usize], x_samples: &[usize]) -> f64 {
        let n = self.num_qubits();
        let zz: f64 = if z_samples.is_empty() {
            0.0
        } else {
            z_samples
                .iter()
                .map(|&s| {
                    self.grid
                        .edges()
                        .iter()
                        .map(|&(a, b)| {
                            let za = 1.0 - 2.0 * ((s >> (n - 1 - a)) & 1) as f64;
                            let zb = 1.0 - 2.0 * ((s >> (n - 1 - b)) & 1) as f64;
                            za * zb
                        })
                        .sum::<f64>()
                })
                .sum::<f64>()
                / z_samples.len() as f64
        };
        let x: f64 = if x_samples.is_empty() {
            0.0
        } else {
            x_samples
                .iter()
                .map(|&s| {
                    (0..n)
                        .map(|q| 1.0 - 2.0 * ((s >> (n - 1 - q)) & 1) as f64)
                        .sum::<f64>()
                })
                .sum::<f64>()
                / x_samples.len() as f64
        };
        -self.coupling_j * zz - self.field_h * x
    }

    /// Exact energy from full distributions in both settings (validation).
    pub fn exact_energy(&self, z_probs: &[f64], x_probs: &[f64]) -> f64 {
        let n = self.num_qubits();
        let mut zz = 0.0;
        for (s, &p) in z_probs.iter().enumerate() {
            for &(a, b) in self.grid.edges() {
                let za = 1.0 - 2.0 * ((s >> (n - 1 - a)) & 1) as f64;
                let zb = 1.0 - 2.0 * ((s >> (n - 1 - b)) & 1) as f64;
                zz += p * za * zb;
            }
        }
        let mut x = 0.0;
        for (s, &p) in x_probs.iter().enumerate() {
            for q in 0..n {
                x += p * (1.0 - 2.0 * ((s >> (n - 1 - q)) & 1) as f64);
            }
        }
        -self.coupling_j * zz - self.field_h * x
    }

    // ---- engine entry points ----

    /// The diagonal `Σ_{⟨ij⟩} Z_i Z_j` observable over computational-basis
    /// bitstrings.
    pub fn zz_observable(&self) -> impl Fn(usize) -> f64 + Sync + '_ {
        let n = self.num_qubits();
        move |s| {
            self.grid
                .edges()
                .iter()
                .map(|&(a, b)| {
                    let za = 1.0 - 2.0 * ((s >> (n - 1 - a)) & 1) as f64;
                    let zb = 1.0 - 2.0 * ((s >> (n - 1 - b)) & 1) as f64;
                    za * zb
                })
                .sum()
        }
    }

    /// The diagonal `Σ_i Z_i` observable — applied to *X-basis* samples it
    /// measures `Σ_i X_i`.
    pub fn x_observable(&self) -> impl Fn(usize) -> f64 + Sync {
        let n = self.num_qubits();
        move |s| {
            (0..n)
                .map(|q| 1.0 - 2.0 * ((s >> (n - 1 - q)) & 1) as f64)
                .sum()
        }
    }

    /// The variational energy at `values`, evaluated through the engine in
    /// both measurement settings (`Z` basis for the couplings, `X` basis
    /// for the field). Both setting circuits compile at most once per
    /// engine and are re-bound on every later call.
    ///
    /// # Errors
    ///
    /// Engine-level errors from the selected backend.
    pub fn energy_via(
        &self,
        engine: &qkc_engine::Engine,
        values: &[f64],
        shots: usize,
        seed: u64,
    ) -> Result<f64, qkc_engine::EngineError> {
        let params = self.params(values);
        let zz =
            engine.expectation(&self.circuit(), &params, &self.zz_observable(), shots, seed)?;
        let x = engine.expectation(
            &self.circuit_x_basis(),
            &params,
            &self.x_observable(),
            shots,
            seed.wrapping_add(1),
        )?;
        Ok(-self.coupling_j * zz - self.field_h * x)
    }

    /// Runs the full VQE loop through the engine with a batched
    /// Nelder–Mead: each candidate batch becomes two parameter sweeps (one
    /// per measurement setting) fanned out across worker threads.
    ///
    /// # Errors
    ///
    /// The first engine-level error encountered.
    pub fn optimize_via(
        &self,
        engine: &qkc_engine::Engine,
        optimizer: &qkc_optim::NelderMead,
        x0: &[f64],
        shots: usize,
        seed: u64,
    ) -> Result<qkc_optim::OptimResult, qkc_engine::EngineError> {
        let z_circuit = self.circuit();
        let x_circuit = self.circuit_x_basis();
        let zz_obs = self.zz_observable();
        let x_obs = self.x_observable();
        let result = qkc_engine::minimize_variational_terms(
            engine,
            &[
                qkc_engine::VariationalTerm {
                    circuit: &z_circuit,
                    observable: &zz_obs,
                    weight: -self.coupling_j,
                },
                qkc_engine::VariationalTerm {
                    circuit: &x_circuit,
                    observable: &x_obs,
                    weight: -self.field_h,
                },
            ],
            |x| self.params(x),
            x0,
            &qkc_engine::VariationalConfig {
                optimizer: optimizer.clone(),
                shots,
                seed,
            },
        )?;
        Ok(result.optim)
    }

    /// The gradient-based VQE loop
    /// ([`qkc_engine::minimize_variational_gradient`]) over both
    /// measurement settings: Adam issues one exact parameter-shift
    /// gradient query per setting per iteration (the shared entangler
    /// angle `phi{k}` gets the general shift rule of order equal to its
    /// edge count), SPSA two-point value sweeps. Parameter vector and
    /// objective match [`VqeIsing::optimize_via`].
    ///
    /// # Errors
    ///
    /// The first engine-level error encountered.
    pub fn optimize_gradient_via(
        &self,
        engine: &qkc_engine::Engine,
        x0: &[f64],
        config: &qkc_engine::VariationalGradientConfig,
    ) -> Result<qkc_engine::VariationalResult, qkc_engine::EngineError> {
        let z_circuit = self.circuit();
        let x_circuit = self.circuit_x_basis();
        let zz_obs = self.zz_observable();
        let x_obs = self.x_observable();
        qkc_engine::minimize_variational_gradient(
            engine,
            &[
                qkc_engine::VariationalTerm {
                    circuit: &z_circuit,
                    observable: &zz_obs,
                    weight: -self.coupling_j,
                },
                qkc_engine::VariationalTerm {
                    circuit: &x_circuit,
                    observable: &x_obs,
                    weight: -self.field_h,
                },
            ],
            |x| self.params(x),
            x0,
            config,
        )
    }

    /// The exact ground-state energy by brute-force diagonalization of the
    /// diagonal+field Hamiltonian via dense enumeration (tiny grids only).
    pub fn ground_energy_brute_force(&self) -> f64 {
        use qkc_math::CMatrix;
        let n = self.num_qubits();
        let dim = 1usize << n;
        assert!(n <= 6, "brute-force diagonalization limited to 6 qubits");
        // Build H as a dense matrix: -J Σ ZZ (diagonal) - h Σ X.
        let mut h = CMatrix::zeros(dim, dim);
        for s in 0..dim {
            let mut diag = 0.0;
            for &(a, b) in self.grid.edges() {
                let za = 1.0 - 2.0 * ((s >> (n - 1 - a)) & 1) as f64;
                let zb = 1.0 - 2.0 * ((s >> (n - 1 - b)) & 1) as f64;
                diag += za * zb;
            }
            h[(s, s)] = qkc_math::Complex::real(-self.coupling_j * diag);
            for q in 0..n {
                let t = s ^ (1 << (n - 1 - q));
                h[(s, t)] += qkc_math::Complex::real(-self.field_h);
            }
        }
        // Smallest eigenvalue by inverse power iteration on (cI - H).
        let shift = 2.0 * (self.grid.num_edges() as f64 + n as f64);
        let mut v: Vec<qkc_math::Complex> = (0..dim)
            .map(|i| qkc_math::Complex::real(1.0 + (i as f64 * 0.7).sin()))
            .collect();
        let mut m = CMatrix::zeros(dim, dim);
        for r in 0..dim {
            for c in 0..dim {
                m[(r, c)] = if r == c {
                    qkc_math::Complex::real(shift) - h[(r, c)]
                } else {
                    -h[(r, c)]
                };
            }
        }
        for _ in 0..500 {
            v = m.mul_vec(&v);
            let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            for z in &mut v {
                *z = z.scale(1.0 / norm);
            }
        }
        // Rayleigh quotient with H.
        let hv = h.mul_vec(&v);
        v.iter().zip(&hv).map(|(a, b)| (a.conj() * *b).re).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_statevector::StateVectorSimulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn circuit_shape() {
        let vqe = VqeIsing::new(3, 3, 2);
        let c = vqe.circuit();
        assert_eq!(c.num_qubits(), 9);
        // Per layer: 9 Ry + 12 ZZ.
        assert_eq!(c.num_gates(), 2 * (9 + 12));
        assert_eq!(vqe.num_params(), 2 * 10);
    }

    #[test]
    fn sampled_energy_matches_exact() {
        let vqe = VqeIsing::new(2, 2, 1);
        let params = vqe.default_params();
        let sim = StateVectorSimulator::new();
        let zp = sim.probabilities(&vqe.circuit(), &params).unwrap();
        let xp = sim.probabilities(&vqe.circuit_x_basis(), &params).unwrap();
        let exact = vqe.exact_energy(&zp, &xp);
        let mut rng = StdRng::seed_from_u64(13);
        let zs = sim
            .sample(&vqe.circuit(), &params, 30_000, &mut rng)
            .unwrap();
        let xs = sim
            .sample(&vqe.circuit_x_basis(), &params, 30_000, &mut rng)
            .unwrap();
        let sampled = vqe.energy_from_samples(&zs, &xs);
        assert!((sampled - exact).abs() < 0.1, "{sampled} vs {exact}");
    }

    #[test]
    fn optimization_lowers_energy_toward_ground_state() {
        let vqe = VqeIsing::new(2, 2, 1);
        let ground = vqe.ground_energy_brute_force();
        let sim = StateVectorSimulator::new();
        let objective = |x: &[f64]| {
            let params = vqe.params(x);
            let zp = sim.probabilities(&vqe.circuit(), &params).unwrap();
            let xp = sim.probabilities(&vqe.circuit_x_basis(), &params).unwrap();
            vqe.exact_energy(&zp, &xp)
        };
        let start = vec![0.3; vqe.num_params()];
        let initial = objective(&start);
        let result = qkc_optim::NelderMead::new()
            .with_max_iterations(300)
            .minimize(objective, &start);
        assert!(result.value < initial, "optimizer should make progress");
        assert!(
            result.value >= ground - 1e-6,
            "variational energy cannot beat the ground state: {} vs {ground}",
            result.value
        );
        assert!(
            result.value - ground < 1.5,
            "should approach the ground state: {} vs {ground}",
            result.value
        );
    }

    #[test]
    fn engine_energy_matches_exact_energy() {
        let vqe = VqeIsing::new(2, 2, 1);
        let params = vqe.default_params();
        let sim = StateVectorSimulator::new();
        let zp = sim.probabilities(&vqe.circuit(), &params).unwrap();
        let xp = sim.probabilities(&vqe.circuit_x_basis(), &params).unwrap();
        let want = vqe.exact_energy(&zp, &xp);
        let engine = qkc_engine::Engine::new();
        let values: Vec<f64> = (0..vqe.num_params())
            .map(|i| 0.4 + 0.13 * (i as f64).sin())
            .collect();
        let got = vqe.energy_via(&engine, &values, 0, 7).unwrap();
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn engine_vqe_loop_approaches_ground_state() {
        let vqe = VqeIsing::new(2, 2, 1);
        let ground = vqe.ground_energy_brute_force();
        let engine = qkc_engine::Engine::new();
        let start = vec![0.3; vqe.num_params()];
        let initial = vqe.energy_via(&engine, &start, 0, 1).unwrap();
        let result = vqe
            .optimize_via(
                &engine,
                &qkc_optim::NelderMead::new().with_max_iterations(300),
                &start,
                0, // exact objective
                1,
            )
            .unwrap();
        assert!(result.value < initial, "optimizer should make progress");
        assert!(result.value >= ground - 1e-6);
        assert!(
            result.value - ground < 1.5,
            "should approach the ground state: {} vs {ground}",
            result.value
        );
        // Two measurement settings, two compilations, zero recompiles.
        assert!(engine.cache().misses() <= 2);
    }

    #[test]
    fn ground_energy_of_single_edge() {
        // 2x1 grid, J=1, h=0.5: H = -Z0Z1 - 0.5(X0+X1);
        // exact ground energy = -(1 + sqrt(1 + ... )) — verify against a
        // hand-diagonalized 4x4: eigenvalues of [-1,-.5,-.5,0;...]. Simply
        // check it is below the classical minimum (-1).
        let mut vqe = VqeIsing::new(2, 1, 1);
        vqe.coupling_j = 1.0;
        vqe.field_h = 0.5;
        let e = vqe.ground_energy_brute_force();
        assert!(e < -1.0, "quantum ground state below classical: {e}");
        assert!(e > -2.5);
    }
}
