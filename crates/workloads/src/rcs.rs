//! Random circuit sampling (RCS) workload — the paper's *unstructured*
//! instance family (Figure 6): "quantum operations randomly selected and
//! placed in a fixed template", in the style of the GRCS supremacy
//! circuits.
//!
//! Qubits sit on a `width × height` grid; every cycle applies a CZ pattern
//! (alternating between eight stagger offsets like GRCS) and random
//! single-qubit gates drawn from {T, √X, √Y} on the untouched qubits. These
//! circuits entangle rapidly and leave little independence structure for
//! knowledge compilation to exploit — the expected exponential-scaling
//! contrast with Grover/Shor in Figure 6.

use qkc_circuit::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An RCS instance on a qubit grid.
///
/// # Examples
///
/// ```
/// use qkc_workloads::RandomCircuit;
///
/// let rcs = RandomCircuit::new(3, 3, 4, 7);
/// let c = rcs.circuit();
/// assert_eq!(c.num_qubits(), 9);
/// assert!(c.depth() > 4);
/// ```
#[derive(Debug, Clone)]
pub struct RandomCircuit {
    width: usize,
    height: usize,
    cycles: usize,
    seed: u64,
}

impl RandomCircuit {
    /// Creates an instance: `cycles` entangling rounds on a
    /// `width × height` grid, deterministic in `seed`.
    pub fn new(width: usize, height: usize, cycles: usize, seed: u64) -> Self {
        Self {
            width,
            height,
            cycles,
            seed,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.width * self.height
    }

    /// The CZ pairs of pattern `p` (eight staggered patterns, as in GRCS).
    fn cz_pattern(&self, p: usize) -> Vec<(usize, usize)> {
        let (w, h) = (self.width, self.height);
        let q = |r: usize, c: usize| r * w + c;
        let mut pairs = Vec::new();
        match p % 8 {
            // Horizontal pairs with four stagger phases.
            0 | 2 | 4 | 6 => {
                let phase = (p % 8) / 2;
                for r in 0..h {
                    let start = (r + phase) % 2;
                    let mut c = start;
                    while c + 1 < w {
                        pairs.push((q(r, c), q(r, c + 1)));
                        c += 2;
                    }
                }
            }
            // Vertical pairs with four stagger phases.
            _ => {
                let phase = (p % 8 - 1) / 2;
                for c in 0..w {
                    let start = (c + phase) % 2;
                    let mut r = start;
                    while r + 1 < h {
                        pairs.push((q(r, c), q(r + 1, c)));
                        r += 2;
                    }
                }
            }
        }
        pairs
    }

    /// Builds the circuit.
    pub fn circuit(&self) -> Circuit {
        let n = self.num_qubits();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for cycle in 0..self.cycles {
            let pairs = self.cz_pattern(cycle);
            let mut in_cz = vec![false; n];
            for &(a, b) in &pairs {
                c.cz(a, b);
                in_cz[a] = true;
                in_cz[b] = true;
            }
            for (q, &busy) in in_cz.iter().enumerate() {
                if !busy {
                    let g = match rng.gen_range(0..3) {
                        0 => Gate::T,
                        1 => Gate::SqrtX,
                        _ => Gate::SqrtY,
                    };
                    c.gate(g, [q]);
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkc_circuit::ParamMap;
    use qkc_statevector::StateVectorSimulator;

    #[test]
    fn deterministic_in_seed() {
        let a = RandomCircuit::new(3, 2, 5, 11).circuit();
        let b = RandomCircuit::new(3, 2, 5, 11).circuit();
        assert_eq!(a, b);
        let c = RandomCircuit::new(3, 2, 5, 12).circuit();
        assert_ne!(a, c);
    }

    #[test]
    fn every_cycle_entangles_some_pair() {
        let rcs = RandomCircuit::new(3, 3, 8, 3);
        let c = rcs.circuit();
        let cz_count = c
            .operations()
            .iter()
            .filter(|o| matches!(o, qkc_circuit::Operation::Gate { gate: Gate::Cz, .. }))
            .count();
        assert!(cz_count >= 8, "each cycle should place CZs, got {cz_count}");
    }

    #[test]
    fn output_distribution_spreads_out() {
        // Porter–Thomas-like behaviour: after enough cycles no outcome
        // dominates.
        let rcs = RandomCircuit::new(2, 2, 8, 5);
        let probs = StateVectorSimulator::new()
            .probabilities(&rcs.circuit(), &ParamMap::new())
            .unwrap();
        let max = probs.iter().copied().fold(0.0, f64::max);
        assert!(max < 0.6, "no single outcome should dominate, got {max}");
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn patterns_alternate_directions() {
        let rcs = RandomCircuit::new(3, 3, 2, 0);
        let horizontal = rcs.cz_pattern(0);
        let vertical = rcs.cz_pattern(1);
        assert!(horizontal.iter().all(|&(a, b)| b == a + 1));
        assert!(vertical.iter().all(|&(a, b)| b == a + 3));
    }
}
