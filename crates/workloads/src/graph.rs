//! Problem graphs for the variational workloads.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// An undirected simple graph on vertices `0..n`.
///
/// # Examples
///
/// ```
/// use qkc_workloads::Graph;
///
/// let g = Graph::random_regular(8, 3, 42);
/// assert_eq!(g.num_vertices(), 8);
/// assert!(g.degrees().iter().all(|&d| d == 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate edges, or out-of-range vertices.
    pub fn new(num_vertices: usize, mut edges: Vec<(usize, usize)>) -> Self {
        for e in &mut edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
            assert!(e.0 != e.1, "self-loop at vertex {}", e.0);
            assert!(e.1 < num_vertices, "vertex {} out of range", e.1);
        }
        edges.sort_unstable();
        let before = edges.len();
        edges.dedup();
        assert_eq!(before, edges.len(), "duplicate edges");
        Self {
            num_vertices,
            edges,
        }
    }

    /// A random `d`-regular graph via the configuration model (the paper's
    /// QAOA instances: "random graphs with varying number of vertices each
    /// having three edges", §4.1).
    ///
    /// # Panics
    ///
    /// Panics if `n·d` is odd or `d >= n`.
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Self {
        assert!(
            (n * d).is_multiple_of(2),
            "n·d must be even for a d-regular graph"
        );
        assert!(d < n, "degree must be below vertex count");
        let mut rng = StdRng::seed_from_u64(seed);
        'attempt: for _ in 0..10_000 {
            // Configuration model: pair up d stubs per vertex.
            let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
            stubs.shuffle(&mut rng);
            let mut edges = Vec::with_capacity(n * d / 2);
            let mut seen = std::collections::HashSet::new();
            for pair in stubs.chunks(2) {
                let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                if a == b || !seen.insert((a, b)) {
                    continue 'attempt; // reject multi-edges and loops
                }
                edges.push((a, b));
            }
            return Self::new(n, edges);
        }
        panic!("failed to sample a simple {d}-regular graph on {n} vertices");
    }

    /// A `w × h` grid graph (the paper's 2-D Ising model instances: "each
    /// qubit encodes a grid point in 2D space", §4.1). Vertex `(r, c)` is
    /// `r·w + c`.
    pub fn grid(width: usize, height: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..height {
            for c in 0..width {
                let v = r * width + c;
                if c + 1 < width {
                    edges.push((v, v + 1));
                }
                if r + 1 < height {
                    edges.push((v, v + width));
                }
            }
        }
        Self::new(width * height, edges)
    }

    /// A simple cycle on `n` vertices.
    pub fn cycle(n: usize) -> Self {
        Self::new(n, (0..n).map(|v| (v, (v + 1) % n)).collect())
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The edges, normalized `(low, high)` and sorted.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.num_vertices];
        for &(a, b) in &self.edges {
            d[a] += 1;
            d[b] += 1;
        }
        d
    }

    /// The cut value of a vertex bipartition given as a bitstring (vertex
    /// `v`'s side is bit `n-1-v`, matching circuit measurement outcomes).
    pub fn cut_value(&self, bits: usize) -> usize {
        let n = self.num_vertices;
        self.edges
            .iter()
            .filter(|&&(a, b)| (bits >> (n - 1 - a)) & 1 != (bits >> (n - 1 - b)) & 1)
            .count()
    }

    /// The maximum cut value, by brute force (test/verification use).
    pub fn max_cut_brute_force(&self) -> usize {
        (0..1usize << self.num_vertices)
            .map(|bits| self.cut_value(bits))
            .max()
            .unwrap_or(0)
    }

    /// Draws a uniformly random graph with edge probability `p`.
    pub fn random_gnp(n: usize, p: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen::<f64>() < p {
                    edges.push((a, b));
                }
            }
        }
        Self::new(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graph_has_uniform_degree() {
        for (n, d) in [(6, 3), (8, 3), (10, 3), (12, 4)] {
            let g = Graph::random_regular(n, d, 7);
            assert_eq!(g.num_edges(), n * d / 2);
            assert!(g.degrees().iter().all(|&x| x == d), "({n},{d})");
        }
    }

    #[test]
    fn regular_graphs_differ_by_seed() {
        let a = Graph::random_regular(10, 3, 1);
        let b = Graph::random_regular(10, 3, 2);
        assert_ne!(a, b);
        // Same seed reproduces.
        assert_eq!(a, Graph::random_regular(10, 3, 1));
    }

    #[test]
    fn grid_shape() {
        let g = Graph::grid(3, 3);
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 12); // 2*3*2 horizontal + vertical
        let d = g.degrees();
        assert_eq!(d[4], 4); // center
        assert_eq!(d[0], 2); // corner
    }

    #[test]
    fn cut_value_counts_crossing_edges() {
        // Path 0-1-2: bits 0b101 puts vertex 1 alone: both edges cut.
        let g = Graph::new(3, vec![(0, 1), (1, 2)]);
        assert_eq!(g.cut_value(0b101), 2);
        assert_eq!(g.cut_value(0b111), 0);
        assert_eq!(g.cut_value(0b100), 1);
    }

    #[test]
    fn max_cut_of_even_cycle_is_n() {
        let g = Graph::cycle(6);
        assert_eq!(g.max_cut_brute_force(), 6);
        let g5 = Graph::cycle(5);
        assert_eq!(g5.max_cut_brute_force(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Graph::new(2, vec![(1, 1)]);
    }
}
