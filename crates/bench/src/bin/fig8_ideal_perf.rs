//! Figure 8: time to draw 1000 samples from *ideal* (noise-free) QAOA and
//! VQE circuits vs qubit count, for one and two algorithm iterations —
//! knowledge compilation vs state vector (qsim-style, 1 and 16 threads) vs
//! tensor network (qTorch-style, 1 and 16 threads).
//!
//! Expected shape (paper §4.1): state-vector cost grows exponentially with
//! qubits (it materializes 2^n amplitudes); knowledge compilation excels on
//! wide-shallow circuits, with its advantage over tensor networks largest
//! at one iteration (66× per-sample cost at 32 qubits in the paper).

use qkc_bench::{fmt_secs, time, ResultTable, Scale};
use qkc_circuit::{Circuit, ParamMap};
use qkc_core::KcSimulator;
use qkc_knowledge::GibbsOptions;
use qkc_statevector::StateVectorSimulator;
use qkc_tensornet::TensorNetworkSimulator;
use qkc_workloads::{Graph, QaoaMaxCut, VqeIsing};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHOTS: usize = 1000;

fn sv_time(circuit: &Circuit, params: &ParamMap, threads: usize) -> f64 {
    let sim = StateVectorSimulator::new().with_threads(threads);
    let mut rng = StdRng::seed_from_u64(1);
    time(|| sim.sample(circuit, params, SHOTS, &mut rng).expect("sv")).1
}

fn tn_time(circuit: &Circuit, params: &ParamMap, threads: usize) -> f64 {
    let sim = TensorNetworkSimulator::new().with_threads(threads);
    let mut rng = StdRng::seed_from_u64(2);
    time(|| sim.sample(circuit, params, SHOTS, &mut rng).expect("tn")).1
}

/// KC: compile once (reported separately), then time sampling.
fn kc_times(circuit: &Circuit, params: &ParamMap) -> (f64, f64) {
    let (sim, compile_s) = time(|| KcSimulator::compile(circuit, &Default::default()));
    let bound = sim.bind(params).expect("bind");
    let sample_s = time(|| {
        let mut sampler = bound.sampler(&GibbsOptions {
            warmup: 100,
            seed: 3,
            ..Default::default()
        });
        sampler.sample_outputs(SHOTS, 1)
    })
    .1;
    (compile_s, sample_s)
}

fn run_sweep(
    label: &str,
    sizes: &[usize],
    sv_cap: usize,
    tn_cap: usize,
    kc_cap: usize,
    make: impl Fn(usize) -> (Circuit, ParamMap),
) {
    let mut table = ResultTable::new(
        format!("Figure 8 {label}: seconds to draw {SHOTS} samples"),
        &[
            "qubits",
            "sv_1t",
            "sv_16t",
            "tn_1t",
            "tn_16t",
            "kc_sample",
            "kc_compile",
        ],
    );
    for &n in sizes {
        let (circuit, params) = make(n);
        let n = circuit.num_qubits();
        let sv1 = if n <= sv_cap {
            fmt_secs(sv_time(&circuit, &params, 1))
        } else {
            "-".into()
        };
        let sv16 = if n <= sv_cap {
            fmt_secs(sv_time(&circuit, &params, 16))
        } else {
            "-".into()
        };
        let tn1 = if n <= tn_cap {
            fmt_secs(tn_time(&circuit, &params, 1))
        } else {
            "-".into()
        };
        let tn16 = if n <= tn_cap {
            fmt_secs(tn_time(&circuit, &params, 16))
        } else {
            "-".into()
        };
        let (kc_c, kc_s) = if n <= kc_cap {
            let (c, s) = kc_times(&circuit, &params);
            (fmt_secs(c), fmt_secs(s))
        } else {
            ("-".into(), "-".into())
        };
        table.row(vec![n.to_string(), sv1, sv16, tn1, tn16, kc_s, kc_c]);
    }
    table.print();
}

fn main() {
    let scale = Scale::from_env();
    let qaoa_sizes: Vec<usize> =
        scale.pick(vec![6, 8, 10, 12, 14], vec![5, 10, 15, 20, 25, 30, 32]);
    let vqe_grids: Vec<(usize, usize)> = scale.pick(
        vec![(2, 2), (2, 3), (3, 3), (3, 4)],
        vec![(2, 2), (3, 3), (4, 4), (4, 5), (5, 5)],
    );
    let sv_cap = scale.pick(16, 30);
    let tn_cap = scale.pick(10, 26);
    let kc_cap = scale.pick(20, 32);

    for iterations in [1usize, 2] {
        run_sweep(
            &format!("(QAOA Max-Cut, iterations={iterations})"),
            &qaoa_sizes,
            sv_cap,
            tn_cap,
            if iterations == 1 {
                kc_cap
            } else {
                kc_cap.min(12)
            },
            |n| {
                let qaoa = QaoaMaxCut::new(Graph::random_regular(n, 3, 7 + n as u64), iterations);
                (qaoa.circuit(), qaoa.default_params())
            },
        );
    }
    for iterations in [1usize, 2] {
        let sizes: Vec<usize> = vqe_grids.iter().map(|&(w, h)| w * h).collect();
        let grids = vqe_grids.clone();
        run_sweep(
            &format!("(VQE 2-D Ising, iterations={iterations})"),
            &sizes,
            sv_cap,
            tn_cap,
            if iterations == 1 {
                kc_cap
            } else {
                kc_cap.min(9)
            },
            move |n| {
                let &(w, h) = grids.iter().find(|&&(w, h)| w * h == n).expect("grid");
                let vqe = VqeIsing::new(w, h, iterations);
                (vqe.circuit(), vqe.default_params())
            },
        );
    }
    println!("\nShape check: state-vector times grow exponentially in qubits;");
    println!("KC per-sample cost stays flat after its one-off compile, and the");
    println!("compile is amortized across every variational iteration.");
}
