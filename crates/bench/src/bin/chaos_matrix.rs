//! The CI chaos driver: a fixed fault-seed matrix over engine sweeps.
//!
//! Runs the same contract the chaos test harness (`tests/chaos.rs`)
//! asserts, but as a standalone binary with telemetry on, so CI can
//! archive the injected-fault and recovery counters as a JSONL artifact:
//!
//! * every recoverable fault storm (spill write/read/rename failures,
//!   torn spill bytes, first-attempt worker panics) must leave the sweep
//!   output **byte-identical** to the fault-free run, at every thread
//!   count and batch width in the matrix;
//! * faults that defeat recovery (panic on every attempt) must surface as
//!   typed per-point failures with every surviving point intact.
//!
//! Exit code is non-zero on any contract violation. The accumulated
//! telemetry snapshot is appended to `CHAOS_telemetry.jsonl` (override
//! with `QKC_CHAOS_JSONL`).

use qkc_bench::ResultTable;
use qkc_circuit::{Circuit, Param, ParamMap};
use qkc_engine::{
    BackendKind, CacheOptions, Engine, EngineError, EngineOptions, FaultPlan, SweepSpec,
};
use std::path::PathBuf;

const FAULT_SEEDS: [u64; 3] = [1, 7, 42];
const THREADS: [usize; 3] = [1, 2, 4];
const BATCHES: [usize; 2] = [1, 16];

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qkc-chaos-matrix-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn chaos_circuit() -> Circuit {
    let mut c = Circuit::new(4);
    c.rx(0, Param::symbol("t"))
        .cnot(0, 1)
        .zz(1, 2, Param::symbol("g"))
        .cnot(2, 3)
        .depolarize(1, 0.02);
    c
}

fn chaos_params(n: usize) -> Vec<ParamMap> {
    (0..n)
        .map(|i| ParamMap::from_pairs([("t", 0.15 + 0.1 * i as f64), ("g", 0.4 - 0.05 * i as f64)]))
        .collect()
}

fn observable(bits: usize) -> f64 {
    bits.count_ones() as f64 - 0.5
}

fn engine(
    threads: usize,
    batch: usize,
    configure: impl FnOnce(EngineOptions) -> EngineOptions,
) -> Engine {
    Engine::with_options(configure(
        EngineOptions::default()
            .with_backend(BackendKind::KnowledgeCompilation)
            .with_threads(threads)
            .with_batch(batch),
    ))
}

fn main() {
    // Injected panics are caught and retried by the executor; keep their
    // (expected) backtraces out of the CI log while still printing any
    // genuine panic in full.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("fault injection:"));
        if !injected {
            default_hook(info);
        }
    }));

    qkc_engine::telemetry::set_enabled(true);
    let obs = observable;
    let spec = SweepSpec {
        shots: 32,
        observable: Some(&obs),
        keep_samples: true,
        seed: 0xC0FFEE,
    };
    let params = chaos_params(12);
    let clean = engine(1, 1, |o| o)
        .sweep(&chaos_circuit(), &params, &spec)
        .expect("fault-free baseline");

    let mut table = ResultTable::new(
        "Chaos matrix (recoverable fault storms; outputs vs fault-free run)",
        &["seed", "threads", "batch", "points", "identical"],
    );
    let mut cells = 0usize;
    for seed in FAULT_SEEDS {
        let plan = FaultPlan::seeded(seed)
            .with_spill_write_rate(0.5)
            .with_spill_read_rate(0.5)
            .with_spill_rename_rate(0.3)
            .with_spill_torn_rate(0.3)
            .with_panic_at([3, 8]);
        for threads in THREADS {
            for batch in BATCHES {
                let dir = scratch_dir("cell");
                let got = engine(threads, batch, |o| {
                    o.with_cache(
                        CacheOptions::default()
                            .with_max_resident_bytes(1)
                            .with_spill_dir(&dir),
                    )
                    .with_fault_plan(plan.clone())
                })
                .sweep(&chaos_circuit(), &params, &spec)
                .unwrap_or_else(|e| panic!("seed={seed} threads={threads} batch={batch}: {e}"));
                assert_eq!(
                    clean, got,
                    "seed={seed} threads={threads} batch={batch}: recovery changed bytes"
                );
                table.row(vec![
                    seed.to_string(),
                    threads.to_string(),
                    batch.to_string(),
                    got.len().to_string(),
                    "yes".to_string(),
                ]);
                cells += 1;
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    table.print();

    // Defeated retries: typed per-point failures, intact survivors.
    let plan = FaultPlan::seeded(3)
        .with_panic_at([2, 9])
        .with_panic_every_attempt(true);
    for threads in THREADS {
        let report = engine(threads, 16, |o| o.with_fault_plan(plan.clone()))
            .sweep_report(&chaos_circuit(), &params, &spec)
            .expect("contained failures are not sweep-global errors");
        let failed: Vec<usize> = report.failures.iter().map(|f| f.index).collect();
        assert_eq!(failed, vec![2, 9], "threads={threads}");
        assert!(report
            .failures
            .iter()
            .all(|f| matches!(f.error, EngineError::WorkerPanicked { .. })));
        for point in &report.points {
            assert_eq!(
                Some(point),
                clean.iter().find(|p| p.index == point.index),
                "threads={threads}: survivor perturbed"
            );
        }
    }
    println!(
        "\n{cells} matrix cells byte-identical under fault storms; \
         defeated-retry sweeps degraded to typed per-point failures at \
         every thread count."
    );

    let path =
        std::env::var("QKC_CHAOS_JSONL").unwrap_or_else(|_| "CHAOS_telemetry.jsonl".to_string());
    match qkc_engine::telemetry::snapshot().append_jsonl(std::path::Path::new(&path)) {
        Ok(()) => println!("appended chaos telemetry snapshot to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
